//! Heterogeneous-cluster utilization study (the Table I experiment):
//! run VGG16 and YOLOv2 on the paper's mixed 8-device cluster
//! (2x1.2 GHz + 2x800 MHz + 4x600 MHz) and report per-device
//! utilization and redundancy for every parallelization scheme.
//!
//! Run with: `cargo run --release --example heterogeneous_cluster`

use pico::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::paper_heterogeneous();
    let freq_labels: Vec<String> = cluster
        .devices()
        .iter()
        .map(|d| format!("{:.1}GHz", d.capacity / 2e9))
        .collect();

    for model in [zoo::vgg16().features(), zoo::yolov2()] {
        println!("=== {} ===", model.name());
        let pico = Pico::new(model, cluster.clone());
        println!(
            "{:<6} {}  {:>8}",
            "scheme",
            freq_labels
                .iter()
                .map(|f| format!("{f:>7}"))
                .collect::<Vec<_>>()
                .join(" "),
            "average"
        );
        for plan in pico.plan_all() {
            let r = pico.simulate(&plan, &Arrivals::closed_loop(100));
            let util_row: Vec<String> = r
                .device_stats
                .iter()
                .map(|d| format!("{:>6.1}%", 100.0 * d.utilization))
                .collect();
            let redu_row: Vec<String> = r
                .device_stats
                .iter()
                .map(|d| format!("{:>6.1}%", 100.0 * d.redundancy))
                .collect();
            println!(
                "{:<6} {}  {:>7.1}%  (utilization)",
                plan.scheme.to_string(),
                util_row.join(" "),
                100.0 * r.avg_utilization()
            );
            println!(
                "{:<6} {}  {:>7.1}%  (redundancy)",
                "",
                redu_row.join(" "),
                100.0 * r.avg_redundancy()
            );
        }
        println!();
    }

    // The paper's takeaway: PICO's greedy device assignment keeps
    // heterogeneous devices uniformly busy with little duplicated work.
    Ok(())
}
