//! Real distributed execution: run the toy MNIST-style CNN through the
//! threaded pipeline runtime (coordinator split/scatter/gather/stitch
//! per Fig. 6), verify the outputs are bit-identical to single-device
//! inference, and show the pipeline overlapping tasks under throttling.
//!
//! Run with: `cargo run --release --example distributed_inference`

use pico::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::mnist_toy();
    let cluster = Cluster::paper_heterogeneous_6();
    let pico = Pico::new(model, cluster);

    let plan = pico.plan()?;
    println!("{}", pico.describe(&plan));

    // Eight synthetic 64x64 frames.
    let inputs: Vec<Tensor> = (0..8)
        .map(|i| Tensor::random(pico.model().input_shape(), 1000 + i))
        .collect();

    // Execute on real threads and verify against single-device
    // inference (bit-exact split/stitch).
    let report = pico.execute_verified(&plan, inputs.clone(), 42)?;
    println!(
        "pipeline processed {} frames in {:.1} ms; all outputs verified bit-exact",
        report.outputs.len(),
        report.elapsed.as_secs_f64() * 1e3
    );
    for t in &report.timings {
        println!(
            "  frame {} done at {:>7.2} ms",
            t.task,
            t.completed_at * 1e3
        );
    }

    // Throttled run: stretch compute to cost-model proportions (1 ms of
    // simulated time per second of Pi time) so the heterogeneous stage
    // balance is visible in wall-clock completion gaps.
    let throttled = pico.execute_throttled(&plan, inputs, 42, 1e-3)?;
    println!(
        "\nthrottled run (1000x faster than the real cluster): {:.1} ms total",
        throttled.elapsed.as_secs_f64() * 1e3
    );
    let gaps: Vec<f64> = throttled
        .timings
        .windows(2)
        .map(|w| (w[1].completed_at - w[0].completed_at) * 1e3)
        .collect();
    println!("completion gaps between frames (ms): {gaps:.1?}");
    println!("(steady-state gap ~= pipeline period; smaller than full latency = overlap)");

    // Failure injection: kill one device and watch the error surface.
    let victim = plan.stages[0].assignments[0].device;
    let engine = Engine::with_seed(pico.model(), 42);
    let faulty = PipelineRuntime::builder(pico.model(), &plan, &engine)
        .failed_device(victim)
        .build();
    match faulty.run(vec![Tensor::random(pico.model().input_shape(), 7)]) {
        Err(e) => println!("\nwith device {victim} failed: error surfaced as expected: {e}"),
        Ok(_) => println!("\nunexpected success with a failed device"),
    }
    Ok(())
}
