//! 2-D grid partitioning (the DeepThings extension): execute a fused
//! segment as a grid of rectangular tiles, verify bit-exactness against
//! monolithic inference, and compare halo overhead and memory against
//! the paper's 1-D strips.
//!
//! Run with: `cargo run --release --example grid_partitioning`

use pico::model::{grid_split_even, Segment};
use pico::partition::grid::grid_shapes_for;
use pico::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Analysis: every factorization of 8 devices over a 10-unit fused
    // VGG16 prefix.
    let vgg = zoo::vgg16().features();
    println!("fused VGG16 prefix (10 units) across 8 devices:");
    println!(
        "{:>6} {:>14} {:>16} {:>12} {:>18}",
        "grid", "total GFLOPs", "per-dev GFLOPs", "redundancy", "max tile (KB)"
    );
    for p in grid_shapes_for(&vgg, 10, 8) {
        println!(
            "{:>6} {:>14.2} {:>16.2} {:>11.1}% {:>18.0}",
            format!("{}x{}", p.grid_rows, p.grid_cols),
            p.total_flops / 1e9,
            p.per_device_flops / 1e9,
            100.0 * p.redundancy(),
            p.max_input_tile_bytes as f64 / 1024.0,
        );
    }
    println!("(8x1 = the paper's row strips; near-square grids cut both halo and tile memory)\n");

    // Execution: run a real grid through the engine and verify.
    let model = zoo::mnist_toy();
    let engine = Engine::with_seed(&model, 42);
    let input = Tensor::random(model.input_shape(), 7);
    let reference = engine.infer(&input)?;

    let seg: Segment = model.full_segment();
    let out = model.output_shape();
    let (gr, gc) = (2, 3);
    let mut tiles = Vec::new();
    for region in grid_split_even(out.height, out.width, gr, gc) {
        // Each "device" receives only its input tile (with halo)...
        let need = model.segment_input_region(seg, region);
        let tile = input.slice_region(need)?;
        println!(
            "tile {region}: input region {need} ({:.1} KB shipped)",
            need.bytes(model.input_shape().channels) as f64 / 1024.0
        );
        // ...and computes its output rectangle.
        tiles.push(engine.infer_region2(seg, region, &tile)?);
    }
    let stitched = Tensor::stitch_grid(&tiles, gc)?;
    assert_eq!(stitched, reference);
    println!("\n{gr}x{gc} grid output verified bit-exact against single-device inference");
    Ok(())
}
