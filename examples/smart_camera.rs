//! Smart-home camera scenario (the paper's motivating workload): a
//! cluster of idle household devices runs YOLOv2 object detection on
//! camera frames. The frame rate is low while occupants are away and
//! spikes when they return home; APICO switches schemes to track it.
//!
//! Run with: `cargo run --release --example smart_camera`

use pico::prelude::*;
use pico::sim::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::yolov2();
    let cluster = Cluster::paper_heterogeneous();
    let pico = Pico::new(model, cluster);

    let ofl = pico.plan_with(&OptimalFused::new())?;
    let ofl_metrics = pico.predict(&ofl);
    let capacity = 1.0 / ofl_metrics.period; // one-stage capacity (tasks/s)

    println!("YOLOv2 on the heterogeneous 8-device home cluster");
    println!("one-stage (OFL) capacity: {:.3} frames/s\n", capacity);

    // A day in four phases: night (5%), morning (60%), away (20%),
    // evening rush (130% of one-stage capacity).
    let phases: [(&str, f64, f64); 4] = [
        ("night", 0.05, 2000.0),
        ("morning", 0.60, 2000.0),
        ("away", 0.20, 2000.0),
        ("evening", 1.30, 4000.0),
    ];

    let segments: Vec<(f64, f64)> = phases
        .iter()
        .map(|(_, load, duration)| (load * capacity, *duration))
        .collect();
    let arrivals = workload::phases(&segments, 1);

    // Static schemes for reference.
    println!("static schemes over the full day:");
    for plan in [
        pico.plan_with(&EarlyFused::new())?,
        ofl.clone(),
        pico.plan()?,
    ] {
        let r = pico.simulate(&plan, &arrivals);
        println!(
            "  {:<5} avg latency {:>8.2}s | p95 {:>8.2}s | completed {}",
            plan.scheme.to_string(),
            r.avg_latency,
            r.p95_latency,
            r.completed,
        );
    }

    // APICO: adaptive switching with a 60 s estimation window.
    let (report, decisions) = pico.run_adaptive(&arrivals, 60.0, 0.4)?;
    println!(
        "  APICO avg latency {:>8.2}s | p95 {:>8.2}s | completed {}",
        report.avg_latency, report.p95_latency, report.completed
    );

    println!("\nAPICO switch timeline (plan 0 = PICO pipeline, 1 = OFL):");
    for d in &decisions {
        let phase = phases
            .iter()
            .scan(0.0, |acc, (name, _, dur)| {
                *acc += dur;
                Some((*acc, *name))
            })
            .find(|(end, _)| d.time < *end)
            .map(|(_, name)| name)
            .unwrap_or("end");
        println!(
            "  t={:>8.1}s  -> plan {} (estimated load {:.3} frames/s, phase: {})",
            d.time, d.plan_index, d.lambda, phase
        );
    }
    Ok(())
}
