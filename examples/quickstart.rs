//! Quickstart: plan VGG16 on the paper's 8-Pi testbed and compare every
//! parallelization scheme analytically and under simulation.
//!
//! Run with: `cargo run --release --example quickstart`

use pico::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's setup: VGG16's conv/pool feature extractor on eight
    // Raspberry-Pi-class devices (1 CPU core @ 1 GHz) behind a 50 Mbps
    // WiFi access point.
    let model = zoo::vgg16().features();
    let cluster = Cluster::pi_cluster(8, 1.0);
    let pico = Pico::new(model, cluster);

    println!(
        "model: {} ({} units, {:.2} GFLOPs/inference)",
        pico.model().name(),
        pico.model().len(),
        pico.model().total_flops() / 1e9
    );
    println!("cluster: 8x Raspberry Pi @ 1 GHz, 50 Mbps WiFi\n");

    // Plan with the paper's PICO pipeline and print the stage layout.
    let plan = pico.plan()?;
    println!("{}", pico.describe(&plan));

    // Compare all four schemes the paper evaluates.
    println!("scheme  stages  period(s)  latency(s)  throughput(tasks/min)");
    for plan in pico.plan_all() {
        let m = pico.predict(&plan);
        println!(
            "{:<7} {:>6}  {:>9.3}  {:>10.3}  {:>21.1}",
            plan.scheme.to_string(),
            plan.stage_count(),
            m.period,
            m.latency,
            60.0 * m.throughput(),
        );
    }

    // Saturate the cluster and measure real (simulated) throughput.
    println!("\nclosed-loop simulation, 120 tasks:");
    for plan in pico.plan_all() {
        let r = pico.simulate(&plan, &Arrivals::closed_loop(120));
        println!(
            "{:<7} throughput {:>6.2} tasks/min | avg utilization {:>5.1}% | redundancy {:>4.1}%",
            plan.scheme.to_string(),
            60.0 * r.throughput,
            100.0 * r.avg_utilization(),
            100.0 * r.avg_redundancy(),
        );
    }
    Ok(())
}
