//! Live-mode smoke tests: the threaded serving front-end against the
//! real pipelined runtime.

use pico_model::zoo;
use pico_partition::{Cluster, CostParams, OptimalFused, PlanRequest, Planner};
use pico_serve::{ServeError, ServeHandle, ServeRequest, TenantPolicy};
use pico_tensor::{Engine, Tensor};

fn setup() -> (pico_model::Model, Cluster, CostParams) {
    (
        zoo::toy(4),
        Cluster::pi_cluster(4, 1.0),
        CostParams::default(),
    )
}

fn pico_plan(m: &pico_model::Model, c: &Cluster, p: &CostParams) -> pico_partition::Plan {
    pico_partition::PicoPlanner::new()
        .plan(&PlanRequest::new(m, c, p))
        .unwrap()
}

#[test]
fn live_outputs_match_single_device_inference() {
    let (m, c, p) = setup();
    let plan = pico_plan(&m, &c, &p);
    let request = ServeRequest::new()
        .with_tenants(vec![TenantPolicy::default(); 2])
        .with_engine_seed(5);
    let handle = ServeHandle::spawn(m.clone(), c, p, plan, &request).unwrap();

    let inputs: Vec<Tensor> = (0..12)
        .map(|k| Tensor::random(m.input_shape(), 100 + k))
        .collect();
    let tickets: Vec<_> = inputs
        .iter()
        .enumerate()
        .map(|(k, input)| handle.submit(k % 2, input.clone()).unwrap())
        .collect();

    let reference = Engine::with_seed(&m, 5);
    for (ticket, input) in tickets.into_iter().zip(&inputs) {
        let out = ticket.wait().unwrap();
        let expect = reference.infer(input).unwrap();
        assert_eq!(out.data(), expect.data(), "served output must be bit-exact");
    }

    let outcome = handle.shutdown().unwrap();
    assert_eq!(outcome.per_tenant.len(), 2);
    for t in &outcome.per_tenant {
        assert_eq!(t.admitted, 6);
        assert_eq!(t.completed, 6);
        assert_eq!(t.rejected, 0);
    }
    assert!(outcome.batches >= 1);
    assert_eq!(outcome.swaps, 0);
    assert_eq!(outcome.epochs, 1);
}

#[test]
fn warm_swap_mid_service_drops_nothing() {
    let (m, c, p) = setup();
    let plan = pico_plan(&m, &c, &p);
    let fused = OptimalFused::new()
        .plan(&PlanRequest::new(&m, &c, &p))
        .unwrap();
    let request = ServeRequest::new().with_engine_seed(9);
    let handle = ServeHandle::spawn(m.clone(), c, p, plan, &request).unwrap();

    let reference = Engine::with_seed(&m, 9);
    let before: Vec<_> = (0..4)
        .map(|k| {
            let input = Tensor::random(m.input_shape(), 200 + k);
            (handle.submit(0, input.clone()).unwrap(), input)
        })
        .collect();
    handle.swap(fused).unwrap();
    let after: Vec<_> = (0..4)
        .map(|k| {
            let input = Tensor::random(m.input_shape(), 300 + k);
            (handle.submit(0, input.clone()).unwrap(), input)
        })
        .collect();
    for (ticket, input) in before.into_iter().chain(after) {
        let out = ticket.wait().unwrap();
        assert_eq!(out.data(), reference.infer(&input).unwrap().data());
    }
    let outcome = handle.shutdown().unwrap();
    assert_eq!(outcome.swaps, 1);
    assert_eq!(outcome.epochs, 2);
    assert_eq!(outcome.per_tenant[0].admitted, 8);
    assert_eq!(outcome.per_tenant[0].completed, 8);
    assert_eq!(outcome.per_tenant[0].rejected, 0);
}

#[test]
fn unknown_tenant_and_bad_config_are_typed_errors() {
    let (m, c, p) = setup();
    let plan = pico_plan(&m, &c, &p);

    let bad = ServeRequest::new().with_tenants(vec![]);
    match ServeHandle::spawn(m.clone(), c.clone(), p, plan.clone(), &bad) {
        Err(ServeError::InvalidConfig { violations }) => assert!(!violations.is_empty()),
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
        Ok(_) => panic!("expected InvalidConfig, got a handle"),
    }

    let handle = ServeHandle::spawn(m.clone(), c, p, plan, &ServeRequest::new()).unwrap();
    match handle.submit(3, Tensor::random(m.input_shape(), 1)) {
        Err(ServeError::UnknownTenant {
            tenant: 3,
            tenants: 1,
        }) => {}
        Err(other) => panic!("expected UnknownTenant, got {other:?}"),
        Ok(_) => panic!("expected UnknownTenant, got a ticket"),
    }
    let outcome = handle.shutdown().unwrap();
    assert_eq!(outcome.per_tenant[0].admitted, 0);
}
