//! # pico-serve — multi-tenant serving front-end
//!
//! A dependency-light task-intake layer in front of the pipelined
//! runtime, reproducing the *serving* side of the paper's edge-cluster
//! story: many tenants submit single-task inference requests, and the
//! cluster must (a) bound each tenant's backlog, (b) batch adaptively
//! as load shifts (the Eq. 15 EWMA idea applied to inter-arrival
//! gaps), and (c) switch parallel schemes under load *without dropping
//! work* — the APICO warm swap, gated by the static switch-pair audit
//! (PA305–PA307).
//!
//! Two drivers share one policy kernel (`pico_sim::serve_policy`):
//!
//! * [`ServeHandle`] — the **live** front-end: a server thread owns the
//!   runtime; callers submit from any thread and get typed
//!   backpressure ([`ServeError::QueueFull`] /
//!   [`ServeError::TenantOverBudget`]) instead of blocking.
//! * [`Replayer`] — the **deterministic** front-end: a scripted trace
//!   runs in virtual time (priced by the plan's analytic cost model)
//!   while every batch still executes on the real threaded pipeline,
//!   so outputs are bit-exact and runs are reproducible.
//!
//! Both drivers can also run **adaptively**: armed with a cached
//! [`FleetFrontier`] (see [`fleet_frontier`]), the
//! [`pico_sim::ReplanKernel`] hysteresis controller watches the
//! admitted-arrival λ estimate and switches plans through the same
//! audit-gated warm-swap path — [`Replayer::run_adaptive`] in virtual
//! time, [`ServeHandle::spawn_adaptive`] live.
//!
//! ```
//! use pico_model::zoo;
//! use pico_partition::Cluster;
//! use pico_partition::CostParams;
//! use pico_serve::{build_script, Replayer, ReplayScript, ScriptSpec};
//! use pico_tensor::Engine;
//!
//! let model = zoo::toy(4);
//! let cluster = Cluster::pi_cluster(4, 1.0);
//! let params = CostParams::default();
//! let spec = ScriptSpec { tasks: 12, ..ScriptSpec::default() };
//! let script = build_script(&model, &cluster, &params, ReplayScript::Steady, &spec).unwrap();
//! let engine = Engine::with_seed(&model, 1);
//! let outcome = Replayer::new(&model, &cluster, &params, &engine, script.config)
//!     .run(&script.initial, &script.events)
//!     .unwrap();
//! assert_eq!(outcome.completed.len() + outcome.rejections.len(), 12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
mod front;
mod replay;
mod request;
mod server;
mod state;

pub use config::ServeConfig;
pub use error::ServeError;
pub use front::{CompletedTask, Rejection, ReplayOutcome, Replayer, ServeEvent};
pub use replay::{build_script, fleet_frontier, ReplayPlan, ReplayScript, ScriptSpec};
pub use request::ServeRequest;
pub use server::{ServeHandle, ServeOutcome, ServeTicket};
pub use state::ServeState;

// Re-export the policy types a caller needs to configure the front-end
// without importing the simulator or fleet crates directly.
pub use pico_fleet::{FleetEntry, FleetFrontier};
pub use pico_sim::{
    BatchPolicy, RejectReason, ReplanPolicy, SwitchRecord, TenantPolicy, TenantServeStat,
};
