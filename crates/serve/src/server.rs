use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use pico_audit::Auditor;
use pico_fleet::FleetFrontier;
use pico_model::Model;
use pico_partition::{Cluster, CostParams, Plan};
use pico_runtime::{ExecutionSession, PipelineRuntime, RuntimeError};
use pico_sim::TenantServeStat;
use pico_telemetry::{clock, names, Ctx};
use pico_tensor::{Engine, Tensor};

use crate::state::{QueuedTask, ServeState};
use crate::{ServeError, ServeRequest};

/// Control messages from handles to the server thread. The channel is
/// bounded (lint rule 8: no unbounded channels in the serving path);
/// nudges are best-effort and may be dropped when one is already
/// pending — the flush tick picks up the slack.
enum Ctrl {
    Nudge,
    Swap(Plan, Sender<Result<(), ServeError>>),
    Close,
}

enum EpochExit {
    Close,
    Swap(Plan, Sender<Result<(), ServeError>>),
    /// The re-planning kernel wants a switch: the epoch has drained and
    /// the audited swap happens at the epoch boundary.
    Replan,
}

/// Final accounting returned by [`ServeHandle::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Admission/completion counts per tenant (indexed by tenant id).
    pub per_tenant: Vec<TenantServeStat>,
    /// Batches submitted to the pipeline.
    pub batches: u64,
    /// Warm swaps performed.
    pub swaps: u64,
    /// Serving epochs (plan generations, including the first).
    pub epochs: u64,
}

/// A claim on one submitted task's eventual output.
pub struct ServeTicket {
    rx: Receiver<Result<Tensor, ServeError>>,
}

impl ServeTicket {
    /// Blocks until the task's batch completes and returns its output.
    ///
    /// # Errors
    ///
    /// [`ServeError::Runtime`] if the pipeline failed executing the
    /// batch, [`ServeError::Closed`] if the front-end shut down before
    /// the task was served.
    pub fn wait(self) -> Result<Tensor, ServeError> {
        self.rx.recv().map_err(|_| ServeError::Closed)?
    }
}

/// Handle to a live serving front-end: submit tasks, request warm
/// swaps, and shut down gracefully. Admission control runs on the
/// calling thread, so a full queue is a synchronous typed error —
/// never a blocked caller.
pub struct ServeHandle {
    state: Arc<ServeState>,
    ctrl: Sender<Ctrl>,
    thread: Option<JoinHandle<Result<ServeOutcome, ServeError>>>,
}

impl ServeHandle {
    /// Spawns a server thread owning `model`/`cluster` and serving
    /// `plan` until shut down or warm-swapped.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when the request's config has
    /// violations (the PA401 conditions).
    pub fn spawn(
        model: Model,
        cluster: Cluster,
        params: CostParams,
        plan: Plan,
        request: &ServeRequest,
    ) -> Result<ServeHandle, ServeError> {
        request.config().validated()?;
        let state = Arc::new(ServeState::new(
            request.config(),
            request.recorder().clone(),
            clock::wall_now(),
            None,
        ));
        // Depth 2: one pending nudge plus room for a control message.
        let (ctrl_tx, ctrl_rx) = bounded(2);
        let thread_state = Arc::clone(&state);
        let seed = request.engine_seed();
        let tick = request.flush_interval();
        let thread = std::thread::spawn(move || {
            run_server(
                model,
                cluster,
                params,
                plan,
                None,
                seed,
                tick,
                thread_state,
                ctrl_rx,
            )
        });
        Ok(ServeHandle {
            state,
            ctrl: ctrl_tx,
            thread: Some(thread),
        })
    }

    /// Spawns a *self-re-planning* server over the fleet frontier armed
    /// via [`ServeRequest::with_adaptive`]: serving starts on the
    /// frontier's cheapest entry, every admission feeds the hysteresis
    /// kernel's λ estimator, and when the kernel decides to switch the
    /// server drains the pipeline, audits the switch pair
    /// (PA305–PA307), and resumes under the new plan — no task is
    /// dropped across the swap. Manual [`swap`](Self::swap) requests
    /// still work and go through the same gate.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when the config or re-planning
    /// policy has violations, or when the request was not armed with
    /// [`ServeRequest::with_adaptive`].
    pub fn spawn_adaptive(
        model: Model,
        cluster: Cluster,
        params: CostParams,
        request: &ServeRequest,
    ) -> Result<ServeHandle, ServeError> {
        request.config().validated()?;
        let Some((frontier, policy)) = request.adaptive() else {
            return Err(ServeError::InvalidConfig {
                violations: vec![
                    "adaptive spawn needs ServeRequest::with_adaptive(frontier, policy)".to_owned(),
                ],
            });
        };
        let violations = policy.violations();
        if !violations.is_empty() {
            return Err(ServeError::InvalidConfig { violations });
        }
        let initial = frontier.cheapest();
        let kernel = frontier.kernel(initial, *policy);
        let plan = frontier.entries()[initial].plan.clone();
        let state = Arc::new(ServeState::new(
            request.config(),
            request.recorder().clone(),
            clock::wall_now(),
            Some(kernel),
        ));
        let (ctrl_tx, ctrl_rx) = bounded(2);
        let thread_state = Arc::clone(&state);
        let seed = request.engine_seed();
        let tick = request.flush_interval();
        let fleet = Arc::clone(frontier);
        let thread = std::thread::spawn(move || {
            run_server(
                model,
                cluster,
                params,
                plan,
                Some(fleet),
                seed,
                tick,
                thread_state,
                ctrl_rx,
            )
        });
        Ok(ServeHandle {
            state,
            ctrl: ctrl_tx,
            thread: Some(thread),
        })
    }

    /// Offers one task for `tenant`. Admission is decided immediately:
    /// a typed rejection ([`ServeError::QueueFull`] /
    /// [`ServeError::TenantOverBudget`]) surfaces backpressure to the
    /// caller; on admission the returned ticket resolves to the output
    /// once the task's micro-batch completes.
    pub fn submit(&self, tenant: usize, input: Tensor) -> Result<ServeTicket, ServeError> {
        let rx = self.state.admit(tenant, input)?;
        match self.ctrl.try_send(Ctrl::Nudge) {
            Ok(()) | Err(TrySendError::Full(_)) => {}
            Err(TrySendError::Disconnected(_)) => return Err(ServeError::Closed),
        }
        Ok(ServeTicket { rx })
    }

    /// Requests a warm swap to `plan`: the server drains the current
    /// pipeline (no admitted task is dropped), audits the switch pair
    /// (PA305–PA307), and either swaps or keeps serving on the old
    /// plan. Blocks until the verdict.
    ///
    /// # Errors
    ///
    /// [`ServeError::SwapRejected`] with the audit errors, or
    /// [`ServeError::Closed`] if the server is gone.
    pub fn swap(&self, plan: Plan) -> Result<(), ServeError> {
        let (tx, rx) = bounded(1);
        self.ctrl
            .send(Ctrl::Swap(plan, tx))
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)?
    }

    /// Stops intake, drains every queued task through the pipeline,
    /// and returns the final accounting.
    pub fn shutdown(mut self) -> Result<ServeOutcome, ServeError> {
        self.state.open.store(false, Ordering::Release);
        let _ = self.ctrl.send(Ctrl::Close);
        match self.thread.take() {
            Some(handle) => handle.join().map_err(|_| ServeError::Closed)?,
            None => Err(ServeError::Closed),
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if let Some(handle) = self.thread.take() {
            self.state.open.store(false, Ordering::Release);
            let _ = self.ctrl.send(Ctrl::Close);
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_server(
    model: Model,
    cluster: Cluster,
    params: CostParams,
    plan0: Plan,
    fleet: Option<Arc<FleetFrontier>>,
    engine_seed: u64,
    tick: Duration,
    state: Arc<ServeState>,
    ctrl: Receiver<Ctrl>,
) -> Result<ServeOutcome, ServeError> {
    let engine = Engine::with_seed(&model, engine_seed);
    let auditor = Auditor::new(&model, &cluster).with_params(params);
    let mut plan = plan0;
    let mut epochs = 0u64;
    let mut swaps = 0u64;
    let mut batches = 0u64;
    loop {
        let epoch_index = epochs;
        epochs += 1;
        let mut epoch_completed = 0u64;
        let runtime = PipelineRuntime::builder(&model, &plan, &engine)
            .recorder(state.rec.clone())
            .build();
        let session = runtime.session(|sess| loop {
            match ctrl.recv_timeout(tick) {
                Ok(Ctrl::Swap(next, reply)) => {
                    pump(sess, &state, &mut batches, &mut epoch_completed, true)?;
                    return Ok(EpochExit::Swap(next, reply));
                }
                Ok(Ctrl::Close) | Err(RecvTimeoutError::Disconnected) => {
                    pump(sess, &state, &mut batches, &mut epoch_completed, true)?;
                    return Ok(EpochExit::Close);
                }
                Ok(Ctrl::Nudge) => {
                    pump(sess, &state, &mut batches, &mut epoch_completed, false)?;
                    if state.replan_pending() {
                        pump(sess, &state, &mut batches, &mut epoch_completed, true)?;
                        return Ok(EpochExit::Replan);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    pump(sess, &state, &mut batches, &mut epoch_completed, true)?;
                    if state.replan_pending() {
                        return Ok(EpochExit::Replan);
                    }
                }
            }
        });
        let exit = match session {
            Ok((exit, _report)) => exit,
            Err(e) => {
                state.open.store(false, Ordering::Release);
                fail_queued(&state, &e);
                return Err(e.into());
            }
        };
        match exit {
            EpochExit::Close => break,
            EpochExit::Swap(next, reply) => {
                let report = auditor.audit_switch_pair(&plan, &next);
                if report.is_executable() {
                    state.rec.instant_at(
                        names::SWAP_DRAINED,
                        Ctx::stage(usize::try_from(epoch_index).unwrap_or(usize::MAX)),
                        state.now(),
                        epoch_completed as f64,
                    );
                    plan = next;
                    swaps += 1;
                    let _ = reply.send(Ok(()));
                } else {
                    let errors = report.errors().map(|d| d.message.clone()).collect();
                    let _ = reply.send(Err(ServeError::SwapRejected { errors }));
                }
            }
            EpochExit::Replan => {
                let (Some(fleet), Some(replan)) = (fleet.as_ref(), state.replan.as_ref()) else {
                    // A replan exit without a fleet cannot happen; keep
                    // serving on the current plan if it somehow does.
                    continue;
                };
                let mut ctl = replan.lock();
                let Some(to) = ctl.kernel.pending() else {
                    continue;
                };
                let next = fleet.entries()[to].plan.clone();
                let report = auditor.audit_switch_pair(&plan, &next);
                if report.is_executable() {
                    let to = ctl.kernel.committed();
                    let lambda = ctl.record.take().map_or(f64::NAN, |r| r.lambda);
                    drop(ctl);
                    let now = state.now();
                    state.rec.instant_at(
                        names::SWAP_DRAINED,
                        Ctx::stage(usize::try_from(epoch_index).unwrap_or(usize::MAX)),
                        now,
                        epoch_completed as f64,
                    );
                    state
                        .rec
                        .instant_at(names::REPLAN_TRIGGERED, Ctx::stage(to), now, lambda);
                    plan = next;
                    swaps += 1;
                } else {
                    // Unreachable while the kernel only proposes
                    // matrix-approved targets; degrade to "no switch".
                    ctl.kernel.rejected();
                    ctl.record = None;
                }
            }
        }
    }
    let ledger = state.ledger.lock();
    let per_tenant = (0..ledger.tenants())
        .map(|t| TenantServeStat {
            admitted: ledger.admitted(t),
            rejected: ledger.rejected(t),
            completed: ledger.completed(t),
        })
        .collect();
    Ok(ServeOutcome {
        per_tenant,
        batches,
        swaps,
        epochs,
    })
}

/// Forms and submits micro-batches while they are warranted: always
/// when `force` (flush tick, drain, shutdown), otherwise only once the
/// backlog reaches the adaptive target.
fn pump(
    sess: &mut ExecutionSession,
    state: &ServeState,
    batches: &mut u64,
    completed: &mut u64,
    force: bool,
) -> Result<(), RuntimeError> {
    loop {
        let target = state.batcher.lock().target().max(1);
        let mut ledger = state.ledger.lock();
        let total = ledger.total_queued();
        if total == 0 || (!force && total < target) {
            return Ok(());
        }
        let want = target.min(total);
        // Round-robin composition across tenants, resuming where the
        // previous batch left off so no tenant is starved.
        let tenants = ledger.tenants();
        let mut cursor = state.rr.load(Ordering::Relaxed);
        let mut picks = vec![0usize; tenants];
        let mut order = Vec::with_capacity(want);
        while order.len() < want {
            let t = cursor % tenants;
            cursor += 1;
            if ledger.queued(t) > picks[t] {
                picks[t] += 1;
                order.push(t);
            }
        }
        state.rr.store(cursor, Ordering::Relaxed);
        let mut tasks: Vec<(usize, QueuedTask)> = Vec::with_capacity(want);
        for &t in &order {
            ledger.take(t, 1);
            let Some(task) = state.queues[t].lock().pop_front() else {
                // Unreachable while admit holds the ledger lock across
                // its queue push; recover by undoing the claim.
                ledger.complete(t, 1);
                continue;
            };
            tasks.push((t, task));
        }
        drop(ledger);
        if tasks.is_empty() {
            return Ok(());
        }
        let n = tasks.len() as u64;
        let inputs: Vec<Tensor> = tasks.iter().map(|(_, qt)| qt.input.clone()).collect();
        state.rec.observe_at(
            names::BATCH_FORMED,
            Ctx::default(),
            state.now(),
            inputs.len() as f64,
        );
        let outputs = match sess.submit(&inputs) {
            Ok(outputs) => outputs,
            Err(e) => {
                for (_, qt) in tasks {
                    let _ = qt.reply.try_send(Err(ServeError::Runtime(e.clone())));
                }
                return Err(e);
            }
        };
        let mut ledger = state.ledger.lock();
        for ((t, qt), out) in tasks.into_iter().zip(outputs) {
            ledger.complete(t, 1);
            let _ = qt.reply.try_send(Ok(out));
        }
        drop(ledger);
        *batches += 1;
        *completed += n;
    }
}

/// Delivers a terminal error to every still-queued task after a
/// pipeline failure, so no ticket hangs.
fn fail_queued(state: &ServeState, e: &RuntimeError) {
    for queue in &state.queues {
        let mut queue = queue.lock();
        while let Some(task) = queue.pop_front() {
            let _ = task.reply.try_send(Err(ServeError::Runtime(e.clone())));
        }
    }
}
