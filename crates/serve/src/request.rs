use std::sync::Arc;
use std::time::Duration;

use pico_fleet::FleetFrontier;
use pico_sim::{BatchPolicy, ReplanPolicy, TenantPolicy};
use pico_telemetry::Recorder;

use crate::ServeConfig;

/// Everything a serving front-end is given. Construct with
/// [`ServeRequest::new`] and chain `with_*` setters — the same builder
/// idiom as `pico_partition::PlanRequest`.
///
/// ```
/// use pico_serve::ServeRequest;
/// use pico_sim::{BatchPolicy, TenantPolicy};
///
/// let req = ServeRequest::new()
///     .with_tenants(vec![TenantPolicy::default(); 2])
///     .with_batch(BatchPolicy {
///         max_batch: 4,
///         ..BatchPolicy::default()
///     })
///     .with_engine_seed(7);
/// assert_eq!(req.config().tenants.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ServeRequest {
    config: ServeConfig,
    recorder: Recorder,
    engine_seed: u64,
    flush_interval: Duration,
    adaptive: Option<(Arc<FleetFrontier>, ReplanPolicy)>,
}

impl Default for ServeRequest {
    fn default() -> Self {
        ServeRequest::new()
    }
}

impl ServeRequest {
    /// A single-tenant request with default policies, a no-op
    /// recorder, and a 10 ms flush tick.
    pub fn new() -> Self {
        ServeRequest {
            config: ServeConfig::default(),
            recorder: Recorder::noop(),
            engine_seed: 1,
            flush_interval: Duration::from_millis(10),
            adaptive: None,
        }
    }

    /// Arms live re-planning: the server starts on `frontier`'s
    /// cheapest entry and lets the hysteresis kernel switch plans as
    /// the admitted-arrival λ estimate drifts (each switch still gated
    /// by the PA305–PA307 audit). Consumed by
    /// [`crate::ServeHandle::spawn_adaptive`].
    pub fn with_adaptive(mut self, frontier: Arc<FleetFrontier>, policy: ReplanPolicy) -> Self {
        self.adaptive = Some((frontier, policy));
        self
    }

    /// Replaces the batching policy.
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.config.batch = batch;
        self
    }

    /// Replaces the tenant set; tenant ids are indices into `tenants`.
    pub fn with_tenants(mut self, tenants: Vec<TenantPolicy>) -> Self {
        self.config.tenants = tenants;
        self
    }

    /// Attaches a telemetry recorder (admission, batching, and swap
    /// events flow into it alongside the runtime's own spans).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Seed for the synthetic-weight engine the server thread builds.
    pub fn with_engine_seed(mut self, seed: u64) -> Self {
        self.engine_seed = seed;
        self
    }

    /// How long the live server waits for new arrivals before flushing
    /// a partial batch (bounds the queueing latency a task can pay).
    pub fn with_flush_interval(mut self, interval: Duration) -> Self {
        self.flush_interval = interval;
        self
    }

    /// The assembled configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The engine seed.
    pub fn engine_seed(&self) -> u64 {
        self.engine_seed
    }

    /// The flush tick.
    pub fn flush_interval(&self) -> Duration {
        self.flush_interval
    }

    /// The armed re-planning setup, if any.
    pub fn adaptive(&self) -> Option<&(Arc<FleetFrontier>, ReplanPolicy)> {
        self.adaptive.as_ref()
    }
}
