use pico_audit::{AuditReport, Code, Diagnostic};
use pico_sim::{BatchPolicy, TenantPolicy};

use crate::ServeError;

/// The whole serving configuration: one batching policy plus one
/// admission policy per tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Adaptive micro-batching knobs shared by all tenants.
    pub batch: BatchPolicy,
    /// Per-tenant queue bounds and budgets; tenant ids are indices
    /// into this vector.
    pub tenants: Vec<TenantPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch: BatchPolicy::default(),
            tenants: vec![TenantPolicy::default()],
        }
    }
}

impl ServeConfig {
    /// A single-tenant config with default policies.
    pub fn single_tenant() -> Self {
        ServeConfig::default()
    }

    /// A config with `n` tenants sharing the same default policy.
    pub fn tenants(n: usize) -> Self {
        ServeConfig {
            batch: BatchPolicy::default(),
            tenants: vec![TenantPolicy::default(); n],
        }
    }

    /// Every way this config is malformed (empty when servable).
    pub fn violations(&self) -> Vec<String> {
        let mut v = self.batch.violations();
        if self.tenants.is_empty() {
            v.push("config declares no tenants".to_owned());
        }
        for (i, t) in self.tenants.iter().enumerate() {
            for msg in t.violations() {
                v.push(format!("tenant {i}: {msg}"));
            }
        }
        v
    }

    /// Sanity-audits the config: one PA401 error per violation, one
    /// PA402 warning per tenant whose in-flight budget can never bind.
    /// A clean config yields an empty report.
    pub fn audit(&self) -> AuditReport {
        let mut diagnostics: Vec<Diagnostic> = self
            .violations()
            .into_iter()
            .map(|msg| Diagnostic::new(Code::ServeConfigInvalid, msg))
            .collect();
        if diagnostics.is_empty() {
            for (i, t) in self.tenants.iter().enumerate() {
                if t.budget_shadowed(self.batch.max_batch) {
                    diagnostics.push(Diagnostic::new(
                        Code::ServeBudgetShadowed,
                        format!(
                            "tenant {i}: in_flight_budget {} >= queue_capacity {} + max_batch {} \
                             — the budget can never bind",
                            t.in_flight_budget, t.queue_capacity, self.batch.max_batch
                        ),
                    ));
                }
            }
        }
        AuditReport::normalized(diagnostics)
    }

    /// Errors with [`ServeError::InvalidConfig`] unless the config is
    /// servable.
    pub fn validated(&self) -> Result<(), ServeError> {
        let violations = self.violations();
        if violations.is_empty() {
            Ok(())
        } else {
            Err(ServeError::InvalidConfig { violations })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_audit::Severity;

    #[test]
    fn binding_budget_audits_clean_and_default_is_servable() {
        let tight = ServeConfig {
            batch: BatchPolicy::default(),
            tenants: vec![TenantPolicy {
                queue_capacity: 16,
                in_flight_budget: 20, // < 16 + max_batch(8): the budget can bind
            }],
        };
        assert!(tight.audit().is_clean(), "{}", tight.audit());
        assert!(ServeConfig::default().audit().is_executable());
    }

    #[test]
    fn malformed_config_yields_pa401_errors() {
        let bad = ServeConfig {
            batch: BatchPolicy {
                min_batch: 4,
                max_batch: 2,
                target_delay: 0.05,
                beta: 0.3,
            },
            tenants: vec![TenantPolicy {
                queue_capacity: 0,
                in_flight_budget: 8,
            }],
        };
        let report = bad.audit();
        assert!(!report.is_executable());
        assert!(report
            .diagnostics
            .iter()
            .all(|d| d.code == Code::ServeConfigInvalid && d.severity == Severity::Error));
        assert_eq!(report.diagnostics.len(), 2);
        assert!(matches!(
            bad.validated(),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn shadowed_budget_yields_pa402_warning() {
        let shadowed = ServeConfig {
            batch: BatchPolicy::default(), // max_batch 8
            tenants: vec![TenantPolicy {
                queue_capacity: 4,
                in_flight_budget: 100,
            }],
        };
        let report = shadowed.audit();
        assert!(report.is_executable(), "warning must not block serving");
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, Code::ServeBudgetShadowed);
        assert_eq!(report.diagnostics[0].severity, Severity::Warning);
    }
}
