use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use pico_sim::{AdaptiveBatcher, AdmissionLedger, ReplanKernel, ReplanVerdict, SwitchRecord};
use pico_telemetry::{names, Ctx, Recorder};
use pico_tensor::Tensor;

use crate::{ServeConfig, ServeError};

/// One admitted task waiting in a tenant queue: its input and the
/// channel its output (or failure) is delivered on.
pub(crate) struct QueuedTask {
    pub(crate) input: Tensor,
    pub(crate) reply: Sender<Result<Tensor, ServeError>>,
}

/// Live re-planning state: the shared hysteresis kernel plus the
/// record of the switch it currently wants committed. Callers feed the
/// kernel on their own thread (inside [`ServeState::admit`]); the
/// server thread consumes the pending decision at its next drain
/// point.
pub(crate) struct ReplanControl {
    pub(crate) kernel: ReplanKernel,
    pub(crate) record: Option<SwitchRecord>,
}

/// Intake state shared (via `Arc`) between every [`crate::ServeHandle`]
/// clone and the server thread: admission happens on the *caller's*
/// thread against this state, so backpressure is a synchronous typed
/// error, never a blocked submit.
pub struct ServeState {
    pub(crate) ledger: Mutex<AdmissionLedger>,
    pub(crate) batcher: Mutex<AdaptiveBatcher>,
    pub(crate) queues: Vec<Mutex<VecDeque<QueuedTask>>>,
    pub(crate) open: AtomicBool,
    pub(crate) rr: AtomicUsize,
    pub(crate) rec: Recorder,
    pub(crate) started: Instant,
    pub(crate) replan: Option<Mutex<ReplanControl>>,
}

impl ServeState {
    pub(crate) fn new(
        config: &ServeConfig,
        rec: Recorder,
        started: Instant,
        kernel: Option<ReplanKernel>,
    ) -> Self {
        let queues = config
            .tenants
            .iter()
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        ServeState {
            ledger: Mutex::new(AdmissionLedger::new(config.tenants.clone())),
            batcher: Mutex::new(AdaptiveBatcher::new(config.batch)),
            queues,
            open: AtomicBool::new(true),
            rr: AtomicUsize::new(0),
            rec,
            started,
            replan: kernel.map(|kernel| {
                Mutex::new(ReplanControl {
                    kernel,
                    record: None,
                })
            }),
        }
    }

    /// Whether the kernel holds a switch decision the server thread has
    /// not yet committed or rejected.
    pub(crate) fn replan_pending(&self) -> bool {
        self.replan
            .as_ref()
            .is_some_and(|r| r.lock().kernel.pending().is_some())
    }

    /// Seconds since the front-end started — the telemetry timebase.
    pub(crate) fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Admission on the caller's thread: typed rejection or a receiver
    /// for the eventual output. The ledger lock covers the queue push,
    /// so ledger counts and queue lengths can never disagree.
    pub(crate) fn admit(
        &self,
        tenant: usize,
        input: Tensor,
    ) -> Result<Receiver<Result<Tensor, ServeError>>, ServeError> {
        if !self.open.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        if tenant >= self.queues.len() {
            return Err(ServeError::UnknownTenant {
                tenant,
                tenants: self.queues.len(),
            });
        }
        let t = self.now();
        let mut ledger = self.ledger.lock();
        match ledger.offer(tenant) {
            Ok(depth) => {
                let (tx, rx) = bounded(1);
                self.queues[tenant]
                    .lock()
                    .push_back(QueuedTask { input, reply: tx });
                drop(ledger);
                self.batcher.lock().observe_arrival(t);
                if let Some(replan) = &self.replan {
                    let mut ctl = replan.lock();
                    match ctl.kernel.observe_arrival(t) {
                        ReplanVerdict::Switch {
                            from,
                            to,
                            lambda,
                            at,
                        } => {
                            ctl.record = Some(SwitchRecord {
                                at,
                                from,
                                to,
                                lambda,
                            });
                        }
                        ReplanVerdict::Suppressed { lambda, .. } => {
                            self.rec.instant_at(
                                names::REPLAN_SUPPRESSED,
                                Ctx::default(),
                                t,
                                lambda,
                            );
                        }
                        ReplanVerdict::Hold => {}
                    }
                }
                self.rec
                    .instant_at(names::TASK_ADMITTED, Ctx::tenant(tenant), t, depth as f64);
                Ok(rx)
            }
            Err(reason) => {
                let depth = ledger.queued(tenant);
                drop(ledger);
                self.rec
                    .instant_at(names::TASK_REJECTED, Ctx::tenant(tenant), t, depth as f64);
                Err(ServeError::from_reject(tenant, reason))
            }
        }
    }
}
