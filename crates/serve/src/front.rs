use std::collections::VecDeque;

use pico_audit::Auditor;
use pico_fleet::FleetFrontier;
use pico_model::Model;
use pico_partition::{Cluster, CostParams, Plan};
use pico_runtime::PipelineRuntime;
use pico_sim::{
    AdaptiveBatcher, AdmissionLedger, ReplanKernel, ReplanPolicy, ReplanVerdict, ServiceProfile,
    SwitchRecord, TenantServeStat,
};
use pico_telemetry::{names, Ctx, Recorder};
use pico_tensor::{Engine, Tensor};

use crate::{ServeConfig, ServeError};

/// One event of a serving trace, in virtual time.
#[derive(Debug, Clone)]
pub enum ServeEvent {
    /// A tenant's task arrives at virtual time `t`.
    Arrival {
        /// Virtual arrival time in seconds.
        t: f64,
        /// Submitting tenant.
        tenant: usize,
        /// The task input.
        input: Tensor,
    },
    /// A warm swap to `plan` is requested: the first batch that would
    /// start at or after `t` instead drains the pipeline, the switch
    /// pair is audited, and serving resumes under the new plan.
    Swap {
        /// Virtual request time in seconds.
        t: f64,
        /// The plan to swap to.
        plan: Plan,
    },
}

/// One served task in a [`ReplayOutcome`].
#[derive(Debug, Clone)]
pub struct CompletedTask {
    /// Index of the task among the trace's arrivals (0-based).
    pub seq: usize,
    /// Owning tenant.
    pub tenant: usize,
    /// The pipeline's output — bit-identical to single-device
    /// inference on the same engine.
    pub output: Tensor,
    /// Virtual completion time of the task's batch.
    pub finished_at: f64,
}

/// One rejected task in a [`ReplayOutcome`].
#[derive(Debug, Clone)]
pub struct Rejection {
    /// Index of the task among the trace's arrivals (0-based).
    pub seq: usize,
    /// Offering tenant.
    pub tenant: usize,
    /// The typed admission error.
    pub error: ServeError,
}

/// Everything a deterministic replay produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Served tasks in completion order.
    pub completed: Vec<CompletedTask>,
    /// Rejected tasks in arrival order.
    pub rejections: Vec<Rejection>,
    /// Size of every submitted micro-batch, in submission order.
    pub batch_sizes: Vec<usize>,
    /// Admission/completion counts per tenant.
    pub per_tenant: Vec<TenantServeStat>,
    /// Warm swaps performed.
    pub swaps: u64,
    /// Audit-error messages of refused swaps (serving continued on the
    /// old plan).
    pub swap_rejections: Vec<String>,
    /// Serving epochs (plan generations, including the first).
    pub epochs: u64,
    /// Virtual time the last batch completed.
    pub makespan: f64,
}

impl ReplayOutcome {
    /// Mean submitted batch size (0 when no batch ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            return 0.0;
        }
        self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
    }

    /// Largest submitted batch (0 when no batch ran).
    pub fn max_batch(&self) -> usize {
        self.batch_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Smallest submitted batch (0 when no batch ran).
    pub fn min_batch(&self) -> usize {
        self.batch_sizes.iter().copied().min().unwrap_or(0)
    }
}

/// Deterministic replay driver: feeds a scripted [`ServeEvent`] trace
/// through the *real* pipeline (every batch executes on the threaded
/// runtime) while admission, batching, and swap decisions run in
/// virtual time — so two replays of the same trace make bit-identical
/// decisions and produce bit-identical outputs.
///
/// Virtual time is priced by the plan's own cost model: a batch of `B`
/// tasks occupies the server for `latency + (B − 1) · period` seconds
/// ([`ServiceProfile::batch_time`]), mirroring `pico_sim::ServeSim`.
pub struct Replayer<'a> {
    model: &'a Model,
    cluster: &'a Cluster,
    params: &'a CostParams,
    engine: &'a Engine<'a>,
    config: ServeConfig,
    recorder: Recorder,
}

impl<'a> Replayer<'a> {
    /// Creates a replayer with a no-op recorder.
    pub fn new(
        model: &'a Model,
        cluster: &'a Cluster,
        params: &'a CostParams,
        engine: &'a Engine<'a>,
        config: ServeConfig,
    ) -> Self {
        Replayer {
            model,
            cluster,
            params,
            engine,
            config,
            recorder: Recorder::noop(),
        }
    }

    /// Attaches a telemetry recorder; admission/batch/swap events are
    /// recorded at their *virtual* timestamps.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Replays `events` (sorted by time) starting under `plan0`.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a malformed config or an
    /// unsorted/out-of-range trace, [`ServeError::Runtime`] if the
    /// pipeline fails mid-replay.
    pub fn run(&self, plan0: &Plan, events: &[ServeEvent]) -> Result<ReplayOutcome, ServeError> {
        self.config.validated()?;
        let tenants = self.config.tenants.len();
        let mut arrivals: Vec<(f64, usize, &Tensor)> = Vec::new();
        let mut swap_queue: VecDeque<(f64, &Plan)> = VecDeque::new();
        let mut violations = Vec::new();
        let mut last_t = f64::NEG_INFINITY;
        for e in events {
            let t = match e {
                ServeEvent::Arrival { t, .. } | ServeEvent::Swap { t, .. } => *t,
            };
            if t < last_t {
                violations.push(format!("trace is unsorted at t={t}"));
            }
            last_t = t;
            match e {
                ServeEvent::Arrival { t, tenant, input } => {
                    if *tenant >= tenants {
                        violations.push(format!("arrival for unknown tenant {tenant}"));
                    }
                    arrivals.push((*t, *tenant, input));
                }
                ServeEvent::Swap { t, plan } => swap_queue.push_back((*t, plan)),
            }
        }
        if !violations.is_empty() {
            return Err(ServeError::InvalidConfig { violations });
        }

        let auditor = Auditor::new(self.model, self.cluster).with_params(*self.params);
        let cost = self.params.cost_model(self.model);
        let rec = &self.recorder;

        let mut ledger = AdmissionLedger::new(self.config.tenants.clone());
        let mut batcher = AdaptiveBatcher::new(self.config.batch);
        // Queues hold arrival indices; inputs are fetched from
        // `arrivals` at batch-composition time.
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); tenants];
        let mut rr = 0usize;
        let mut ai = 0usize; // next arrival index
        let mut free_at = 0.0f64;
        let mut current: Plan = plan0.clone();
        let mut outcome = ReplayOutcome {
            completed: Vec::new(),
            rejections: Vec::new(),
            batch_sizes: Vec::new(),
            per_tenant: Vec::new(),
            swaps: 0,
            swap_rejections: Vec::new(),
            epochs: 0,
            makespan: 0.0,
        };

        enum Exit {
            Done,
            Swap,
        }

        loop {
            outcome.epochs += 1;
            let epoch_index = outcome.epochs - 1;
            let metrics = cost.evaluate(&current, self.cluster);
            let profile = ServiceProfile {
                latency: metrics.latency,
                period: metrics.period,
            };
            let mut epoch_completed = 0u64;
            let exit = {
                let runtime = PipelineRuntime::builder(self.model, &current, self.engine)
                    .recorder(rec.clone())
                    .build();
                let (exit, _report) = runtime.session(|sess| {
                    let admit = |at: usize,
                                 ledger: &mut AdmissionLedger,
                                 batcher: &mut AdaptiveBatcher,
                                 queues: &mut [VecDeque<usize>],
                                 outcome: &mut ReplayOutcome| {
                        let (t, tenant, _input) = arrivals[at];
                        match ledger.offer(tenant) {
                            Ok(depth) => {
                                queues[tenant].push_back(at);
                                batcher.observe_arrival(t);
                                rec.instant_at(
                                    names::TASK_ADMITTED,
                                    Ctx::tenant(tenant).for_task(at),
                                    t,
                                    depth as f64,
                                );
                            }
                            Err(reason) => {
                                rec.instant_at(
                                    names::TASK_REJECTED,
                                    Ctx::tenant(tenant).for_task(at),
                                    t,
                                    ledger.queued(tenant) as f64,
                                );
                                outcome.rejections.push(Rejection {
                                    seq: at,
                                    tenant,
                                    error: ServeError::from_reject(tenant, reason),
                                });
                            }
                        }
                    };
                    loop {
                        if ledger.total_queued() == 0 {
                            if ai >= arrivals.len() {
                                return Ok(Exit::Done);
                            }
                            let t = arrivals[ai].0;
                            if free_at < t {
                                free_at = t;
                            }
                            admit(ai, &mut ledger, &mut batcher, &mut queues, &mut outcome);
                            ai += 1;
                            continue;
                        }
                        let start = free_at;
                        // Arrivals landing while the previous batch was
                        // in service queue up (and may be rejected)
                        // before the next batch forms.
                        while ai < arrivals.len() && arrivals[ai].0 <= start {
                            admit(ai, &mut ledger, &mut batcher, &mut queues, &mut outcome);
                            ai += 1;
                        }
                        if let Some((at, _)) = swap_queue.front() {
                            if start >= *at {
                                return Ok(Exit::Swap);
                            }
                        }
                        let want = batcher.target().min(ledger.total_queued());
                        let mut picks = vec![0usize; tenants];
                        let mut order: Vec<(usize, usize)> = Vec::with_capacity(want);
                        while order.len() < want {
                            let tenant = rr % tenants;
                            rr += 1;
                            if ledger.queued(tenant) > picks[tenant] {
                                picks[tenant] += 1;
                                let seq = queues[tenant][picks[tenant] - 1];
                                order.push((tenant, seq));
                            }
                        }
                        for (tenant, n) in picks.iter().enumerate() {
                            for _ in 0..*n {
                                queues[tenant].pop_front();
                            }
                            if *n > 0 {
                                ledger.take(tenant, *n);
                            }
                        }
                        rec.observe_at(names::BATCH_FORMED, Ctx::default(), start, want as f64);
                        let inputs: Vec<Tensor> = order
                            .iter()
                            .map(|&(_, seq)| arrivals[seq].2.clone())
                            .collect();
                        let outputs = sess.submit(&inputs)?;
                        let done_at = start + profile.batch_time(want);
                        for ((tenant, seq), output) in order.into_iter().zip(outputs) {
                            ledger.complete(tenant, 1);
                            outcome.completed.push(CompletedTask {
                                seq,
                                tenant,
                                output,
                                finished_at: done_at,
                            });
                        }
                        outcome.batch_sizes.push(want);
                        epoch_completed += want as u64;
                        free_at = done_at;
                        outcome.makespan = done_at;
                    }
                })?;
                exit
            };
            match exit {
                Exit::Done => break,
                Exit::Swap => {
                    let Some((at, next)) = swap_queue.pop_front() else {
                        break;
                    };
                    let report = auditor.audit_switch_pair(&current, next);
                    if report.is_executable() {
                        rec.instant_at(
                            names::SWAP_DRAINED,
                            Ctx::stage(usize::try_from(epoch_index).unwrap_or(usize::MAX)),
                            free_at.max(at),
                            epoch_completed as f64,
                        );
                        current = next.clone();
                        outcome.swaps += 1;
                    } else {
                        outcome
                            .swap_rejections
                            .extend(report.errors().map(|d| d.message.clone()));
                    }
                }
            }
        }
        outcome.per_tenant = (0..tenants)
            .map(|t| TenantServeStat {
                admitted: ledger.admitted(t),
                rejected: ledger.rejected(t),
                completed: ledger.completed(t),
            })
            .collect();
        Ok(outcome)
    }

    /// Replays `events` (arrivals only, time-sorted) under the fleet's
    /// re-planning controller instead of a fixed plan: serving starts
    /// on the frontier's cheapest entry, every admitted arrival feeds
    /// the hysteresis kernel's λ estimator, and when the kernel decides
    /// to switch the current epoch drains, the switch pair is audited
    /// (PA305–PA307), and serving resumes under the new plan — the
    /// APICO adaptive loop in deterministic virtual time.
    ///
    /// Returns the outcome plus the committed switch schedule. The
    /// kernel is shared policy: [`pico_sim::FleetSim`] fed the same
    /// admitted arrivals reproduces the identical schedule in virtual
    /// time.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a malformed config or policy,
    /// a scripted [`ServeEvent::Swap`] (the controller owns switching
    /// here), or an unsorted/out-of-range trace;
    /// [`ServeError::Runtime`] if the pipeline fails mid-replay.
    pub fn run_adaptive(
        &self,
        frontier: &FleetFrontier,
        policy: ReplanPolicy,
        events: &[ServeEvent],
    ) -> Result<(ReplayOutcome, Vec<SwitchRecord>), ServeError> {
        self.config.validated()?;
        let tenants = self.config.tenants.len();
        let mut arrivals: Vec<(f64, usize, &Tensor)> = Vec::new();
        let mut violations = policy.violations();
        let mut last_t = f64::NEG_INFINITY;
        for e in events {
            match e {
                ServeEvent::Arrival { t, tenant, input } => {
                    if *t < last_t {
                        violations.push(format!("trace is unsorted at t={t}"));
                    }
                    last_t = *t;
                    if *tenant >= tenants {
                        violations.push(format!("arrival for unknown tenant {tenant}"));
                    }
                    arrivals.push((*t, *tenant, input));
                }
                ServeEvent::Swap { t, .. } => {
                    violations.push(format!(
                        "scripted swap at t={t}: adaptive replay switches plans itself"
                    ));
                }
            }
        }
        if !violations.is_empty() {
            return Err(ServeError::InvalidConfig { violations });
        }

        let auditor = Auditor::new(self.model, self.cluster).with_params(*self.params);
        let rec = &self.recorder;

        let mut kernel = frontier.kernel(frontier.cheapest(), policy);
        let mut switches: Vec<SwitchRecord> = Vec::new();
        // The verdict travels from the admit path (where the kernel
        // decides) to the epoch boundary (where the audited swap
        // commits) through this slot.
        let mut pending_record: Option<SwitchRecord> = None;

        let mut ledger = AdmissionLedger::new(self.config.tenants.clone());
        let mut batcher = AdaptiveBatcher::new(self.config.batch);
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); tenants];
        let mut rr = 0usize;
        let mut ai = 0usize; // next arrival index
        let mut free_at = 0.0f64;
        let mut outcome = ReplayOutcome {
            completed: Vec::new(),
            rejections: Vec::new(),
            batch_sizes: Vec::new(),
            per_tenant: Vec::new(),
            swaps: 0,
            swap_rejections: Vec::new(),
            epochs: 0,
            makespan: 0.0,
        };

        enum Exit {
            Done,
            Replan,
        }

        loop {
            outcome.epochs += 1;
            let epoch_index = outcome.epochs - 1;
            let (profile, current) = {
                let entry = &frontier.entries()[kernel.current()];
                (entry.profile(), entry.plan.clone())
            };
            let mut epoch_completed = 0u64;
            let exit = {
                let runtime = PipelineRuntime::builder(self.model, &current, self.engine)
                    .recorder(rec.clone())
                    .build();
                let (exit, _report) = runtime.session(|sess| {
                    let admit = |at: usize,
                                 ledger: &mut AdmissionLedger,
                                 batcher: &mut AdaptiveBatcher,
                                 kernel: &mut ReplanKernel,
                                 pending_record: &mut Option<SwitchRecord>,
                                 queues: &mut [VecDeque<usize>],
                                 outcome: &mut ReplayOutcome| {
                        let (t, tenant, _input) = arrivals[at];
                        match ledger.offer(tenant) {
                            Ok(depth) => {
                                queues[tenant].push_back(at);
                                batcher.observe_arrival(t);
                                match kernel.observe_arrival(t) {
                                    ReplanVerdict::Switch {
                                        from,
                                        to,
                                        lambda,
                                        at: boundary,
                                    } => {
                                        *pending_record = Some(SwitchRecord {
                                            at: boundary,
                                            from,
                                            to,
                                            lambda,
                                        });
                                    }
                                    ReplanVerdict::Suppressed { lambda, .. } => {
                                        rec.instant_at(
                                            names::REPLAN_SUPPRESSED,
                                            Ctx::default(),
                                            t,
                                            lambda,
                                        );
                                    }
                                    ReplanVerdict::Hold => {}
                                }
                                rec.instant_at(
                                    names::TASK_ADMITTED,
                                    Ctx::tenant(tenant).for_task(at),
                                    t,
                                    depth as f64,
                                );
                            }
                            Err(reason) => {
                                rec.instant_at(
                                    names::TASK_REJECTED,
                                    Ctx::tenant(tenant).for_task(at),
                                    t,
                                    ledger.queued(tenant) as f64,
                                );
                                outcome.rejections.push(Rejection {
                                    seq: at,
                                    tenant,
                                    error: ServeError::from_reject(tenant, reason),
                                });
                            }
                        }
                    };
                    loop {
                        if ledger.total_queued() == 0 {
                            if ai >= arrivals.len() {
                                return Ok(Exit::Done);
                            }
                            let t = arrivals[ai].0;
                            if free_at < t {
                                free_at = t;
                            }
                            admit(
                                ai,
                                &mut ledger,
                                &mut batcher,
                                &mut kernel,
                                &mut pending_record,
                                &mut queues,
                                &mut outcome,
                            );
                            ai += 1;
                            continue;
                        }
                        let start = free_at;
                        while ai < arrivals.len() && arrivals[ai].0 <= start {
                            admit(
                                ai,
                                &mut ledger,
                                &mut batcher,
                                &mut kernel,
                                &mut pending_record,
                                &mut queues,
                                &mut outcome,
                            );
                            ai += 1;
                        }
                        // The same checkpoint where `run` honors a
                        // scripted swap — and where `FleetSim` commits —
                        // so all controllers switch at identical points
                        // of virtual time.
                        if kernel.pending().is_some() {
                            return Ok(Exit::Replan);
                        }
                        let want = batcher.target().min(ledger.total_queued());
                        let mut picks = vec![0usize; tenants];
                        let mut order: Vec<(usize, usize)> = Vec::with_capacity(want);
                        while order.len() < want {
                            let tenant = rr % tenants;
                            rr += 1;
                            if ledger.queued(tenant) > picks[tenant] {
                                picks[tenant] += 1;
                                let seq = queues[tenant][picks[tenant] - 1];
                                order.push((tenant, seq));
                            }
                        }
                        for (tenant, n) in picks.iter().enumerate() {
                            for _ in 0..*n {
                                queues[tenant].pop_front();
                            }
                            if *n > 0 {
                                ledger.take(tenant, *n);
                            }
                        }
                        rec.observe_at(names::BATCH_FORMED, Ctx::default(), start, want as f64);
                        let inputs: Vec<Tensor> = order
                            .iter()
                            .map(|&(_, seq)| arrivals[seq].2.clone())
                            .collect();
                        let outputs = sess.submit(&inputs)?;
                        let done_at = start + profile.batch_time(want);
                        for ((tenant, seq), output) in order.into_iter().zip(outputs) {
                            ledger.complete(tenant, 1);
                            outcome.completed.push(CompletedTask {
                                seq,
                                tenant,
                                output,
                                finished_at: done_at,
                            });
                        }
                        outcome.batch_sizes.push(want);
                        epoch_completed += want as u64;
                        free_at = done_at;
                        outcome.makespan = done_at;
                    }
                })?;
                exit
            };
            match exit {
                Exit::Done => break,
                Exit::Replan => {
                    let to = kernel
                        .pending()
                        .expect("replan exit without pending switch");
                    let record = pending_record
                        .take()
                        .expect("pending switch without its record");
                    let report = auditor.audit_switch_pair(&current, &frontier.entries()[to].plan);
                    if report.is_executable() {
                        let to = kernel.committed();
                        rec.instant_at(
                            names::SWAP_DRAINED,
                            Ctx::stage(usize::try_from(epoch_index).unwrap_or(usize::MAX)),
                            free_at,
                            epoch_completed as f64,
                        );
                        rec.instant_at(
                            names::REPLAN_TRIGGERED,
                            Ctx::stage(to),
                            free_at,
                            record.lambda,
                        );
                        switches.push(record);
                        outcome.swaps += 1;
                    } else {
                        // Unreachable while the kernel only proposes
                        // matrix-approved targets; kept as a guard so a
                        // frontier/audit drift degrades to "no switch"
                        // instead of a wrong plan.
                        kernel.rejected();
                        outcome
                            .swap_rejections
                            .extend(report.errors().map(|d| d.message.clone()));
                    }
                }
            }
        }
        outcome.per_tenant = (0..tenants)
            .map(|t| TenantServeStat {
                admitted: ledger.admitted(t),
                rejected: ledger.rejected(t),
                completed: ledger.completed(t),
            })
            .collect();
        Ok((outcome, switches))
    }
}
