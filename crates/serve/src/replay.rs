use pico_model::Model;
use pico_partition::{Cluster, CostParams, OptimalFused, PicoPlanner, Plan, PlanRequest, Planner};
use pico_sim::{BatchPolicy, TenantPolicy};
use pico_tensor::Tensor;

use crate::{ServeConfig, ServeError, ServeEvent};

/// The built-in deterministic serving traces driven by
/// `pico serve --replay`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayScript {
    /// Constant inter-arrival gap of 1.25× the plan latency — a
    /// singleton batch costs one full pipeline traversal, so this is
    /// the fastest sustainable un-batched pace; the batcher settles at
    /// its minimum and nothing is rejected.
    Steady,
    /// Alternating quiet stretches (2× latency) and dense bursts
    /// (0.15× period) — batch sizes visibly grow inside bursts, and
    /// admission control rejects exactly at the queue bound.
    Bursty,
    /// Gaps ramp linearly from 3× the latency down to 0.2× the period
    /// — the adaptive target climbs as the trace accelerates.
    Ramp,
}

impl ReplayScript {
    /// Every built-in script, in CLI-help order.
    pub const ALL: [ReplayScript; 3] = [
        ReplayScript::Steady,
        ReplayScript::Bursty,
        ReplayScript::Ramp,
    ];

    /// Parses a CLI argument (case-insensitive).
    pub fn parse(s: &str) -> Option<ReplayScript> {
        match s.to_ascii_lowercase().as_str() {
            "steady" => Some(ReplayScript::Steady),
            "bursty" => Some(ReplayScript::Bursty),
            "ramp" => Some(ReplayScript::Ramp),
            _ => None,
        }
    }

    /// The script's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ReplayScript::Steady => "steady",
            ReplayScript::Bursty => "bursty",
            ReplayScript::Ramp => "ramp",
        }
    }
}

/// Shape parameters for a scripted trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptSpec {
    /// Number of task arrivals.
    pub tasks: usize,
    /// Number of tenants (arrivals round-robin across them).
    pub tenants: usize,
    /// Seed for the synthetic task inputs.
    pub seed: u64,
    /// When `Some(k)`, a warm-swap request (PICO → optimally fused) is
    /// scheduled at the `k`-th arrival's timestamp.
    pub swap_at: Option<usize>,
}

impl Default for ScriptSpec {
    fn default() -> Self {
        ScriptSpec {
            tasks: 96,
            tenants: 2,
            seed: 7,
            swap_at: None,
        }
    }
}

impl ScriptSpec {
    /// The default spec with a mid-trace warm swap.
    pub fn with_midtrace_swap(mut self) -> Self {
        self.swap_at = Some(self.tasks / 2);
        self
    }
}

/// A fully-assembled replay: the starting plan, the serving config,
/// and the event trace. Feed to [`crate::Replayer::run`].
#[derive(Debug, Clone)]
pub struct ReplayPlan {
    /// The plan serving starts under (the PICO pipeline).
    pub initial: Plan,
    /// Batch + tenant policies sized for the script.
    pub config: ServeConfig,
    /// The time-sorted event trace.
    pub events: Vec<ServeEvent>,
}

/// Builds a deterministic trace for `script`: arrival gaps are scaled
/// by the initial plan's analytic period, so the same script exercises
/// the same queueing regimes on any model/cluster pair. The optional
/// swap targets the optimally fused plan — the paper's canonical
/// audit-passing switch partner for the PICO pipeline.
///
/// # Errors
///
/// [`ServeError::Planning`] when either planner fails on the inputs.
pub fn build_script(
    model: &Model,
    cluster: &Cluster,
    params: &CostParams,
    script: ReplayScript,
    spec: &ScriptSpec,
) -> Result<ReplayPlan, ServeError> {
    let plan = |p: &dyn Planner| {
        p.plan(&PlanRequest::new(model, cluster, params))
            .map_err(|e| ServeError::Planning {
                detail: e.to_string(),
            })
    };
    let initial = plan(&PicoPlanner::new())?;
    let fused = plan(&OptimalFused::new())?;
    let metrics = params.cost_model(model).evaluate(&initial, cluster);
    let (period, latency) = (metrics.period, metrics.latency);
    let tenants = spec.tenants.max(1);

    let config = ServeConfig {
        batch: BatchPolicy {
            min_batch: 1,
            max_batch: 8,
            target_delay: 2.0 * period,
            beta: 0.4,
        },
        tenants: vec![
            TenantPolicy {
                queue_capacity: 8,
                in_flight_budget: 12,
            };
            tenants
        ],
    };

    // Quiet pacing scales with the plan *latency* (what a singleton
    // batch costs end to end); burst pacing scales with the *period*
    // (the marginal cost of one more task in a batch). That keeps the
    // quiet regimes sustainable and the bursts genuinely overloading
    // on any model/cluster pair.
    let gap = |k: usize| -> f64 {
        match script {
            ReplayScript::Steady => 1.25 * latency,
            ReplayScript::Bursty => {
                // 32-task cycle: 8 quiet arrivals, then a 24-deep burst.
                if k % 32 < 8 {
                    2.0 * latency
                } else {
                    0.15 * period
                }
            }
            ReplayScript::Ramp => {
                let frac = k as f64 / spec.tasks.max(1) as f64;
                (1.0 - frac) * 3.0 * latency + frac * 0.2 * period
            }
        }
    };

    let shape = model.input_shape();
    let mut events = Vec::with_capacity(spec.tasks + 1);
    let mut t = 0.0f64;
    for k in 0..spec.tasks {
        t += gap(k);
        if spec.swap_at == Some(k) {
            events.push(ServeEvent::Swap {
                t,
                plan: fused.clone(),
            });
        }
        events.push(ServeEvent::Arrival {
            t,
            tenant: k % tenants,
            input: Tensor::random(shape, spec.seed * 1000 + k as u64),
        });
    }
    Ok(ReplayPlan {
        initial,
        config,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;

    fn setup() -> (Model, Cluster, CostParams) {
        (
            zoo::toy(4),
            Cluster::pi_cluster(4, 1.0),
            CostParams::default(),
        )
    }

    #[test]
    fn scripts_are_sorted_and_sized() {
        let (m, c, p) = setup();
        for script in ReplayScript::ALL {
            let spec = ScriptSpec::default().with_midtrace_swap();
            let rp = build_script(&m, &c, &p, script, &spec).unwrap();
            assert_eq!(rp.events.len(), spec.tasks + 1, "{}", script.name());
            let mut last = f64::NEG_INFINITY;
            let mut swaps = 0;
            for e in &rp.events {
                let t = match e {
                    ServeEvent::Arrival { t, .. } | ServeEvent::Swap { t, .. } => *t,
                };
                assert!(t >= last, "{} trace must be sorted", script.name());
                last = t;
                if matches!(e, ServeEvent::Swap { .. }) {
                    swaps += 1;
                }
            }
            assert_eq!(swaps, 1);
        }
    }

    #[test]
    fn same_spec_builds_identical_traces() {
        let (m, c, p) = setup();
        let spec = ScriptSpec::default();
        let a = build_script(&m, &c, &p, ReplayScript::Bursty, &spec).unwrap();
        let b = build_script(&m, &c, &p, ReplayScript::Bursty, &spec).unwrap();
        for (x, y) in a.events.iter().zip(&b.events) {
            match (x, y) {
                (
                    ServeEvent::Arrival {
                        t: t0,
                        tenant: k0,
                        input: i0,
                    },
                    ServeEvent::Arrival {
                        t: t1,
                        tenant: k1,
                        input: i1,
                    },
                ) => {
                    assert_eq!(t0, t1);
                    assert_eq!(k0, k1);
                    assert_eq!(i0.data(), i1.data());
                }
                (ServeEvent::Swap { t: t0, .. }, ServeEvent::Swap { t: t1, .. }) => {
                    assert_eq!(t0, t1)
                }
                _ => panic!("event kinds diverge"),
            }
        }
    }

    #[test]
    fn parse_roundtrips() {
        for script in ReplayScript::ALL {
            assert_eq!(ReplayScript::parse(script.name()), Some(script));
        }
        assert_eq!(ReplayScript::parse("nope"), None);
    }
}
