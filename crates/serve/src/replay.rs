use std::sync::Arc;

use pico_fleet::{CacheKey, FleetConfig, FleetFrontier, PlanCache};
use pico_model::Model;
use pico_partition::{Cluster, CostParams, Plan};
use pico_sim::{BatchPolicy, TenantPolicy, WorkloadBand};
use pico_telemetry::Recorder;
use pico_tensor::Tensor;

use crate::{ServeConfig, ServeError, ServeEvent};

/// Fetches the deployment's plan frontier from the process-global
/// [`PlanCache`], building (and caching) it on first use.
///
/// This is the serving layer's only road to a plan: every front-end —
/// scripted replay, adaptive replay, live server — draws plans from the
/// cached Pareto frontier instead of invoking planners directly (lint
/// rule 9), so repeated serves of one deployment pay for planning and
/// switch audits exactly once per process.
///
/// # Errors
///
/// [`ServeError::Planning`] when no candidate plan survives the deep
/// audit for this deployment.
pub fn fleet_frontier(
    model: &Model,
    cluster: &Cluster,
    params: &CostParams,
    rec: &Recorder,
) -> Result<Arc<FleetFrontier>, ServeError> {
    let key = CacheKey::new(model, cluster, params, WorkloadBand::point(0.0));
    PlanCache::global()
        .get_or_build(key, rec, || {
            FleetFrontier::build(model, cluster, params, FleetConfig::default())
        })
        .map_err(|e| ServeError::Planning {
            detail: e.to_string(),
        })
}

/// The built-in deterministic serving traces driven by
/// `pico serve --replay`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayScript {
    /// Constant inter-arrival gap of 1.25× the plan latency — a
    /// singleton batch costs one full pipeline traversal, so this is
    /// the fastest sustainable un-batched pace; the batcher settles at
    /// its minimum and nothing is rejected.
    Steady,
    /// Alternating quiet stretches (2× latency) and dense bursts
    /// (0.15× period) — batch sizes visibly grow inside bursts, and
    /// admission control rejects exactly at the queue bound.
    Bursty,
    /// Gaps ramp linearly from 3× the latency down to 0.2× the period
    /// — the adaptive target climbs as the trace accelerates.
    Ramp,
}

impl ReplayScript {
    /// Every built-in script, in CLI-help order.
    pub const ALL: [ReplayScript; 3] = [
        ReplayScript::Steady,
        ReplayScript::Bursty,
        ReplayScript::Ramp,
    ];

    /// Parses a CLI argument (case-insensitive).
    pub fn parse(s: &str) -> Option<ReplayScript> {
        match s.to_ascii_lowercase().as_str() {
            "steady" => Some(ReplayScript::Steady),
            "bursty" => Some(ReplayScript::Bursty),
            "ramp" => Some(ReplayScript::Ramp),
            _ => None,
        }
    }

    /// The script's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ReplayScript::Steady => "steady",
            ReplayScript::Bursty => "bursty",
            ReplayScript::Ramp => "ramp",
        }
    }
}

/// Shape parameters for a scripted trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptSpec {
    /// Number of task arrivals.
    pub tasks: usize,
    /// Number of tenants (arrivals round-robin across them).
    pub tenants: usize,
    /// Seed for the synthetic task inputs.
    pub seed: u64,
    /// When `Some(k)`, a warm-swap request (PICO → optimally fused) is
    /// scheduled at the `k`-th arrival's timestamp.
    pub swap_at: Option<usize>,
}

impl Default for ScriptSpec {
    fn default() -> Self {
        ScriptSpec {
            tasks: 96,
            tenants: 2,
            seed: 7,
            swap_at: None,
        }
    }
}

impl ScriptSpec {
    /// The default spec with a mid-trace warm swap.
    pub fn with_midtrace_swap(mut self) -> Self {
        self.swap_at = Some(self.tasks / 2);
        self
    }
}

/// A fully-assembled replay: the starting plan, the serving config,
/// and the event trace. Feed to [`crate::Replayer::run`].
#[derive(Debug, Clone)]
pub struct ReplayPlan {
    /// The plan serving starts under (the frontier's highest-throughput
    /// entry — the unconstrained PICO pipeline).
    pub initial: Plan,
    /// Batch + tenant policies sized for the script.
    pub config: ServeConfig,
    /// The time-sorted event trace.
    pub events: Vec<ServeEvent>,
    /// The cached fleet frontier the plans were drawn from — hand it to
    /// [`crate::Replayer::run_adaptive`] to let the re-planning
    /// controller pick plans itself.
    pub frontier: Arc<FleetFrontier>,
}

/// Builds a deterministic trace for `script`: arrival gaps are scaled
/// by the initial plan's analytic period, so the same script exercises
/// the same queueing regimes on any model/cluster pair. Plans come from
/// the cached fleet frontier: serving starts on the highest-throughput
/// entry, and the optional swap targets the cheapest entry the
/// `PA305`–`PA307` switch audit reaches from it (the optimally fused
/// plan on the paper's deployments).
///
/// # Errors
///
/// [`ServeError::Planning`] when the frontier cannot be built, or when
/// a swap is requested and no audit-approved switch partner exists.
pub fn build_script(
    model: &Model,
    cluster: &Cluster,
    params: &CostParams,
    script: ReplayScript,
    spec: &ScriptSpec,
) -> Result<ReplayPlan, ServeError> {
    let frontier = fleet_frontier(model, cluster, params, &Recorder::noop())?;
    let initial_entry = &frontier.entries()[frontier.max_throughput()];
    let initial = initial_entry.plan.clone();
    let fused = match spec.swap_at {
        None => None,
        Some(_) => match frontier.swap_target(frontier.max_throughput()) {
            Some(i) => Some(frontier.entries()[i].plan.clone()),
            None => {
                return Err(ServeError::Planning {
                    detail: "no audit-approved swap partner on the frontier".to_owned(),
                })
            }
        },
    };
    let (period, latency) = (initial_entry.period, initial_entry.latency);
    let tenants = spec.tenants.max(1);

    let config = ServeConfig {
        batch: BatchPolicy {
            min_batch: 1,
            max_batch: 8,
            target_delay: 2.0 * period,
            beta: 0.4,
        },
        tenants: vec![
            TenantPolicy {
                queue_capacity: 8,
                in_flight_budget: 12,
            };
            tenants
        ],
    };

    // Quiet pacing scales with the plan *latency* (what a singleton
    // batch costs end to end); burst pacing scales with the *period*
    // (the marginal cost of one more task in a batch). That keeps the
    // quiet regimes sustainable and the bursts genuinely overloading
    // on any model/cluster pair.
    let gap = |k: usize| -> f64 {
        match script {
            ReplayScript::Steady => 1.25 * latency,
            ReplayScript::Bursty => {
                // 32-task cycle: 8 quiet arrivals, then a 24-deep burst.
                if k % 32 < 8 {
                    2.0 * latency
                } else {
                    0.15 * period
                }
            }
            ReplayScript::Ramp => {
                let frac = k as f64 / spec.tasks.max(1) as f64;
                (1.0 - frac) * 3.0 * latency + frac * 0.2 * period
            }
        }
    };

    let shape = model.input_shape();
    let mut events = Vec::with_capacity(spec.tasks + 1);
    let mut t = 0.0f64;
    for k in 0..spec.tasks {
        t += gap(k);
        if spec.swap_at == Some(k) {
            events.push(ServeEvent::Swap {
                t,
                plan: fused.clone().expect("swap partner resolved above"),
            });
        }
        events.push(ServeEvent::Arrival {
            t,
            tenant: k % tenants,
            input: Tensor::random(shape, spec.seed * 1000 + k as u64),
        });
    }
    Ok(ReplayPlan {
        initial,
        config,
        events,
        frontier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;

    fn setup() -> (Model, Cluster, CostParams) {
        (
            zoo::toy(4),
            Cluster::pi_cluster(4, 1.0),
            CostParams::default(),
        )
    }

    #[test]
    fn scripts_are_sorted_and_sized() {
        let (m, c, p) = setup();
        for script in ReplayScript::ALL {
            let spec = ScriptSpec::default().with_midtrace_swap();
            let rp = build_script(&m, &c, &p, script, &spec).unwrap();
            assert_eq!(rp.events.len(), spec.tasks + 1, "{}", script.name());
            let mut last = f64::NEG_INFINITY;
            let mut swaps = 0;
            for e in &rp.events {
                let t = match e {
                    ServeEvent::Arrival { t, .. } | ServeEvent::Swap { t, .. } => *t,
                };
                assert!(t >= last, "{} trace must be sorted", script.name());
                last = t;
                if matches!(e, ServeEvent::Swap { .. }) {
                    swaps += 1;
                }
            }
            assert_eq!(swaps, 1);
        }
    }

    #[test]
    fn same_spec_builds_identical_traces() {
        let (m, c, p) = setup();
        let spec = ScriptSpec::default();
        let a = build_script(&m, &c, &p, ReplayScript::Bursty, &spec).unwrap();
        let b = build_script(&m, &c, &p, ReplayScript::Bursty, &spec).unwrap();
        for (x, y) in a.events.iter().zip(&b.events) {
            match (x, y) {
                (
                    ServeEvent::Arrival {
                        t: t0,
                        tenant: k0,
                        input: i0,
                    },
                    ServeEvent::Arrival {
                        t: t1,
                        tenant: k1,
                        input: i1,
                    },
                ) => {
                    assert_eq!(t0, t1);
                    assert_eq!(k0, k1);
                    assert_eq!(i0.data(), i1.data());
                }
                (ServeEvent::Swap { t: t0, .. }, ServeEvent::Swap { t: t1, .. }) => {
                    assert_eq!(t0, t1)
                }
                _ => panic!("event kinds diverge"),
            }
        }
    }

    #[test]
    fn parse_roundtrips() {
        for script in ReplayScript::ALL {
            assert_eq!(ReplayScript::parse(script.name()), Some(script));
        }
        assert_eq!(ReplayScript::parse("nope"), None);
    }
}
