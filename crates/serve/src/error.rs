use pico_runtime::RuntimeError;
use pico_sim::RejectReason;

/// Why the serving front-end turned a request away or stopped.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// rejection kinds can be added without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The tenant's bounded queue is full — backpressure, try later.
    QueueFull {
        /// Rejected tenant.
        tenant: usize,
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// Admitting would exceed the tenant's in-flight budget.
    TenantOverBudget {
        /// Rejected tenant.
        tenant: usize,
        /// The budget that was hit.
        budget: usize,
    },
    /// The request names a tenant the front-end was not configured for.
    UnknownTenant {
        /// The offending tenant id.
        tenant: usize,
        /// How many tenants are configured.
        tenants: usize,
    },
    /// A warm swap was refused by the switch-pair audit
    /// (PA305–PA307); serving continues on the current plan.
    SwapRejected {
        /// Messages of the blocking audit errors.
        errors: Vec<String>,
    },
    /// The serving configuration has violations (audit code PA401).
    InvalidConfig {
        /// One sentence per problem.
        violations: Vec<String>,
    },
    /// Building a plan for a scripted replay failed.
    Planning {
        /// The planner's error, rendered.
        detail: String,
    },
    /// The front-end has shut down (or is shutting down) and accepts
    /// no further work.
    Closed,
    /// The pipeline itself failed while executing a batch.
    Runtime(RuntimeError),
}

impl ServeError {
    /// Maps a policy-level [`RejectReason`] onto the tenant it hit.
    pub fn from_reject(tenant: usize, reason: RejectReason) -> Self {
        match reason {
            RejectReason::QueueFull { capacity } => ServeError::QueueFull { tenant, capacity },
            RejectReason::OverBudget { budget } => ServeError::TenantOverBudget { tenant, budget },
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { tenant, capacity } => {
                write!(f, "tenant {tenant}: queue full ({capacity} waiting)")
            }
            ServeError::TenantOverBudget { tenant, budget } => {
                write!(f, "tenant {tenant}: in-flight budget {budget} exhausted")
            }
            ServeError::UnknownTenant { tenant, tenants } => {
                write!(f, "unknown tenant {tenant} (configured: 0..{tenants})")
            }
            ServeError::SwapRejected { errors } => {
                write!(f, "warm swap rejected by audit: {}", errors.join("; "))
            }
            ServeError::InvalidConfig { violations } => {
                write!(f, "invalid serve config: {}", violations.join("; "))
            }
            ServeError::Planning { detail } => write!(f, "replay planning failed: {detail}"),
            ServeError::Closed => write!(f, "serving front-end is closed"),
            ServeError::Runtime(e) => write!(f, "pipeline failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for ServeError {
    fn from(e: RuntimeError) -> Self {
        ServeError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reason_maps_to_typed_errors() {
        assert_eq!(
            ServeError::from_reject(2, RejectReason::QueueFull { capacity: 4 }),
            ServeError::QueueFull {
                tenant: 2,
                capacity: 4
            }
        );
        assert_eq!(
            ServeError::from_reject(0, RejectReason::OverBudget { budget: 9 }),
            ServeError::TenantOverBudget {
                tenant: 0,
                budget: 9
            }
        );
    }

    #[test]
    fn display_is_informative() {
        let e = ServeError::QueueFull {
            tenant: 1,
            capacity: 8,
        };
        assert!(e.to_string().contains("tenant 1"));
        assert!(e.to_string().contains('8'));
    }
}
