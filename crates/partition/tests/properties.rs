//! Property-based tests over the planners: every strategy must produce
//! valid plans on arbitrary (model, cluster, bandwidth) combinations,
//! and the DP must be exact where an exact answer is checkable.

use pico_model::{zoo, ConvSpec, Layer, Model, PoolSpec, Shape};
use pico_partition::{
    structural_diagnostics, BfsOptimal, Cluster, CostParams, Device, EarlyFused, LayerWise,
    OptimalFused, PicoPlanner, PlanRequest, Planner,
};
use proptest::prelude::*;

/// Random small conv/pool chains (kernels >= strides, shapes kept valid).
fn arb_model() -> impl Strategy<Value = Model> {
    let layer = prop_oneof![
        (1usize..=4, 1usize..=2, 0usize..=1).prop_map(|(k, s, p)| (k.max(s), s, p, true)),
        (2usize..=2, 2usize..=2).prop_map(|(k, s)| (k, s, 0usize, false)),
    ];
    proptest::collection::vec(layer, 1..8).prop_map(|specs| {
        let input = Shape::new(3, 48, 48);
        let mut units: Vec<pico_model::Unit> = Vec::new();
        let mut shape = input;
        for (i, (k, s, p, conv)) in specs.into_iter().enumerate() {
            let layer = if conv {
                Layer::conv(
                    format!("c{i}"),
                    ConvSpec::square(shape.channels, 8, k, s, p),
                )
            } else {
                Layer::pool(format!("p{i}"), PoolSpec::max(k, s))
            };
            if let Ok(next) = layer.output_shape(shape) {
                if next.height >= 2 && next.width >= 2 {
                    shape = next;
                    units.push(layer.into());
                }
            }
        }
        if units.is_empty() {
            units.push(Layer::conv("fallback", ConvSpec::square(3, 8, 3, 1, 1)).into());
        }
        Model::new("prop", input, units).expect("chain is consistent")
    })
}

/// Random clusters: 1..6 devices with frequencies in [0.4, 2.0] GHz.
fn arb_cluster() -> impl Strategy<Value = Cluster> {
    proptest::collection::vec(0.4f64..2.0, 1..6).prop_map(|freqs| {
        Cluster::new(
            freqs
                .into_iter()
                .enumerate()
                .map(|(i, f)| Device::from_frequency(i, f))
                .collect(),
        )
    })
}

fn planners() -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(LayerWise::new()),
        Box::new(EarlyFused::new()),
        Box::new(OptimalFused::new()),
        Box::new(PicoPlanner::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every planner yields a plan that validates, with finite positive
    /// period and latency, period <= latency.
    #[test]
    fn all_planners_produce_valid_plans(
        model in arb_model(),
        cluster in arb_cluster(),
        mbps in 1.0f64..500.0,
    ) {
        let params = CostParams::new(mbps * 1e6);
        let cm = params.cost_model(&model);
        for planner in planners() {
            let plan = planner.plan(&PlanRequest::new(&model, &cluster, &params)).expect("planner succeeds");
            // Stricter than `validate`: the complete structural scan
            // must come back empty, and its emptiness must agree with
            // the validate wrapper built on top of it.
            let diags = structural_diagnostics(&plan, &model, &cluster);
            prop_assert!(diags.is_empty(), "{}: {:?}", planner.name(), diags);
            prop_assert!(plan.validate(&model, &cluster).is_ok(), "{} invalid", planner.name());
            let metrics = cm.evaluate(&plan, &cluster);
            prop_assert!(metrics.period.is_finite() && metrics.period > 0.0);
            prop_assert!(metrics.latency >= metrics.period - 1e-12);
        }
    }

    /// PICO's period never exceeds the single-stage whole-cluster plan
    /// it could always fall back to.
    #[test]
    fn pico_at_least_matches_single_stage(
        model in arb_model(),
        cluster in arb_cluster(),
    ) {
        let params = CostParams::wifi_50mbps();
        let cm = params.cost_model(&model);
        let plan = PicoPlanner::new().plan(&PlanRequest::new(&model, &cluster, &params)).expect("plans");
        let metrics = cm.evaluate(&plan, &cluster);
        // Single stage over the averaged cluster with every device.
        // The DP optimizes on the averaged cluster, then Algorithm 2
        // re-maps to the real devices, which can shift the period by a
        // few percent — the bound is therefore loose, catching only
        // structural regressions.
        let single = cm.even_stage_cost(model.full_segment(), &cluster.averaged(), cluster.len());
        prop_assert!(
            metrics.period <= single.total() * 1.25 + 1e-9,
            "pico {} single {}",
            metrics.period,
            single.total()
        );
    }

    /// Capacity scaling invariance: doubling every device's speed and
    /// the bandwidth leaves *plan structure* decisions unchanged in
    /// their relative quality — period exactly halves for the same plan.
    #[test]
    fn cost_model_scales_linearly(model in arb_model(), cluster in arb_cluster()) {
        let params = CostParams::new(50e6);
        let plan = PicoPlanner::new().plan(&PlanRequest::new(&model, &cluster, &params)).expect("plans");
        let m1 = params.cost_model(&model).evaluate(&plan, &cluster);
        let fast: Cluster = cluster
            .devices()
            .iter()
            .map(|d| Device::new(d.id, d.name.clone(), d.capacity * 2.0).with_alpha(d.alpha))
            .collect();
        let fast_params = CostParams::new(100e6);
        let m2 = fast_params.cost_model(&model).evaluate(&plan, &fast);
        prop_assert!((m2.period - m1.period / 2.0).abs() < 1e-9 * m1.period.max(1.0));
        prop_assert!((m2.latency - m1.latency / 2.0).abs() < 1e-9 * m1.latency.max(1.0));
    }

    /// The redundancy bookkeeping is exact: per-stage totals minus
    /// redundancy equal the lazy monolithic cost.
    #[test]
    fn redundancy_accounting_is_exact(model in arb_model(), cluster in arb_cluster()) {
        use pico_partition::redundancy::stage_work;
        let params = CostParams::wifi_50mbps();
        let plan = PicoPlanner::new().plan(&PlanRequest::new(&model, &cluster, &params)).expect("plans");
        for stage in &plan.stages {
            let work = stage_work(&model, stage);
            let computed: f64 = work.iter().map(|w| w.total_flops).sum();
            let redundant: f64 = work.iter().map(|w| w.redundant_flops).sum();
            let out = model.unit_output_shape(stage.segment.end - 1);
            // Compare against the fully lazy (rows AND cols) trace: the
            // region bookkeeping skips edge columns strided layers never
            // read, exactly like the engine does.
            let lazy = model.segment_region_flops(
                stage.segment,
                pico_model::Region2::full(out.height, out.width),
            );
            prop_assert!(
                (computed - redundant - lazy).abs() <= 1e-6 * lazy.max(1.0),
                "computed {computed} redundant {redundant} lazy {lazy}"
            );
        }
    }
}

proptest! {
    // BFS is expensive; keep the exactness check small and rare.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On tiny instances, the heuristic never beats the exhaustive
    /// optimum (with identical share balancing).
    #[test]
    fn bfs_lower_bounds_pico(layers in 2usize..5, devices in 2usize..4, seed in 0u64..100) {
        let model = zoo::toy(layers);
        let freqs: Vec<f64> = (0..devices)
            .map(|i| 0.6 + 0.2 * ((seed as usize + i) % 4) as f64)
            .collect();
        let cluster = Cluster::new(
            freqs
                .into_iter()
                .enumerate()
                .map(|(i, f)| Device::from_frequency(i, f))
                .collect(),
        );
        let params = CostParams::wifi_50mbps();
        let cm = params.cost_model(&model);
        let bfs = BfsOptimal::new().search(&model, &cluster, &params).expect("searches");
        let pico = PicoPlanner::new().plan(&PlanRequest::new(&model, &cluster, &params)).expect("plans");
        let pico_period = cm.evaluate(&pico, &cluster).period;
        prop_assert!(bfs.period <= pico_period * 1.0001,
            "bfs {} pico {pico_period}", bfs.period);
    }
}
