use crate::{Plan, PlanError, PlanRequest};

/// A parallelization strategy: turns a [`PlanRequest`] (model, cluster,
/// environment, extras) into an executable [`Plan`].
///
/// All implementations in this crate return plans that pass
/// [`Plan::validate`] against the request's model and cluster, open a
/// `plan` telemetry span when the request carries a recorder, and
/// enforce the request's memory budget via [`PlanRequest::admit`].
pub trait Planner {
    /// Short display name of the strategy (`"LW"`, `"PICO"`, ...).
    fn name(&self) -> &'static str;

    /// Computes a plan for `req`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::LatencyInfeasible`] when the request's
    /// `params.t_lim` is set and no plan meets it,
    /// [`PlanError::UnsupportedModel`] when the model cannot be
    /// expressed by this strategy, or
    /// [`PlanError::MemoryBudgetExceeded`] when the request caps
    /// per-device memory below what the plan needs.
    fn plan(&self, req: &PlanRequest<'_>) -> Result<Plan, PlanError>;
}

impl<T: Planner + ?Sized> Planner for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn plan(&self, req: &PlanRequest<'_>) -> Result<Plan, PlanError> {
        (**self).plan(req)
    }
}

impl<T: Planner + ?Sized> Planner for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn plan(&self, req: &PlanRequest<'_>) -> Result<Plan, PlanError> {
        (**self).plan(req)
    }
}
