use pico_model::Model;

use crate::{Cluster, CostParams, Plan, PlanError};

/// A parallelization strategy: turns (model, cluster, environment) into
/// an executable [`Plan`].
///
/// All implementations in this crate return plans that pass
/// [`Plan::validate`] against the same model and cluster.
pub trait Planner {
    /// Short display name of the strategy (`"LW"`, `"PICO"`, ...).
    fn name(&self) -> &'static str;

    /// Computes a plan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::LatencyInfeasible`] when `params.t_lim` is
    /// set and no plan meets it, or [`PlanError::UnsupportedModel`] when
    /// the model cannot be expressed by this strategy.
    fn plan(
        &self,
        model: &Model,
        cluster: &Cluster,
        params: &CostParams,
    ) -> Result<Plan, PlanError>;
}

impl<T: Planner + ?Sized> Planner for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn plan(
        &self,
        model: &Model,
        cluster: &Cluster,
        params: &CostParams,
    ) -> Result<Plan, PlanError> {
        (**self).plan(model, cluster, params)
    }
}

impl<T: Planner + ?Sized> Planner for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn plan(
        &self,
        model: &Model,
        cluster: &Cluster,
        params: &CostParams,
    ) -> Result<Plan, PlanError> {
        (**self).plan(model, cluster, params)
    }
}
