use pico_model::{Model, Rows, Segment};
use pico_telemetry::names;

use crate::CostModel;
use crate::{
    Assignment, Cluster, Device, ExecutionMode, Plan, PlanError, PlanRequest, Planner, Scheme,
    Stage,
};

/// The paper's pipelined cooperation planner (Sec. IV):
///
/// 1. **Algorithm 1** — dynamic programming over (segment end, device
///    count) on the idealized homogeneous cluster `D'` (Eq. 12/13),
///    minimizing the pipeline period with `T_lim` pruning;
/// 2. **Algorithm 2** — a greedy pass that hands real heterogeneous
///    devices to stages in order of per-slot computing demand
///    (strongest devices to the most demanding stages);
/// 3. **divide-and-conquer share balancing** ([`balance_rows`]) that
///    re-partitions each stage's output rows across its actual devices.
///
/// The resulting plan is [`ExecutionMode::Pipelined`]: stages own
/// disjoint device subsets and process different tasks concurrently.
/// PICO may deliberately leave devices idle when adding them would not
/// shrink the period (Table I: "PICO uses a subset of edge devices
/// instead of the entire cluster").
///
/// # Example
///
/// ```
/// use pico_model::zoo;
/// use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};
///
/// let model = zoo::mnist_toy();
/// let cluster = Cluster::paper_heterogeneous_6();
/// let plan = PicoPlanner::new().plan(&PlanRequest::new(&model, &cluster, &CostParams::wifi_50mbps()))?;
/// plan.validate(&model, &cluster)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PicoPlanner;

impl PicoPlanner {
    /// Creates the PICO planner.
    pub fn new() -> Self {
        PicoPlanner
    }
}

/// One stage of the homogeneous solution: a segment replicated over `p`
/// average-capacity workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HomoStage {
    seg: Segment,
    p: usize,
}

/// Result of Algorithm 1 on the averaged cluster.
#[derive(Debug, Clone)]
struct HomoSolution {
    stages: Vec<HomoStage>,
    period: f64,
    latency: f64,
}

/// Algorithm 1: memoized DP for the optimal homogeneous pipeline.
///
/// `dp[j][p]` is the best (period, latency) for units `[0, j)` using
/// exactly `p` workers; the final answer minimizes over `p <= |D|`
/// (PICO may idle devices). Candidates whose accumulated latency exceed
/// `t_lim` are pruned, mirroring the paper's greedy pruning — the DP is
/// a heuristic under a latency constraint, exact without one.
fn homogeneous_dp(
    cm: &CostModel<'_>,
    avg: &Cluster,
    t_lim: Option<f64>,
) -> Result<HomoSolution, PlanError> {
    let l = cm.model().len();
    let d = avg.len();

    // Ts[i][j][p]: cost of one stage covering units [i, j) on p workers.
    // Flattened lazy cache.
    let mut ts_cache: Vec<Option<f64>> = vec![None; l * (l + 1) * (d + 1)];
    let idx = |i: usize, j: usize, p: usize| (i * (l + 1) + j) * (d + 1) + p;
    let mut ts = |i: usize, j: usize, p: usize| -> f64 {
        let k = idx(i, j, p);
        if let Some(v) = ts_cache[k] {
            return v;
        }
        let v = cm.even_stage_cost(Segment::new(i, j), avg, p).total();
        ts_cache[k] = Some(v);
        v
    };

    #[derive(Clone, Copy)]
    struct Cell {
        period: f64,
        latency: f64,
        /// `None` = single stage [0, j); `Some((s, p_tail))` = optimal
        /// sub-pipeline [0, s) with `p - p_tail` workers plus a final
        /// stage [s, j) on `p_tail` workers.
        parent: Option<(usize, usize)>,
    }
    let empty = Cell {
        period: f64::INFINITY,
        latency: f64::INFINITY,
        parent: None,
    };
    // dp[j][p], j in 0..=l, p in 0..=d (j=0 / p=0 unused).
    let mut dp = vec![empty; (l + 1) * (d + 1)];
    let at = |j: usize, p: usize| j * (d + 1) + p;

    for j in 1..=l {
        for p in 1..=d {
            // Single stage covering everything so far.
            let single = ts(0, j, p);
            let mut best = Cell {
                period: single,
                latency: single,
                parent: None,
            };
            // Split: sub-pipeline [0, s) + final stage [s, j).
            for s in 1..j {
                for p_tail in 1..p {
                    let head = dp[at(s, p - p_tail)];
                    if head.period.is_infinite() {
                        continue;
                    }
                    let tail = ts(s, j, p_tail);
                    let period = head.period.max(tail);
                    let latency = head.latency + tail;
                    if let Some(lim) = t_lim {
                        if latency > lim {
                            continue;
                        }
                    }
                    if period < best.period || (period == best.period && latency < best.latency) {
                        best = Cell {
                            period,
                            latency,
                            parent: Some((s, p_tail)),
                        };
                    }
                }
            }
            dp[at(j, p)] = best;
        }
    }

    // Answer: best over worker counts, honoring t_lim.
    let mut best_p = 0;
    let mut best = empty;
    let mut best_unconstrained_latency = f64::INFINITY;
    for p in 1..=d {
        let cell = dp[at(l, p)];
        best_unconstrained_latency = best_unconstrained_latency.min(cell.latency);
        let feasible = t_lim.is_none_or(|lim| cell.latency <= lim);
        if feasible
            && (cell.period < best.period
                || (cell.period == best.period && cell.latency < best.latency))
        {
            best = cell;
            best_p = p;
        }
    }
    if best.period.is_infinite() {
        return Err(PlanError::LatencyInfeasible {
            limit: t_lim.unwrap_or(f64::INFINITY),
            best: best_unconstrained_latency,
        });
    }

    // BuildStrategy: walk parents back from (l, best_p).
    let mut stages = Vec::new();
    let (mut j, mut p) = (l, best_p);
    loop {
        let cell = dp[at(j, p)];
        match cell.parent {
            Some((s, p_tail)) => {
                stages.push(HomoStage {
                    seg: Segment::new(s, j),
                    p: p_tail,
                });
                p -= p_tail;
                j = s;
            }
            None => {
                stages.push(HomoStage {
                    seg: Segment::new(0, j),
                    p,
                });
                break;
            }
        }
    }
    stages.reverse();
    Ok(HomoSolution {
        stages,
        period: best.period,
        latency: best.latency,
    })
}

/// Divide-and-conquer share balancing: recursively bisects the device
/// list and searches the row split point that equalizes the two halves'
/// estimated compute time (`flops / Σ capacity`).
///
/// Shares are returned in the order of `devices` and tile `rows`
/// contiguously and exactly. Devices may receive empty shares when there
/// are more devices than rows.
///
/// # Example
///
/// ```
/// use pico_model::{zoo, Rows};
/// use pico_partition::{Device, PlanRequest, balance_rows};
///
/// let model = zoo::toy(4);
/// let fast = Device::from_frequency(0, 1.2);
/// let slow = Device::from_frequency(1, 0.6);
/// let shares = balance_rows(&model, model.full_segment(), Rows::full(64), &[&fast, &slow]);
/// // The 2x faster device gets roughly 2x the rows.
/// assert!(shares[0].len() > shares[1].len());
/// ```
///
/// # Panics
///
/// Panics if `devices` is empty.
pub fn balance_rows(model: &Model, seg: Segment, rows: Rows, devices: &[&Device]) -> Vec<Rows> {
    assert!(!devices.is_empty(), "cannot balance rows over no devices");
    if devices.len() == 1 {
        return vec![rows];
    }
    let mid = devices.len() / 2;
    let (left, right) = devices.split_at(mid);
    let cap_left: f64 = left.iter().map(|d| d.capacity / d.alpha).sum();
    let cap_right: f64 = right.iter().map(|d| d.capacity / d.alpha).sum();

    // Find the split minimizing max(flops_left / cap_left,
    // flops_right / cap_right); the left term is non-decreasing in the
    // split point and the right term non-increasing, so scan for the
    // crossover.
    let mut best_split = rows.start;
    let mut best_cost = f64::INFINITY;
    for split in rows.start..=rows.end {
        let t_left = if split > rows.start {
            model.segment_flops(seg, Rows::new(rows.start, split)) / cap_left
        } else {
            0.0
        };
        let t_right = if split < rows.end {
            model.segment_flops(seg, Rows::new(split, rows.end)) / cap_right
        } else {
            0.0
        };
        let cost = t_left.max(t_right);
        if cost < best_cost {
            best_cost = cost;
            best_split = split;
        } else if t_left > t_right {
            // Past the crossover; no better split ahead.
            break;
        }
    }

    let mut shares = balance_rows(model, seg, Rows::new(rows.start, best_split), left);
    shares.extend(balance_rows(
        model,
        seg,
        Rows::new(best_split, rows.end),
        right,
    ));
    shares
}

/// Algorithm 2: hands real devices to the homogeneous stages.
///
/// Stages are served in order of per-slot computing demand `Θ'/|D'|`
/// (largest first), devices in order of capacity (strongest first); once
/// a stage has its full complement its output rows are re-balanced over
/// its actual devices with [`balance_rows`].
fn adjust_stages(model: &Model, cluster: &Cluster, homo: &HomoSolution) -> Vec<Stage> {
    // Per-slot demand Θ'_{i->j} / |D'_{i->j}| (Eq. 14): total flops the
    // homogeneous stage performs, including halo redundancy.
    let mut order: Vec<usize> = (0..homo.stages.len()).collect();
    let demand: Vec<f64> = homo
        .stages
        .iter()
        .map(|hs| {
            let h = model.unit_output_shape(hs.seg.end - 1).height;
            let shares = pico_model::rows_split_even(Rows::full(h), hs.p);
            let theta: f64 = shares.iter().map(|r| model.segment_flops(hs.seg, *r)).sum();
            theta / hs.p as f64
        })
        .collect();
    order.sort_by(|&a, &b| {
        demand[b]
            .partial_cmp(&demand[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    // Strongest devices feed the most demanding stages.
    let ids = cluster.ids_by_capacity_desc();
    let mut cursor = 0usize;
    let mut device_sets: Vec<Vec<usize>> = vec![Vec::new(); homo.stages.len()];
    for &s in &order {
        for _ in 0..homo.stages[s].p {
            if cursor < ids.len() {
                device_sets[s].push(ids[cursor]);
                cursor += 1;
            }
        }
    }
    homo.stages
        .iter()
        .enumerate()
        .map(|(s, hs)| {
            let devices: Vec<&Device> = device_sets[s]
                .iter()
                .map(|id| cluster.device(*id).expect("id from this cluster"))
                .collect();
            let h = model.unit_output_shape(hs.seg.end - 1).height;
            let shares = balance_rows(model, hs.seg, Rows::full(h), &devices);
            let assignments = devices
                .iter()
                .zip(shares)
                .map(|(d, r)| Assignment::new(d.id, r))
                .collect();
            Stage::new(hs.seg, assignments)
        })
        .collect()
}

impl Planner for PicoPlanner {
    fn name(&self) -> &'static str {
        "PICO"
    }

    fn plan(&self, req: &PlanRequest<'_>) -> Result<Plan, PlanError> {
        let _plan_span = req.recorder().span(names::PLAN);
        let model = req.model();
        let cluster = req.cluster();
        let params = req.params();
        let cm = params.cost_model(model);
        let avg = cluster.averaged();
        let homo = homogeneous_dp(&cm, &avg, params.t_lim)?;
        debug_assert!(homo.period <= homo.latency + 1e-12);
        let stages = adjust_stages(model, cluster, &homo);
        let plan = Plan::new(Scheme::Pico, ExecutionMode::Pipelined, stages);
        debug_assert!(plan.validate(model, cluster).is_ok());
        req.admit(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostParams, EarlyFused, OptimalFused, PlanRequest};
    use pico_model::zoo;

    fn plan_for(model: &Model, cluster: &Cluster, params: &CostParams) -> Plan {
        let plan = PicoPlanner
            .plan(&PlanRequest::new(model, cluster, params))
            .unwrap();
        let diags = crate::diag::structural_diagnostics(&plan, model, cluster);
        assert!(diags.is_empty(), "{diags:?}");
        plan
    }

    #[test]
    fn vgg16_pipeline_is_multi_stage() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let plan = plan_for(&m, &c, &CostParams::wifi_50mbps());
        assert!(plan.stage_count() >= 2, "got {} stages", plan.stage_count());
    }

    #[test]
    fn pico_period_beats_one_stage_schemes() {
        // The headline property: pipeline period < any sequential
        // scheme's period on a well-provisioned cluster.
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let params = CostParams::wifi_50mbps();
        let cm = params.cost_model(&m);
        let pico = cm.evaluate(&plan_for(&m, &c, &params), &c);
        let efl = cm.evaluate(
            &EarlyFused::new()
                .plan(&PlanRequest::new(&m, &c, &params))
                .unwrap(),
            &c,
        );
        let ofl = cm.evaluate(
            &OptimalFused
                .plan(&PlanRequest::new(&m, &c, &params))
                .unwrap(),
            &c,
        );
        assert!(
            pico.period < efl.period,
            "pico {} efl {}",
            pico.period,
            efl.period
        );
        assert!(
            pico.period < ofl.period,
            "pico {} ofl {}",
            pico.period,
            ofl.period
        );
    }

    #[test]
    fn single_device_degenerates_to_one_stage() {
        let m = zoo::toy(6);
        let c = Cluster::pi_cluster(1, 1.0);
        let plan = plan_for(&m, &c, &CostParams::default());
        assert_eq!(plan.stage_count(), 1);
        assert_eq!(plan.stages[0].worker_count(), 1);
    }

    #[test]
    fn pipelined_plans_use_disjoint_devices() {
        let m = zoo::yolov2();
        let c = Cluster::paper_heterogeneous();
        let plan = plan_for(&m, &c, &CostParams::wifi_50mbps());
        let mut all: Vec<usize> = plan
            .stages
            .iter()
            .flat_map(|s| s.device_ids().collect::<Vec<_>>())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn heterogeneous_shares_scale_with_capacity() {
        let m = zoo::vgg16().features();
        let c = Cluster::paper_heterogeneous();
        let params = CostParams::wifi_50mbps();
        let plan = plan_for(&m, &c, &params);
        let cm = params.cost_model(&m);
        // Within each multi-device stage, per-device compute times should
        // be within ~2.5x of each other (balanced), far tighter than the
        // 2x capacity spread would make an even split.
        for stage in &plan.stages {
            let times: Vec<f64> = stage
                .assignments
                .iter()
                .filter(|a| !a.rows.is_empty())
                .map(|a| {
                    cm.assignment_comp_time(c.device(a.device).unwrap(), stage.segment, a.rows)
                })
                .collect();
            if times.len() < 2 {
                continue;
            }
            let max = times.iter().cloned().fold(0.0, f64::max);
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(max / min < 3.0, "unbalanced stage: {times:?}");
        }
    }

    #[test]
    fn t_lim_is_honored_or_infeasible() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let unconstrained = CostParams::wifi_50mbps();
        let cm = unconstrained.cost_model(&m);
        let base = cm.evaluate(&plan_for(&m, &c, &unconstrained), &c);

        // A generous limit must be met.
        let loose = unconstrained.with_t_lim(base.latency * 2.0);
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &loose)).unwrap();
        assert!(cm.evaluate(&plan, &c).latency <= base.latency * 2.0);

        // An impossible limit errors out.
        let tight = unconstrained.with_t_lim(1e-9);
        assert!(matches!(
            PicoPlanner.plan(&PlanRequest::new(&m, &c, &tight)),
            Err(PlanError::LatencyInfeasible { .. })
        ));
    }

    #[test]
    fn t_lim_trades_period_for_latency() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let free = CostParams::wifi_50mbps();
        let cm = free.cost_model(&m);
        let unlimited = cm.evaluate(&plan_for(&m, &c, &free), &c);
        // Constrain latency to just above the single-stage latency: the
        // planner must pick fewer stages (higher period, lower latency).
        let single = cm.even_stage_cost(m.full_segment(), &c, 8).total();
        let constrained_params = free.with_t_lim(single * 1.05);
        let constrained = cm.evaluate(&plan_for(&m, &c, &constrained_params), &c);
        assert!(constrained.latency <= single * 1.05 + 1e-9);
        assert!(constrained.period >= unlimited.period - 1e-12);
    }

    #[test]
    fn graph_models_plan_cleanly() {
        let params = CostParams::wifi_50mbps();
        let c = Cluster::pi_cluster(8, 0.6);
        for m in [zoo::resnet34().features(), zoo::inception_v3().features()] {
            let plan = plan_for(&m, &c, &params);
            assert!(
                plan.stage_count() >= 2,
                "{}: {}",
                m.name(),
                plan.stage_count()
            );
        }
    }

    #[test]
    fn balance_rows_equalizes_times() {
        let m = zoo::toy(4);
        let seg = m.full_segment();
        let fast = Device::from_frequency(0, 1.2);
        let slow = Device::from_frequency(1, 0.6);
        let shares = balance_rows(&m, seg, Rows::full(64), &[&fast, &slow]);
        assert_eq!(shares.len(), 2);
        assert_eq!(shares[0].start, 0);
        assert_eq!(shares[1].end, 64);
        // Fast device gets roughly twice the rows.
        assert!(shares[0].len() > shares[1].len());
        let t0 = fast.compute_time(m.segment_flops(seg, shares[0]));
        let t1 = slow.compute_time(m.segment_flops(seg, shares[1]));
        assert!((t0 - t1).abs() / t0.max(t1) < 0.25, "t0={t0} t1={t1}");
    }

    #[test]
    fn balance_rows_single_device_takes_all() {
        let m = zoo::toy(2);
        let d = Device::from_frequency(0, 1.0);
        let shares = balance_rows(&m, m.full_segment(), Rows::new(3, 40), &[&d]);
        assert_eq!(shares, vec![Rows::new(3, 40)]);
    }

    #[test]
    fn balance_rows_more_devices_than_rows() {
        let m = zoo::toy(2);
        let devices: Vec<Device> = (0..6).map(|i| Device::from_frequency(i, 1.0)).collect();
        let refs: Vec<&Device> = devices.iter().collect();
        let shares = balance_rows(&m, m.full_segment(), Rows::new(0, 3), &refs);
        assert_eq!(shares.len(), 6);
        assert_eq!(shares.iter().map(Rows::len).sum::<usize>(), 3);
    }

    #[test]
    fn identical_layers_split_evenly() {
        // The Theorem 1 construction has no halo; on a homogeneous
        // cluster the DP should find period ~= total/(devices) modulo
        // communication.
        let m = zoo::identical_1x1(8);
        let c = Cluster::pi_cluster(4, 1.0);
        let params = CostParams::new(1e12); // effectively free network
        let plan = plan_for(&m, &c, &params);
        let cm = params.cost_model(&m);
        let metrics = cm.evaluate(&plan, &c);
        let ideal = c.device(0).unwrap().compute_time(m.total_flops()) / 4.0;
        assert!(
            metrics.period <= ideal * 1.3,
            "period {} ideal {}",
            metrics.period,
            ideal
        );
    }
}
