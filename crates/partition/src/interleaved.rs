use pico_model::{rows_split_weighted, Region2, Rows, Segment};
use pico_telemetry::names;

use crate::{Assignment, ExecutionMode, Plan, PlanError, PlanRequest, Planner, Scheme, Stage};

/// Interleaved operator partitioning (ILV), after arXiv 2409.07693.
///
/// Like [`LayerWise`](crate::LayerWise) this plans one stage per unit,
/// but alternates the partition axis between consecutive partitionable
/// units: even-indexed units are split into capacity-weighted *row*
/// strips, odd-indexed units into *column* tiles of the same weights.
/// Alternating the axis interleaves which halo rows/columns each device
/// re-fetches between operators, so no single device sits on the same
/// boundary for the whole network — the property the agreement gates
/// exercise as a genuinely different partitioning family.
///
/// Non-partitionable (FC) units run whole on the fastest device, as in
/// every other planner here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Interleaved;

impl Interleaved {
    /// Creates the interleaved planner.
    pub fn new() -> Self {
        Interleaved
    }
}

impl Planner for Interleaved {
    fn name(&self) -> &'static str {
        "ILV"
    }

    fn plan(&self, req: &PlanRequest<'_>) -> Result<Plan, PlanError> {
        let _plan_span = req.recorder().span(names::PLAN);
        let model = req.model();
        let cluster = req.cluster();
        let weights: Vec<f64> = cluster.devices().iter().map(|d| d.capacity).collect();
        let fastest = cluster.ids_by_capacity_desc()[0];
        let mut stages = Vec::with_capacity(model.len());
        for i in 0..model.len() {
            let seg = Segment::new(i, i + 1);
            let shape = model.unit_output_shape(i);
            let (h, w) = (shape.height, shape.width);
            let assignments = if model.unit(i).is_partitionable() && h >= 1 && w >= 1 {
                if i % 2 == 0 {
                    cluster
                        .devices()
                        .iter()
                        .zip(rows_split_weighted(Rows::full(h), &weights))
                        .map(|(d, r)| Assignment::new(d.id, r))
                        .collect()
                } else {
                    // Column tiles: full row span, capacity-weighted
                    // column ranges (reusing the row splitter on the
                    // width axis).
                    cluster
                        .devices()
                        .iter()
                        .zip(rows_split_weighted(Rows::full(w), &weights))
                        .map(|(d, c)| Assignment::tile(d.id, Region2::new(Rows::full(h), c)))
                        .collect()
                }
            } else {
                vec![Assignment::new(fastest, Rows::full(h))]
            };
            stages.push(Stage::new(seg, assignments));
        }
        req.admit(Plan::new(
            Scheme::Interleaved,
            ExecutionMode::Sequential,
            stages,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, CostParams, PlanRequest};
    use pico_model::zoo;

    #[test]
    fn one_stage_per_unit_and_structurally_clean() {
        let m = zoo::toy(6);
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = Interleaved
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        assert_eq!(plan.stage_count(), 6);
        let diags = crate::diag::structural_diagnostics(&plan, &m, &c);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn axis_alternates_between_units() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = Interleaved
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        // Even units are row strips (no column bounds), odd units carry
        // column tiles.
        assert!(plan.stages[0].assignments.iter().all(|a| a.cols.is_none()));
        assert!(plan.stages[1].assignments.iter().any(|a| a.cols.is_some()));
        assert!(plan.stages[2].assignments.iter().all(|a| a.cols.is_none()));
        assert!(plan.stages[3].assignments.iter().any(|a| a.cols.is_some()));
    }

    #[test]
    fn fc_layers_run_on_fastest_device() {
        let m = zoo::vgg16();
        let c = Cluster::paper_heterogeneous();
        let plan = Interleaved
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let last = plan.stages.last().unwrap();
        assert_eq!(last.worker_count(), 1);
        assert_eq!(last.assignments[0].device, c.ids_by_capacity_desc()[0]);
        plan.validate(&m, &c).unwrap();
    }

    #[test]
    fn heterogeneous_shares_follow_capacity() {
        let m = zoo::toy(2);
        let c = Cluster::paper_heterogeneous();
        let plan = Interleaved
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        for st in &plan.stages {
            let fast = st.assignments[0]
                .rows
                .len()
                .max(st.assignments[0].cols.map(|c| c.len()).unwrap_or(0))
                as f64;
            let slow = st.assignments[7]
                .rows
                .len()
                .max(st.assignments[7].cols.map(|c| c.len()).unwrap_or(0))
                as f64;
            assert!(fast >= slow, "fast={fast} slow={slow}");
        }
        plan.validate(&m, &c).unwrap();
    }

    #[test]
    fn works_on_graph_models() {
        let m = zoo::resnet34().features();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = Interleaved
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        plan.validate(&m, &c).unwrap();
    }

    #[test]
    fn sequential_mode_and_scheme() {
        let m = zoo::toy(3);
        let c = Cluster::pi_cluster(2, 1.0);
        let plan = Interleaved
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        assert_eq!(plan.mode, ExecutionMode::Sequential);
        assert_eq!(plan.scheme, Scheme::Interleaved);
        assert_eq!(plan.scheme.to_string(), "ILV");
    }
}
