//! Per-device memory footprint accounting.
//!
//! The paper's introduction motivates cooperative inference with memory:
//! "executing CNN inference locally requires large computational
//! resources and memory footprints that are usually not available in a
//! single IoT device", and "since each device only processes part of the
//! original data, the memory consumption ... can be reduced".
//!
//! This module quantifies that per plan and device:
//!
//! * **weights** — each device "owns a copy of model segment `M_{i->j}`"
//!   for every stage it serves, so it holds those segments' parameters;
//! * **activations** — executing a fused segment layer by layer needs, at
//!   the peak, one layer's input tile plus its output tile resident
//!   simultaneously (tiles shrink with the device's row share).

use pico_model::{Model, Region2, Unit, BYTES_PER_ELEMENT};
use serde::{Deserialize, Serialize};

use crate::Plan;

/// Memory footprint of one device under a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceMemory {
    /// Device id.
    pub device: usize,
    /// Bytes of model parameters the device must hold.
    pub weights_bytes: usize,
    /// Peak bytes of feature-map tiles resident at once.
    pub peak_activation_bytes: usize,
}

impl DeviceMemory {
    /// Total resident bytes.
    pub fn total_bytes(&self) -> usize {
        self.weights_bytes + self.peak_activation_bytes
    }
}

/// Computes each device's memory footprint under `plan`. Devices are
/// returned in ascending id order; devices with no work are omitted.
///
/// # Example
///
/// ```
/// use pico_model::zoo;
/// use pico_partition::memory::{plan_memory, single_device_memory};
/// use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};
///
/// let model = zoo::vgg16().features();
/// let cluster = Cluster::pi_cluster(8, 1.0);
/// let plan = PicoPlanner::new().plan(&PlanRequest::new(&model, &cluster, &CostParams::default()))?;
/// let worst = plan_memory(&model, &plan)
///     .iter()
///     .map(|d| d.total_bytes())
///     .max()
///     .unwrap();
/// // Cooperation shrinks the worst device's footprint vs a single device.
/// assert!(worst < single_device_memory(&model).total_bytes());
/// # Ok::<(), pico_partition::PlanError>(())
/// ```
pub fn plan_memory(model: &Model, plan: &Plan) -> Vec<DeviceMemory> {
    let mut by_device: std::collections::BTreeMap<usize, DeviceMemory> =
        std::collections::BTreeMap::new();
    for stage in &plan.stages {
        let seg = stage.segment;
        let seg_weights: usize = seg
            .iter()
            .map(|i| model.unit(i).parameters() * BYTES_PER_ELEMENT)
            .sum();
        let out_width = model.unit_output_shape(seg.end - 1).width;
        for a in stage.assignments.iter().filter(|a| !a.is_empty()) {
            let peak = peak_activation(model, seg, a.region(out_width));
            let entry = by_device.entry(a.device).or_insert(DeviceMemory {
                device: a.device,
                weights_bytes: 0,
                peak_activation_bytes: 0,
            });
            // A device serving several stages (sequential schemes) holds
            // all their weights, but activations of different stages are
            // not resident together.
            entry.weights_bytes += seg_weights;
            entry.peak_activation_bytes = entry.peak_activation_bytes.max(peak);
        }
    }
    by_device.into_values().collect()
}

/// Peak activation bytes while a device computes `region` of segment
/// `seg`: the maximum over consecutive units of (input tile + output
/// tile). Blocks additionally keep every path output resident before
/// merging. Works for row strips and grid tiles alike.
fn peak_activation(model: &Model, seg: pico_model::Segment, region: Region2) -> usize {
    let trace = model.segment_region_trace(seg, region);
    let mut peak = 0usize;
    for (k, i) in seg.iter().enumerate() {
        let out_shape = model.unit_output_shape(i);
        let in_shape = model.unit_input_shape(i);
        let out_region = trace[k];
        let in_region = model.unit(i).input_region(out_region, in_shape);
        let in_bytes = in_region.bytes(in_shape.channels);
        let out_bytes = match model.unit(i) {
            Unit::Block(b) if b.merge == pico_model::Merge::Concat => {
                // Concat: all path outputs live until the merge; their
                // combined size equals the merged output.
                out_region.bytes(out_shape.channels)
            }
            Unit::Block(_) => {
                // Add: merged output plus one path output buffer.
                2 * out_region.bytes(out_shape.channels)
            }
            Unit::Layer(_) => out_region.bytes(out_shape.channels),
        };
        peak = peak.max(in_bytes + out_bytes);
    }
    peak
}

/// The single-device baseline: all weights plus the largest
/// consecutive-layer activation pair for the full feature maps.
pub fn single_device_memory(model: &Model) -> DeviceMemory {
    let out = model.output_shape();
    DeviceMemory {
        device: usize::MAX,
        weights_bytes: model.parameters() * BYTES_PER_ELEMENT,
        peak_activation_bytes: peak_activation(
            model,
            model.full_segment(),
            Region2::full(out.height, out.width),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, CostParams, EarlyFused, LayerWise, PicoPlanner, PlanRequest, Planner};
    use pico_model::zoo;

    #[test]
    fn single_device_holds_everything() {
        let m = zoo::vgg16().features();
        let base = single_device_memory(&m);
        assert_eq!(base.weights_bytes, m.parameters() * 4);
        assert!(base.peak_activation_bytes > 0);
    }

    #[test]
    fn pico_splits_weights_across_devices() {
        // Pipelined stages hold disjoint segments: summed weight bytes,
        // counted once per (stage, device), cover the model with only
        // within-stage duplication.
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let mem = plan_memory(&m, &plan);
        let max_dev = mem.iter().map(|d| d.weights_bytes).max().unwrap();
        // No single device holds the whole model.
        assert!(max_dev < m.parameters() * 4, "{max_dev}");
    }

    #[test]
    fn pico_reduces_peak_activation_vs_single_device() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let base = single_device_memory(&m).peak_activation_bytes;
        for d in plan_memory(&m, &plan) {
            assert!(
                d.peak_activation_bytes < base,
                "device {} tile {} vs monolithic {base}",
                d.device,
                d.peak_activation_bytes
            );
        }
    }

    #[test]
    fn layer_wise_devices_hold_the_whole_model() {
        // LW's devices participate in every layer, so each carries all
        // the weights — the memory cost of that scheme.
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        let plan = LayerWise
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        for d in plan_memory(&m, &plan) {
            assert_eq!(d.weights_bytes, m.parameters() * 4);
        }
    }

    #[test]
    fn efl_tail_device_dominates_weights() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let plan = EarlyFused::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let mem = plan_memory(&m, &plan);
        let tail_device = plan.stages[1].assignments[0].device;
        let tail = mem.iter().find(|d| d.device == tail_device).unwrap();
        for d in &mem {
            assert!(d.weights_bytes <= tail.weights_bytes);
        }
    }

    #[test]
    fn idle_devices_are_omitted() {
        let m = zoo::toy(2);
        let c = Cluster::pi_cluster(8, 1.0);
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let mem = plan_memory(&m, &plan);
        assert_eq!(mem.len(), plan.used_devices().len());
    }

    #[test]
    fn block_models_account_activation() {
        let m = zoo::resnet34().features();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        for d in plan_memory(&m, &plan) {
            assert!(d.peak_activation_bytes > 0);
            assert!(d.total_bytes() > d.weights_bytes);
        }
    }
}
