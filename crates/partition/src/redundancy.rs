//! Redundant-computation accounting.
//!
//! Partitioning a fused segment forces devices to recompute overlapping
//! halo rows (Sec. II-B). This module quantifies that: per-device total
//! and redundant FLOPs for a stage or a whole plan (Table I's "Redu"
//! rows, Fig. 13's orange bars) and the fused-layer FLOPs sweep of
//! Fig. 4.
//!
//! Attribution rule: at every layer, rows computed by two adjacent
//! devices are counted half-redundant for each of them; rows computed
//! once are never redundant. Summing per-device redundancy therefore
//! equals the stage's total duplicated work exactly.

use pico_model::{rows_split_even, Model, Region2, Rows, Segment};
use serde::{Deserialize, Serialize};

use crate::{Plan, Stage};

/// FLOPs a single device performs (for one task), split into useful and
/// redundant parts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceWork {
    /// Device id.
    pub device: usize,
    /// Total FLOPs the device computes per task.
    pub total_flops: f64,
    /// FLOPs duplicated with other devices (halo overlap).
    pub redundant_flops: f64,
}

impl DeviceWork {
    /// Fraction of this device's work that is redundant.
    pub fn redundancy_ratio(&self) -> f64 {
        if self.total_flops > 0.0 {
            self.redundant_flops / self.total_flops
        } else {
            0.0
        }
    }
}

/// Per-device work for one stage (non-empty assignments only, in
/// assignment order).
///
/// Works for both row strips and 2-D grid tiles: every output cell of
/// every intermediate unit carries a coverage count; a cell computed by
/// `m > 1` devices contributes `(m-1)/m` of its cost as redundancy to
/// each of them (so summed per-device redundancy exactly equals the
/// stage's duplicated work). Per-cell cost is the unit's region cost
/// divided by its area — exact for plain layers, a uniform
/// approximation inside blocks (whose internal halo varies slightly by
/// position).
pub fn stage_work(model: &Model, stage: &Stage) -> Vec<DeviceWork> {
    let seg = stage.segment;
    let out_width = model.unit_output_shape(seg.end - 1).width;
    let workers: Vec<(usize, Region2)> = stage
        .assignments
        .iter()
        .filter(|a| !a.is_empty())
        .map(|a| (a.device, a.region(out_width)))
        .collect();
    // Per-worker, per-unit region traces.
    let traces: Vec<Vec<Region2>> = workers
        .iter()
        .map(|(_, region)| model.segment_region_trace(seg, *region))
        .collect();

    let mut out: Vec<DeviceWork> = workers
        .iter()
        .map(|(d, _)| DeviceWork {
            device: *d,
            total_flops: 0.0,
            redundant_flops: 0.0,
        })
        .collect();

    for (m, i) in seg.iter().enumerate() {
        let input = model.unit_input_shape(i);
        let output = model.unit_output_shape(i);
        // Coverage counts over this unit's output map.
        let mut coverage = vec![0u16; output.height * output.width];
        for trace in &traces {
            let region = trace[m];
            for r in region.rows.iter() {
                for c in region.cols.iter() {
                    coverage[r * output.width + c] += 1;
                }
            }
        }
        for k in 0..workers.len() {
            let region = traces[k][m];
            if region.is_empty() {
                continue;
            }
            let flops = model.unit(i).region_flops(region, input, output);
            let per_cell = flops / region.area() as f64;
            let mut shared_cells = 0.0f64;
            for r in region.rows.iter() {
                for c in region.cols.iter() {
                    let cnt = coverage[r * output.width + c];
                    if cnt > 1 {
                        shared_cells += (cnt as f64 - 1.0) / cnt as f64;
                    }
                }
            }
            out[k].total_flops += flops;
            out[k].redundant_flops += (shared_cells * per_cell).min(flops);
        }
    }
    out
}

/// Per-device work aggregated over every stage of a plan, in device-id
/// order. Devices that never work are omitted.
pub fn plan_work(model: &Model, plan: &Plan) -> Vec<DeviceWork> {
    let mut by_device: std::collections::BTreeMap<usize, DeviceWork> =
        std::collections::BTreeMap::new();
    for stage in &plan.stages {
        for w in stage_work(model, stage) {
            let entry = by_device.entry(w.device).or_insert(DeviceWork {
                device: w.device,
                total_flops: 0.0,
                redundant_flops: 0.0,
            });
            entry.total_flops += w.total_flops;
            entry.redundant_flops += w.redundant_flops;
        }
    }
    by_device.into_values().collect()
}

/// Cluster-wide redundancy ratio: duplicated FLOPs over total computed
/// FLOPs.
pub fn redundancy_ratio(work: &[DeviceWork]) -> f64 {
    let total: f64 = work.iter().map(|w| w.total_flops).sum();
    let redundant: f64 = work.iter().map(|w| w.redundant_flops).sum();
    if total > 0.0 {
        redundant / total
    } else {
        0.0
    }
}

/// One point of the Fig. 4 sweep: FLOPs when the first `fused_units`
/// units of a model are fused and split evenly over `devices` devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FusedFlopsPoint {
    /// Number of cooperating devices.
    pub devices: usize,
    /// Number of fused leading units.
    pub fused_units: usize,
    /// FLOPs of the busiest device (Fig. 4a, "FLOPs per device").
    pub per_device_flops: f64,
    /// Summed FLOPs over all devices (Fig. 4b, "sum of FLOPs").
    pub total_flops: f64,
    /// FLOPs of the same segment computed once (no parallelization).
    pub monolithic_flops: f64,
}

/// Computes one point of the Fig. 4 fused-layer redundancy sweep.
///
/// # Panics
///
/// Panics if `fused_units == 0`, `fused_units > model.len()`, or
/// `devices == 0`.
pub fn fused_layer_flops(model: &Model, fused_units: usize, devices: usize) -> FusedFlopsPoint {
    assert!(
        fused_units >= 1 && fused_units <= model.len(),
        "bad fused unit count"
    );
    assert!(devices >= 1, "need at least one device");
    let seg = Segment::new(0, fused_units);
    let h = model.unit_output_shape(fused_units - 1).height;
    let shares = rows_split_even(Rows::full(h), devices);
    let per: Vec<f64> = shares
        .iter()
        .map(|r| model.segment_flops(seg, *r))
        .collect();
    FusedFlopsPoint {
        devices,
        fused_units,
        per_device_flops: per.iter().cloned().fold(0.0, f64::max),
        total_flops: per.iter().sum(),
        monolithic_flops: model.segment_flops(seg, Rows::full(h)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Cluster, CostParams, ExecutionMode, PlanRequest, Planner, Scheme};
    use pico_model::zoo;

    #[test]
    fn single_worker_has_no_redundancy() {
        let m = zoo::toy(4);
        let h = m.output_shape().height;
        let stage = Stage::new(m.full_segment(), vec![Assignment::new(0, Rows::full(h))]);
        let work = stage_work(&m, &stage);
        assert_eq!(work.len(), 1);
        assert_eq!(work[0].redundant_flops, 0.0);
        assert!((work[0].total_flops - m.total_flops()).abs() < 1e-6);
    }

    #[test]
    fn split_redundancy_equals_duplicated_work() {
        let m = zoo::toy(4);
        let seg = m.full_segment();
        let h = m.output_shape().height;
        let shares = rows_split_even(Rows::full(h), 4);
        let stage = Stage::new(
            seg,
            shares
                .iter()
                .enumerate()
                .map(|(i, r)| Assignment::new(i, *r))
                .collect(),
        );
        let work = stage_work(&m, &stage);
        let total: f64 = work.iter().map(|w| w.total_flops).sum();
        let redundant: f64 = work.iter().map(|w| w.redundant_flops).sum();
        let lazy_full = m.segment_flops(seg, Rows::full(h));
        assert!(
            (total - redundant - lazy_full).abs() / lazy_full < 1e-9,
            "total {total} redundant {redundant} mono {lazy_full}"
        );
    }

    #[test]
    fn interior_devices_have_more_redundancy() {
        let m = zoo::toy(6);
        let h = m.output_shape().height;
        let shares = rows_split_even(Rows::full(h), 4);
        let stage = Stage::new(
            m.full_segment(),
            shares
                .iter()
                .enumerate()
                .map(|(i, r)| Assignment::new(i, *r))
                .collect(),
        );
        let work = stage_work(&m, &stage);
        // Border devices share one boundary, interior devices two.
        assert!(work[1].redundant_flops > work[0].redundant_flops);
        assert!(work[2].redundant_flops > work[3].redundant_flops);
    }

    #[test]
    fn no_halo_means_no_redundancy() {
        let m = zoo::identical_1x1(5);
        let h = m.output_shape().height;
        let shares = rows_split_even(Rows::full(h), 5);
        let stage = Stage::new(
            m.full_segment(),
            shares
                .iter()
                .enumerate()
                .map(|(i, r)| Assignment::new(i, *r))
                .collect(),
        );
        let work = stage_work(&m, &stage);
        assert!(work.iter().all(|w| w.redundant_flops == 0.0));
    }

    #[test]
    fn plan_work_aggregates_sequential_stages() {
        let m = zoo::toy(4);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::OptimalFused,
            ExecutionMode::Sequential,
            vec![
                Stage::new(Segment::new(0, 2), vec![Assignment::new(0, Rows::full(h))]),
                Stage::new(Segment::new(2, 4), vec![Assignment::new(0, Rows::full(h))]),
            ],
        );
        let work = plan_work(&m, &plan);
        assert_eq!(work.len(), 1);
        assert!((work[0].total_flops - m.total_flops()).abs() < 1e-6);
    }

    #[test]
    fn fused_sweep_grows_with_devices_and_depth() {
        // The Fig. 4 story: total FLOPs grow with devices (more halo)
        // and redundancy grows with fused depth.
        let m = zoo::vgg16().features();
        let shallow_few = fused_layer_flops(&m, 4, 2);
        let shallow_many = fused_layer_flops(&m, 4, 8);
        let deep_many = fused_layer_flops(&m, 12, 8);
        assert!(shallow_many.total_flops > shallow_few.total_flops);
        let red = |p: &FusedFlopsPoint| (p.total_flops - p.monolithic_flops) / p.total_flops;
        assert!(red(&deep_many) > red(&shallow_many));
        // Per-device work shrinks as devices grow (parallelism wins
        // despite redundancy at these depths).
        assert!(shallow_many.per_device_flops < shallow_few.per_device_flops);
    }

    #[test]
    fn lw_redundancy_below_fused_redundancy() {
        // Table I: LW has minimal redundancy, EFL the most.
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let params = CostParams::wifi_50mbps();
        let lw = crate::LayerWise
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let efl = crate::EarlyFused::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let lw_ratio = redundancy_ratio(&plan_work(&m, &lw));
        let efl_ratio = redundancy_ratio(&plan_work(&m, &efl));
        assert!(lw_ratio < efl_ratio, "lw {lw_ratio} efl {efl_ratio}");
    }
}
