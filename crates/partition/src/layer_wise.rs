use pico_model::{rows_split_weighted, Rows, Segment};
use pico_telemetry::names;

use crate::{Assignment, ExecutionMode, Plan, PlanError, PlanRequest, Planner, Scheme, Stage};

/// The layer-wise (LW) baseline, after MoDNN: every layer is scattered
/// across the whole cluster and gathered back before the next layer.
///
/// Row shares are proportional to device capacity (MeDNN's adaptation to
/// heterogeneous devices), which is the most charitable version of the
/// baseline. LW has minimal redundancy (one layer of halo at a time) but
/// pays per-layer communication — the paper removes it from the latency
/// comparison "due to its poor performance".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayerWise;

impl LayerWise {
    /// Creates the layer-wise planner.
    pub fn new() -> Self {
        LayerWise
    }
}

impl Planner for LayerWise {
    fn name(&self) -> &'static str {
        "LW"
    }

    fn plan(&self, req: &PlanRequest<'_>) -> Result<Plan, PlanError> {
        let _plan_span = req.recorder().span(names::PLAN);
        let model = req.model();
        let cluster = req.cluster();
        let weights: Vec<f64> = cluster.devices().iter().map(|d| d.capacity).collect();
        let fastest = cluster.ids_by_capacity_desc()[0];
        let mut stages = Vec::with_capacity(model.len());
        for i in 0..model.len() {
            let seg = Segment::new(i, i + 1);
            let h = model.unit_output_shape(i).height;
            let assignments = if model.unit(i).is_partitionable() && h >= 1 {
                cluster
                    .devices()
                    .iter()
                    .zip(rows_split_weighted(Rows::full(h), &weights))
                    .map(|(d, r)| Assignment::new(d.id, r))
                    .collect()
            } else {
                // Non-partitionable (FC) layers run whole on the fastest
                // device.
                vec![Assignment::new(fastest, Rows::full(h))]
            };
            stages.push(Stage::new(seg, assignments));
        }
        req.admit(Plan::new(
            Scheme::LayerWise,
            ExecutionMode::Sequential,
            stages,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, CostParams, PlanRequest};
    use pico_model::zoo;

    #[test]
    fn one_stage_per_unit() {
        let m = zoo::toy(6);
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = LayerWise
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        assert_eq!(plan.stage_count(), 6);
        let diags = crate::diag::structural_diagnostics(&plan, &m, &c);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn heterogeneous_shares_follow_capacity() {
        let m = zoo::toy(1);
        let c = Cluster::paper_heterogeneous();
        let plan = LayerWise
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let st = &plan.stages[0];
        // 1.2 GHz devices get ~2x the rows of 600 MHz devices.
        let fast = st.assignments[0].rows.len() as f64;
        let slow = st.assignments[7].rows.len() as f64;
        assert!(fast / slow >= 1.5, "fast={fast} slow={slow}");
        plan.validate(&m, &c).unwrap();
    }

    #[test]
    fn fc_layers_run_on_fastest_device() {
        let m = zoo::vgg16();
        let c = Cluster::paper_heterogeneous();
        let plan = LayerWise
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let last = plan.stages.last().unwrap();
        assert_eq!(last.worker_count(), 1);
        assert_eq!(last.assignments[0].device, c.ids_by_capacity_desc()[0]);
        plan.validate(&m, &c).unwrap();
    }

    #[test]
    fn sequential_mode() {
        let m = zoo::toy(3);
        let c = Cluster::pi_cluster(2, 1.0);
        let plan = LayerWise
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        assert_eq!(plan.mode, ExecutionMode::Sequential);
        assert_eq!(plan.scheme, Scheme::LayerWise);
    }

    #[test]
    fn works_on_graph_models() {
        let m = zoo::resnet34().features();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = LayerWise
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        plan.validate(&m, &c).unwrap();
    }
}
