//! 1-D strips vs 2-D grid partition analysis.
//!
//! PICO partitions feature maps into full-width row strips (MoDNN
//! style); DeepThings "partitions the feature map into 2D grids to
//! further reduce memory overhead" (paper Sec. VI). This module
//! quantifies the trade-off for any fused segment: duplicated halo
//! FLOPs and per-device input-tile memory as a function of grid shape.
//! Interior grid tiles pay halo on all four sides but their perimeter
//! shrinks as tiles approach squares, so for deep fusion a near-square
//! grid usually beats `p` thin strips on both metrics.

use pico_model::{grid_split_even, Model, Region2, Segment};
use serde::{Deserialize, Serialize};

/// FLOPs/memory of one (fused depth, grid shape) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Grid rows.
    pub grid_rows: usize,
    /// Grid columns (1 = the paper's strip partitioning).
    pub grid_cols: usize,
    /// Fused leading units.
    pub fused_units: usize,
    /// FLOPs of the busiest device.
    pub per_device_flops: f64,
    /// Summed FLOPs over all devices (halo included).
    pub total_flops: f64,
    /// FLOPs of the segment computed once.
    pub monolithic_flops: f64,
    /// Largest input tile any device must hold, in bytes.
    pub max_input_tile_bytes: usize,
}

impl GridPoint {
    /// Fraction of the total work that is duplicated halo.
    pub fn redundancy(&self) -> f64 {
        if self.total_flops > 0.0 {
            (self.total_flops - self.monolithic_flops) / self.total_flops
        } else {
            0.0
        }
    }
}

/// Evaluates fusing the first `fused_units` units of `model` over a
/// `grid_rows x grid_cols` device grid.
///
/// # Panics
///
/// Panics if `fused_units` is zero or exceeds the model length, or
/// either grid dimension is zero.
pub fn grid_fused_flops(
    model: &Model,
    fused_units: usize,
    grid_rows: usize,
    grid_cols: usize,
) -> GridPoint {
    assert!(
        fused_units >= 1 && fused_units <= model.len(),
        "bad fused unit count"
    );
    assert!(grid_rows >= 1 && grid_cols >= 1, "bad grid shape");
    let seg = Segment::new(0, fused_units);
    let out = model.unit_output_shape(fused_units - 1);
    let in_shape = model.unit_input_shape(0);
    let tiles = grid_split_even(out.height, out.width, grid_rows, grid_cols);

    let mut per_device: f64 = 0.0;
    let mut total = 0.0;
    let mut max_tile = 0usize;
    for t in &tiles {
        let flops = model.segment_region_flops(seg, *t);
        per_device = per_device.max(flops);
        total += flops;
        let need = model.segment_input_region(seg, *t);
        max_tile = max_tile.max(need.bytes(in_shape.channels));
    }
    GridPoint {
        grid_rows,
        grid_cols,
        fused_units,
        per_device_flops: per_device,
        total_flops: total,
        monolithic_flops: model.segment_region_flops(seg, Region2::full(out.height, out.width)),
        max_input_tile_bytes: max_tile,
    }
}

/// All factorizations `r x c = devices` (including the 1-D strips
/// `devices x 1`), evaluated for the given fused depth.
pub fn grid_shapes_for(model: &Model, fused_units: usize, devices: usize) -> Vec<GridPoint> {
    (1..=devices)
        .filter(|r| devices.is_multiple_of(*r))
        .map(|r| grid_fused_flops(model, fused_units, r, devices / r))
        .collect()
}

/// The grid shape minimizing total (halo-inclusive) FLOPs for a device
/// count.
///
/// # Example
///
/// ```
/// use pico_model::zoo;
/// use pico_partition::grid::{best_grid, grid_fused_flops};
///
/// let model = zoo::vgg16().features();
/// let best = best_grid(&model, 10, 8);
/// let strips = grid_fused_flops(&model, 10, 8, 1);
/// assert!(best.total_flops <= strips.total_flops);
/// ```
pub fn best_grid(model: &Model, fused_units: usize, devices: usize) -> GridPoint {
    grid_shapes_for(model, fused_units, devices)
        .into_iter()
        .min_by(|a, b| {
            a.total_flops
                .partial_cmp(&b.total_flops)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least the strip factorization exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;

    #[test]
    fn strips_are_the_c_equals_1_case() {
        let m = zoo::vgg16().features();
        let strips = grid_fused_flops(&m, 10, 8, 1);
        let fig4 = crate::redundancy::fused_layer_flops(&m, 10, 8);
        assert!((strips.total_flops - fig4.total_flops).abs() / fig4.total_flops < 1e-9);
        assert!((strips.per_device_flops - fig4.per_device_flops).abs() < 1e-3);
    }

    #[test]
    fn near_square_grid_beats_strips_on_deep_fusion() {
        // DeepThings' claim, quantified: at 8 devices and deep fusion, a
        // 4x2 grid duplicates less work than 8x1 strips...
        let m = zoo::vgg16().features();
        let strips = grid_fused_flops(&m, 10, 8, 1);
        let grid = grid_fused_flops(&m, 10, 4, 2);
        assert!(grid.total_flops < strips.total_flops);
        // ...and each device holds a smaller input tile.
        assert!(grid.max_input_tile_bytes < strips.max_input_tile_bytes);
    }

    #[test]
    fn single_device_grid_has_no_redundancy() {
        let m = zoo::vgg16().features();
        let p = grid_fused_flops(&m, 13, 1, 1);
        assert!(p.redundancy().abs() < 1e-12);
    }

    #[test]
    fn grid_shapes_cover_all_factorizations() {
        let m = zoo::toy(4);
        let shapes = grid_shapes_for(&m, 4, 12);
        let dims: Vec<(usize, usize)> = shapes.iter().map(|p| (p.grid_rows, p.grid_cols)).collect();
        assert_eq!(dims, vec![(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)]);
        for p in &shapes {
            assert_eq!(p.grid_rows * p.grid_cols, 12);
        }
    }

    #[test]
    fn best_grid_is_at_least_as_good_as_strips() {
        let m = zoo::vgg16().features();
        for devices in [4usize, 8] {
            let best = best_grid(&m, 10, devices);
            let strips = grid_fused_flops(&m, 10, devices, 1);
            assert!(best.total_flops <= strips.total_flops);
        }
    }

    #[test]
    fn redundancy_grows_with_grid_size() {
        let m = zoo::vgg16().features();
        let small = best_grid(&m, 10, 2);
        let large = best_grid(&m, 10, 16);
        assert!(large.redundancy() > small.redundancy());
    }
}
