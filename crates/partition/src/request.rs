//! The planning request context.
//!
//! [`PlanRequest`] bundles everything a [`Planner`](crate::Planner)
//! needs — model, cluster, cost parameters, and the optional extras
//! (device memory budget, telemetry recorder) — behind one builder, so
//! adding a field stops being a breaking change to every implementor
//! and call site.

use pico_model::Model;
use pico_telemetry::Recorder;

use crate::memory::plan_memory;
use crate::{Cluster, CostParams, Plan, PlanError};

/// Everything a planner is given. Construct with
/// [`PlanRequest::new`] and chain `with_*` setters for the optional
/// parts:
///
/// ```
/// use pico_model::zoo;
/// use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};
///
/// let model = zoo::vgg16().features();
/// let cluster = Cluster::pi_cluster(8, 1.0);
/// let params = CostParams::wifi_50mbps();
/// let req = PlanRequest::new(&model, &cluster, &params)
///     .with_memory_budget(256 << 20); // each Pi has 256 MiB to spare
/// let plan = PicoPlanner::default().plan(&req)?;
/// # Ok::<(), pico_partition::PlanError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PlanRequest<'a> {
    model: &'a Model,
    cluster: &'a Cluster,
    params: &'a CostParams,
    memory_budget: Option<usize>,
    recorder: Recorder,
    excluded: Vec<usize>,
    /// `cluster` minus `excluded`; kept owned so [`Self::cluster`] can
    /// hand out one coherent view either way.
    reduced: Option<Cluster>,
}

impl<'a> PlanRequest<'a> {
    /// A request with the three mandatory inputs; extras default off.
    pub fn new(model: &'a Model, cluster: &'a Cluster, params: &'a CostParams) -> Self {
        PlanRequest {
            model,
            cluster,
            params,
            memory_budget: None,
            recorder: Recorder::noop(),
            excluded: Vec::new(),
            reduced: None,
        }
    }

    /// Caps the resident bytes (weights + peak activations) of every
    /// device; planners reject plans that exceed it with
    /// [`PlanError::MemoryBudgetExceeded`].
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Records planner telemetry (a `plan` span per attempt) through
    /// `recorder`.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Excludes failed devices from planning: [`Self::cluster`] then
    /// returns the surviving subset, so every planner transparently
    /// produces a degraded plan. Errors with
    /// [`PlanError::ClusterExhausted`] when nothing survives. Ids not
    /// present in the cluster are ignored; repeat calls accumulate.
    pub fn with_excluded_devices(mut self, failed: &[usize]) -> Result<Self, PlanError> {
        for id in failed {
            if !self.excluded.contains(id) {
                self.excluded.push(*id);
            }
        }
        self.excluded.sort_unstable();
        match self.cluster.without(&self.excluded) {
            Some(reduced) => {
                self.reduced = Some(reduced);
                Ok(self)
            }
            None => Err(PlanError::ClusterExhausted {
                excluded: self.excluded,
            }),
        }
    }

    /// The model to partition.
    pub fn model(&self) -> &'a Model {
        self.model
    }

    /// The device cluster planners must plan over: the full cluster,
    /// or the surviving subset when devices were excluded.
    pub fn cluster(&self) -> &Cluster {
        self.reduced.as_ref().unwrap_or(self.cluster)
    }

    /// Device ids excluded from planning, ascending (empty when none).
    pub fn excluded_devices(&self) -> &[usize] {
        &self.excluded
    }

    /// Cost-model parameters (bandwidth, latency limit, ...).
    pub fn params(&self) -> &'a CostParams {
        self.params
    }

    /// Per-device memory budget in bytes, if one was set.
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// The telemetry recorder (disabled unless one was supplied).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Final admission check every planner runs on its candidate:
    /// enforces the memory budget (when set) against the plan's
    /// worst-loaded device.
    pub fn admit(&self, plan: Plan) -> Result<Plan, PlanError> {
        if let Some(budget) = self.memory_budget {
            let worst = plan_memory(self.model, &plan)
                .iter()
                .map(|d| d.total_bytes())
                .max()
                .unwrap_or(0);
            if worst > budget {
                return Err(PlanError::MemoryBudgetExceeded {
                    budget,
                    required: worst,
                });
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PicoPlanner, Planner};
    use pico_model::zoo;
    use pico_telemetry::{names, EventKind};

    #[test]
    fn builder_carries_the_extras() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        let p = CostParams::default();
        let req = PlanRequest::new(&m, &c, &p);
        assert!(req.memory_budget().is_none());
        assert!(!req.recorder().is_enabled());
        let req = req
            .with_memory_budget(1 << 30)
            .with_recorder(Recorder::in_memory());
        assert_eq!(req.memory_budget(), Some(1 << 30));
        assert!(req.recorder().is_enabled());
    }

    #[test]
    fn generous_budget_admits_tight_budget_rejects() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let p = CostParams::default();
        let planner = PicoPlanner::new();

        let req = PlanRequest::new(&m, &c, &p).with_memory_budget(1 << 34);
        assert!(planner.plan(&req).is_ok());

        let req = PlanRequest::new(&m, &c, &p).with_memory_budget(1024);
        match planner.plan(&req) {
            Err(PlanError::MemoryBudgetExceeded { budget, required }) => {
                assert_eq!(budget, 1024);
                assert!(required > budget);
            }
            other => panic!("expected MemoryBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn exclusion_filters_the_cluster_and_plans_degraded() {
        let m = zoo::toy(6);
        let c = Cluster::pi_cluster(4, 1.0);
        let p = CostParams::default();
        let req = PlanRequest::new(&m, &c, &p)
            .with_excluded_devices(&[1, 3])
            .expect("two devices survive");
        assert_eq!(req.excluded_devices(), &[1, 3]);
        assert_eq!(req.cluster().len(), 2);
        let plan = PicoPlanner::new().plan(&req).expect("degraded plan");
        for stage in &plan.stages {
            for a in &stage.assignments {
                assert!(a.device != 1 && a.device != 3, "excluded device used");
            }
        }
    }

    #[test]
    fn excluding_everything_is_a_typed_error() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        let p = CostParams::default();
        match PlanRequest::new(&m, &c, &p).with_excluded_devices(&[0, 1]) {
            Err(PlanError::ClusterExhausted { excluded }) => {
                assert_eq!(excluded, vec![0, 1]);
            }
            other => panic!("expected ClusterExhausted, got {other:?}"),
        }
    }

    #[test]
    fn planning_emits_one_plan_span() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        let p = CostParams::default();
        let rec = Recorder::in_memory();
        let req = PlanRequest::new(&m, &c, &p).with_recorder(rec.clone());
        PicoPlanner::new().plan(&req).unwrap();
        let events = rec.snapshot();
        let begins = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin && e.name == names::PLAN)
            .count();
        let ends = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanEnd && e.name == names::PLAN)
            .count();
        assert_eq!((begins, ends), (1, 1));
    }
}
