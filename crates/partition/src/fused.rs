use pico_model::{rows_split_weighted, Model, Rows, Segment};
use pico_telemetry::names;

use crate::{
    Assignment, Cluster, ExecutionMode, Plan, PlanError, PlanRequest, Planner, Scheme, Stage,
};

/// Builds the capacity-weighted all-device stage for `seg`.
fn weighted_stage(model: &Model, cluster: &Cluster, seg: Segment) -> Stage {
    let h = model.unit_output_shape(seg.end - 1).height;
    let weights: Vec<f64> = cluster.devices().iter().map(|d| d.capacity).collect();
    let assignments = cluster
        .devices()
        .iter()
        .zip(rows_split_weighted(Rows::full(h), &weights))
        .map(|(d, r)| Assignment::new(d.id, r))
        .collect();
    Stage::new(seg, assignments)
}

/// Builds the single-device stage for `seg` on device `device`.
fn solo_stage(model: &Model, seg: Segment, device: usize) -> Stage {
    let h = model.unit_output_shape(seg.end - 1).height;
    Stage::new(seg, vec![Assignment::new(device, Rows::full(h))])
}

/// Index of the first unit that cannot be row-partitioned, or the model
/// length if all units can.
fn first_unpartitionable(model: &Model) -> usize {
    (0..model.len())
        .find(|&i| !model.unit(i).is_partitionable())
        .unwrap_or(model.len())
}

/// The early-fused-layer (EFL) baseline, "an extension of the
/// implementation of DeepThings": the first few convolution layers are
/// fused and scattered across the whole cluster; the remaining layers
/// execute on a single device.
///
/// By default the fused prefix extends until the feature map has shrunk
/// to an eighth of the input height (DeepThings fuses deep into the
/// early convolution stack, which is exactly what makes its halo
/// redundancy high — Table I); override with
/// [`EarlyFused::with_fused_units`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EarlyFused {
    fused_units: Option<usize>,
}

impl EarlyFused {
    /// Creates the EFL planner with the default fused prefix.
    pub fn new() -> Self {
        EarlyFused::default()
    }

    /// Fuses exactly the first `k` units instead of the heuristic prefix.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_fused_units(k: usize) -> Self {
        assert!(k > 0, "must fuse at least one unit");
        EarlyFused {
            fused_units: Some(k),
        }
    }

    /// The fused prefix length for `model`.
    fn prefix(&self, model: &Model) -> usize {
        let cap = first_unpartitionable(model).max(1);
        match self.fused_units {
            Some(k) => k.min(model.len()).min(cap),
            None => {
                let target = model.input_shape().height.div_ceil(8);
                let mut k = model.len();
                for i in 0..model.len() {
                    if model.unit_output_shape(i).height <= target {
                        k = i + 1;
                        break;
                    }
                }
                k.min(cap)
            }
        }
    }
}

impl Planner for EarlyFused {
    fn name(&self) -> &'static str {
        "EFL"
    }

    fn plan(&self, req: &PlanRequest<'_>) -> Result<Plan, PlanError> {
        let _plan_span = req.recorder().span(names::PLAN);
        let model = req.model();
        let cluster = req.cluster();
        let k = self.prefix(model);
        let fastest = cluster.ids_by_capacity_desc()[0];
        let mut stages = vec![weighted_stage(model, cluster, Segment::new(0, k))];
        if k < model.len() {
            stages.push(solo_stage(model, Segment::new(k, model.len()), fastest));
        }
        req.admit(Plan::new(
            Scheme::EarlyFused,
            ExecutionMode::Sequential,
            stages,
        ))
    }
}

/// The optimal-fused-layer (OFL) baseline, after AOFL ("adaptive
/// parallel execution"): a dynamic program "selectively fuses
/// convolution layers at different parts of a model", trading
/// per-segment communication against halo redundancy.
///
/// For each candidate segment the planner additionally adapts the
/// degree of parallelism: it evaluates running the segment on the `p`
/// strongest devices for `p` in {1, 2, 4, ..., |D|}
/// (capacity-weighted shares) and keeps the cheapest, then minimizes
/// the summed segment cost over all fusion-point placements. Like all
/// one-stage schemes, the resulting plan is
/// [`ExecutionMode::Sequential`] (period = latency).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimalFused;

impl OptimalFused {
    /// Creates the OFL planner.
    pub fn new() -> Self {
        OptimalFused
    }
}

impl Planner for OptimalFused {
    fn name(&self) -> &'static str {
        "OFL"
    }

    fn plan(&self, req: &PlanRequest<'_>) -> Result<Plan, PlanError> {
        let _plan_span = req.recorder().span(names::PLAN);
        let model = req.model();
        let cluster = req.cluster();
        let params = req.params();
        let cm = params.cost_model(model);
        let l = model.len();
        let fastest = cluster.ids_by_capacity_desc()[0];

        // Cheapest execution of units [i, j): solo on the fastest
        // device, or capacity-weighted across the p strongest devices
        // for p in {2, 4, ..., |D|}.
        let by_capacity = cluster.ids_by_capacity_desc();
        let candidate = |i: usize, j: usize| -> (Stage, f64) {
            let seg = Segment::new(i, j);
            let solo = solo_stage(model, seg, fastest);
            let solo_cost = cm.stage_cost(&solo, cluster).total();
            let mut best = (solo, solo_cost);
            if cluster.len() == 1 || !model.unit(j - 1).is_partitionable() {
                return best;
            }
            let mut p = 2;
            loop {
                let p_eff = p.min(cluster.len());
                let subset: Cluster = by_capacity[..p_eff]
                    .iter()
                    .map(|id| cluster.device(*id).expect("id from this cluster").clone())
                    .collect();
                let par = weighted_stage(model, &subset, seg);
                let par_cost = cm.stage_cost(&par, cluster).total();
                if par_cost < best.1 {
                    best = (par, par_cost);
                }
                if p_eff == cluster.len() {
                    return best;
                }
                p *= 2;
            }
        };

        // dp[j] = (best cost for units [0, j), predecessor split point).
        let mut dp: Vec<(f64, usize)> = vec![(f64::INFINITY, 0); l + 1];
        dp[0] = (0.0, 0);
        for j in 1..=l {
            for i in 0..j {
                if dp[i].0.is_infinite() {
                    continue;
                }
                let (_, cost) = candidate(i, j);
                let total = dp[i].0 + cost;
                if total < dp[j].0 {
                    dp[j] = (total, i);
                }
            }
        }

        // Reconstruct fusion points.
        let mut cuts = vec![l];
        let mut j = l;
        while j > 0 {
            j = dp[j].1;
            cuts.push(j);
        }
        cuts.reverse();
        let stages: Vec<Stage> = cuts.windows(2).map(|w| candidate(w[0], w[1]).0).collect();
        let plan = Plan::new(Scheme::OptimalFused, ExecutionMode::Sequential, stages);
        if let Some(t_lim) = params.t_lim {
            let latency = cm.evaluate(&plan, cluster).latency;
            if latency > t_lim {
                return Err(PlanError::LatencyInfeasible {
                    limit: t_lim,
                    best: latency,
                });
            }
        }
        req.admit(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CostParams, LayerWise, PlanRequest};
    use pico_model::zoo;

    #[test]
    fn efl_has_fused_prefix_and_solo_tail() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let plan = EarlyFused::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        assert_eq!(plan.stage_count(), 2);
        assert!(plan.stages[0].worker_count() == 8);
        assert_eq!(plan.stages[1].worker_count(), 1);
        let diags = crate::diag::structural_diagnostics(&plan, &m, &c);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn efl_explicit_prefix() {
        let m = zoo::toy(8);
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = EarlyFused::with_fused_units(3)
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        assert_eq!(plan.stages[0].segment, Segment::new(0, 3));
        plan.validate(&m, &c).unwrap();
    }

    #[test]
    fn efl_prefix_covering_whole_model_is_single_stage() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        let plan = EarlyFused::with_fused_units(99)
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        assert_eq!(plan.stage_count(), 1);
        plan.validate(&m, &c).unwrap();
    }

    #[test]
    fn ofl_beats_or_matches_efl_and_lw() {
        // OFL optimizes fusion points, so its one-shot latency can never
        // exceed the other one-stage baselines under the same cost model.
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let params = CostParams::wifi_50mbps();
        let cm = params.cost_model(&m);
        let ofl = cm.evaluate(
            &OptimalFused
                .plan(&PlanRequest::new(&m, &c, &params))
                .unwrap(),
            &c,
        );
        let efl = cm.evaluate(
            &EarlyFused::new()
                .plan(&PlanRequest::new(&m, &c, &params))
                .unwrap(),
            &c,
        );
        let lw = cm.evaluate(
            &LayerWise.plan(&PlanRequest::new(&m, &c, &params)).unwrap(),
            &c,
        );
        assert!(
            ofl.latency <= efl.latency * 1.0001,
            "{} vs {}",
            ofl.latency,
            efl.latency
        );
        assert!(ofl.latency <= lw.latency * 1.0001);
    }

    #[test]
    fn ofl_single_device_is_one_solo_stage() {
        let m = zoo::toy(6);
        let c = Cluster::pi_cluster(1, 1.0);
        let plan = OptimalFused
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        plan.validate(&m, &c).unwrap();
        // A single device minimizes transfers by fusing everything into
        // one segment (one input in, one output out).
        assert_eq!(plan.stage_count(), 1);
    }

    #[test]
    fn ofl_respects_t_lim() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let params = CostParams::wifi_50mbps().with_t_lim(1e-9);
        assert!(matches!(
            OptimalFused.plan(&PlanRequest::new(&m, &c, &params)),
            Err(PlanError::LatencyInfeasible { .. })
        ));
    }

    #[test]
    fn ofl_handles_fc_tails() {
        let m = zoo::vgg16(); // includes FC layers
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = OptimalFused
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        plan.validate(&m, &c).unwrap();
    }

    #[test]
    fn fused_schemes_are_sequential() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        for plan in [
            EarlyFused::new()
                .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
                .unwrap(),
            OptimalFused
                .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
                .unwrap(),
        ] {
            assert_eq!(plan.mode, ExecutionMode::Sequential);
        }
    }
}
