use pico_model::{grid_split_even, Model, Rows, Segment};
use pico_telemetry::names;

use crate::{
    grid::best_grid, Assignment, ExecutionMode, Plan, PlanError, PlanRequest, Planner, Scheme,
    Stage,
};

/// DeepThings' actual scheme, as an extension beyond the paper's
/// row-strip EFL baseline: the early fused layers are partitioned into a
/// **2-D grid** of rectangular tiles ("Fused Tile Partitioning"), one
/// tile per device; the remaining layers run on the fastest device.
///
/// The grid shape defaults to the factorization of the device count that
/// minimizes total (halo-inclusive) FLOPs — near-square tiles duplicate
/// less work and hold smaller input tiles than full-width strips (see
/// [`crate::grid`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridFused {
    fused_units: Option<usize>,
    grid: Option<(usize, usize)>,
}

impl GridFused {
    /// Creates the grid-fused planner with heuristic depth and grid
    /// shape.
    pub fn new() -> Self {
        GridFused::default()
    }

    /// Fuses exactly the first `k` units.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_fused_units(mut self, k: usize) -> Self {
        assert!(k > 0, "must fuse at least one unit");
        self.fused_units = Some(k);
        self
    }

    /// Uses a fixed `rows x cols` grid instead of the best
    /// factorization.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_grid(mut self, rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1, "grid dims must be positive");
        self.grid = Some((rows, cols));
        self
    }

    /// The fused prefix length (same heuristic as EFL: until the map
    /// shrinks to 1/8 of the input height).
    fn prefix(&self, model: &Model) -> usize {
        let cap = (0..model.len())
            .find(|&i| !model.unit(i).is_partitionable())
            .unwrap_or(model.len())
            .max(1);
        match self.fused_units {
            Some(k) => k.min(model.len()).min(cap),
            None => {
                let target = model.input_shape().height.div_ceil(8);
                let mut k = model.len();
                for i in 0..model.len() {
                    if model.unit_output_shape(i).height <= target {
                        k = i + 1;
                        break;
                    }
                }
                k.min(cap)
            }
        }
    }
}

impl Planner for GridFused {
    fn name(&self) -> &'static str {
        "GRID"
    }

    fn plan(&self, req: &PlanRequest<'_>) -> Result<Plan, PlanError> {
        let _plan_span = req.recorder().span(names::PLAN);
        let model = req.model();
        let cluster = req.cluster();
        let k = self.prefix(model);
        let out = model.unit_output_shape(k - 1);
        let (gr, gc) = match self.grid {
            Some(dims) => dims,
            None => {
                let best = best_grid(model, k, cluster.len());
                (best.grid_rows, best.grid_cols)
            }
        };
        if gr * gc > cluster.len() {
            return Err(PlanError::UnsupportedModel {
                detail: format!(
                    "grid {gr}x{gc} needs {} devices, cluster has {}",
                    gr * gc,
                    cluster.len()
                ),
            });
        }
        // Strongest devices take the tiles (row-major); a 1-wide grid
        // degenerates into strips for exact plan equivalence with EFL.
        let ids = cluster.ids_by_capacity_desc();
        let tiles = grid_split_even(out.height, out.width, gr, gc);
        let assignments: Vec<Assignment> = tiles
            .into_iter()
            .zip(ids.iter())
            .map(|(region, id)| {
                if gc == 1 {
                    Assignment::new(*id, region.rows)
                } else {
                    Assignment::tile(*id, region)
                }
            })
            .collect();
        let mut stages = vec![Stage::new(Segment::new(0, k), assignments)];
        if k < model.len() {
            let tail_h = model.output_shape().height;
            stages.push(Stage::new(
                Segment::new(k, model.len()),
                vec![Assignment::new(ids[0], Rows::full(tail_h))],
            ));
        }
        req.admit(Plan::new(
            Scheme::GridFused,
            ExecutionMode::Sequential,
            stages,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, CostParams, EarlyFused, PlanRequest};
    use pico_model::zoo;

    #[test]
    fn grid_plan_validates() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let plan = GridFused::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let diags = crate::diag::structural_diagnostics(&plan, &m, &c);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(plan.stages[0].is_grid() || plan.stages[0].worker_count() == 8);
        assert_eq!(plan.scheme, Scheme::GridFused);
    }

    #[test]
    fn grid_needs_enough_devices() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        let err = GridFused::new().with_grid(2, 2).plan(&PlanRequest::new(
            &m,
            &c,
            &CostParams::default(),
        ));
        assert!(matches!(err, Err(PlanError::UnsupportedModel { .. })));
    }

    #[test]
    fn explicit_grid_shape_is_used() {
        let m = zoo::toy(6);
        let c = Cluster::pi_cluster(6, 1.0);
        let plan = GridFused::new()
            .with_grid(2, 3)
            .with_fused_units(6)
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        plan.validate(&m, &c).unwrap();
        assert_eq!(plan.stages[0].worker_count(), 6);
        assert!(plan.stages[0].is_grid());
    }

    #[test]
    fn grid_reduces_fused_stage_cost_vs_strip_efl() {
        // The extension's payoff: same fused depth, less halo ->
        // cheaper fused stage compute than the strip EFL's.
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let params = CostParams::wifi_50mbps();
        let cm = params.cost_model(&m);
        let efl = EarlyFused::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let k = efl.stages[0].segment.end;
        let grid = GridFused::new()
            .with_fused_units(k)
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let efl_comp = cm.stage_cost(&efl.stages[0], &c).comp;
        let grid_comp = cm.stage_cost(&grid.stages[0], &c).comp;
        assert!(
            grid_comp < efl_comp,
            "grid {grid_comp} vs strips {efl_comp}"
        );
    }

    #[test]
    fn one_column_grid_degenerates_to_strips() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = GridFused::new()
            .with_grid(4, 1)
            .with_fused_units(4)
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        assert!(!plan.stages[0].is_grid());
        plan.validate(&m, &c).unwrap();
    }

    #[test]
    fn heterogeneous_cluster_gets_tiles_strongest_first() {
        let m = zoo::vgg16().features();
        let c = Cluster::paper_heterogeneous();
        let plan = GridFused::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        plan.validate(&m, &c).unwrap();
        let first = plan.stages[0].assignments[0].device;
        assert_eq!(first, c.ids_by_capacity_desc()[0]);
    }
}

#[cfg(test)]
mod block_grid_tests {
    use super::*;
    use crate::{Cluster, CostParams, PlanRequest, Planner};
    use pico_model::zoo;

    #[test]
    fn grid_plans_work_on_block_models() {
        // Grid tiles back-propagate through residual blocks (union-hull
        // receptive fields on both axes).
        let m = zoo::resnet34().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let params = CostParams::wifi_50mbps();
        let plan = GridFused::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        plan.validate(&m, &c).unwrap();
        let metrics = params.cost_model(&m).evaluate(&plan, &c);
        assert!(metrics.period.is_finite() && metrics.period > 0.0);
    }

    #[test]
    fn grid_fused_stage_holds_smaller_input_tiles_than_strips() {
        // At equal fused depth, a grid stage's largest input tile is
        // smaller than the strip EFL's (the solo tail is identical in
        // both plans, so only the fused stage is compared).
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let params = CostParams::wifi_50mbps();
        let efl = crate::EarlyFused::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let k = efl.stages[0].segment.end;
        let grid = GridFused::new()
            .with_fused_units(k)
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let fused_max = |p: &crate::Plan| {
            let stage = &p.stages[0];
            let out_w = m.unit_output_shape(stage.segment.end - 1).width;
            stage
                .assignments
                .iter()
                .filter(|a| !a.is_empty())
                .map(|a| {
                    let region = a.region(out_w);
                    m.segment_input_region(stage.segment, region)
                        .bytes(m.unit_input_shape(stage.segment.start).channels)
                })
                .max()
                .unwrap()
        };
        assert!(fused_max(&grid) < fused_max(&efl));
    }

    #[test]
    fn grid_redundancy_below_strip_redundancy() {
        // The coverage-count redundancy accounting agrees with the
        // analytic grid module: grid tiles duplicate less than strips.
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let params = CostParams::wifi_50mbps();
        let efl = crate::EarlyFused::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let k = efl.stages[0].segment.end;
        let grid = GridFused::new()
            .with_fused_units(k)
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let ratio = |p: &crate::Plan| {
            let work = crate::redundancy::stage_work(&m, &p.stages[0]);
            crate::redundancy::redundancy_ratio(&work)
        };
        assert!(
            ratio(&grid) < ratio(&efl),
            "grid {} strips {}",
            ratio(&grid),
            ratio(&efl)
        );
    }
}
