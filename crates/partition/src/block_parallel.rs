//! Intra-block path parallelism — the paper's stated limitation turned
//! into an analysis.
//!
//! Sec. V-B explains InceptionV3's smaller speedup: "the optimal model
//! partition is more likely to exist within blocks. And PICO currently
//! does not support such a partition." Inception blocks bundle many
//! independent paths into one planning unit, so PICO can only
//! row-partition the whole block.
//!
//! This module quantifies what a path-level partitioner could gain:
//! paths are independent given the block input, so they can run on
//! different devices (model parallelism), LPT-scheduled by FLOPs onto
//! the strongest devices, each device paying to receive the block input
//! and ship its paths' outputs.

use pico_model::{Model, Region2, Unit};
use serde::{Deserialize, Serialize};

use crate::{Cluster, CostParams};

/// Path-parallel potential of one block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockParallelism {
    /// Unit index of the block within the model.
    pub unit: usize,
    /// Block name.
    pub name: String,
    /// Number of parallel paths.
    pub paths: usize,
    /// Per-path FLOPs (full output), descending.
    pub path_flops: Vec<f64>,
    /// Time on the fastest single device (no communication).
    pub single_device_time: f64,
    /// LPT makespan across the given devices, including per-device
    /// input broadcast and output gather on the shared link.
    pub path_parallel_time: f64,
}

impl BlockParallelism {
    /// Speedup path parallelism would give for this block.
    pub fn speedup(&self) -> f64 {
        self.single_device_time / self.path_parallel_time
    }
}

/// Analyzes every block unit of `model` for path-parallel potential on
/// up to `max_devices` of the cluster's strongest devices.
///
/// # Example
///
/// ```
/// use pico_model::zoo;
/// use pico_partition::block_parallel::analyze_blocks;
/// use pico_partition::{Cluster, CostParams};
///
/// let model = zoo::inception_v3().features();
/// let cluster = Cluster::pi_cluster(4, 1.0);
/// // On a fast LAN, some inception block gains > 1.5x from
/// // path-level parallelism — the paper's future-work item.
/// let blocks = analyze_blocks(&model, &cluster, &CostParams::new(1e9), 4);
/// assert!(blocks.iter().any(|b| b.speedup() > 1.5));
/// ```
pub fn analyze_blocks(
    model: &Model,
    cluster: &Cluster,
    params: &CostParams,
    max_devices: usize,
) -> Vec<BlockParallelism> {
    let ids = cluster.ids_by_capacity_desc();
    let devices: Vec<&crate::Device> = ids
        .iter()
        .take(max_devices.max(1))
        .map(|id| cluster.device(*id).expect("id from this cluster"))
        .collect();
    let fastest = devices[0];

    let mut out = Vec::new();
    for i in 0..model.len() {
        let Unit::Block(block) = model.unit(i) else {
            continue;
        };
        let input = model.unit_input_shape(i);
        // Per-path FLOPs over the full output region.
        let mut path_flops: Vec<f64> = block
            .paths
            .iter()
            .map(|path| {
                let single = pico_model::Block::new("one", vec![path.clone()], block.merge);
                let out_shape = single
                    .output_shape(input)
                    .expect("validated at construction");
                single
                    .region_flops(Region2::full(out_shape.height, out_shape.width), input)
                    .expect("validated at construction")
            })
            .collect();
        path_flops.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        let total: f64 = path_flops.iter().sum();
        let single_device_time = fastest.compute_time(total);

        // LPT: heaviest path to the device that finishes it earliest.
        let mut loads = vec![0.0f64; devices.len()];
        let mut used = vec![false; devices.len()];
        for f in &path_flops {
            let (best, _) = loads
                .iter()
                .enumerate()
                .map(|(k, l)| (k, (l + f) / (devices[k].capacity / devices[k].alpha)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("devices non-empty");
            loads[best] += f;
            used[best] = true;
        }
        let comp = loads
            .iter()
            .enumerate()
            .map(|(k, l)| devices[k].compute_time(*l))
            .fold(0.0, f64::max);
        // Communication: every participating extra device receives the
        // block input and returns its share of the output (approximated
        // as output bytes split by work share).
        let out_shape = model.unit_output_shape(i);
        let in_bytes = input.bytes() as f64;
        let out_bytes = out_shape.bytes() as f64;
        let extra_devices = used.iter().skip(1).filter(|u| **u).count() as f64;
        let comm_bytes = extra_devices * in_bytes
            + if total > 0.0 {
                out_bytes * (1.0 - loads[0] / total)
            } else {
                0.0
            };
        let comm = comm_bytes * 8.0 / params.bandwidth_bps;

        out.push(BlockParallelism {
            unit: i,
            name: block.name.clone(),
            paths: block.paths.len(),
            path_flops,
            single_device_time,
            path_parallel_time: comp + comm,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;

    #[test]
    fn inception_blocks_have_exploitable_parallelism() {
        // With a fast network, inception blocks (4-6 comparable paths)
        // show real path-parallel speedup on 4 devices.
        let m = zoo::inception_v3().features();
        let c = Cluster::pi_cluster(4, 1.0);
        let params = CostParams::new(1e9); // fast LAN
        let blocks = analyze_blocks(&m, &c, &params, 4);
        assert_eq!(blocks.len(), 11);
        let best = blocks
            .iter()
            .map(BlockParallelism::speedup)
            .fold(0.0, f64::max);
        assert!(best > 1.5, "best inception block speedup {best}");
    }

    #[test]
    fn residual_blocks_gain_little() {
        // A basic residual block has one heavy path and an (almost)
        // empty shortcut: path parallelism cannot help.
        let m = zoo::resnet34().features();
        let c = Cluster::pi_cluster(4, 1.0);
        let params = CostParams::new(1e9);
        let blocks = analyze_blocks(&m, &c, &params, 4);
        for b in &blocks {
            assert!(
                b.speedup() < 1.2,
                "{}: residual speedup {}",
                b.name,
                b.speedup()
            );
        }
    }

    #[test]
    fn slow_networks_erase_the_gain() {
        // On the paper's 50 Mbps WiFi the broadcast eats the benefit —
        // consistent with the authors deferring this to future work.
        let m = zoo::inception_v3().features();
        let c = Cluster::pi_cluster(4, 1.0);
        let fast = analyze_blocks(&m, &c, &CostParams::new(1e9), 4);
        let slow = analyze_blocks(&m, &c, &CostParams::wifi_50mbps(), 4);
        let best_fast = fast
            .iter()
            .map(BlockParallelism::speedup)
            .fold(0.0, f64::max);
        let best_slow = slow
            .iter()
            .map(BlockParallelism::speedup)
            .fold(0.0, f64::max);
        assert!(best_slow < best_fast);
    }

    #[test]
    fn single_device_equals_no_parallelism() {
        let m = zoo::inception_v3().features();
        let c = Cluster::pi_cluster(1, 1.0);
        let params = CostParams::new(1e9);
        for b in analyze_blocks(&m, &c, &params, 1) {
            // One device: parallel time = single time (no comm).
            assert!(
                (b.speedup() - 1.0).abs() < 1e-9,
                "{}: {}",
                b.name,
                b.speedup()
            );
        }
    }

    #[test]
    fn chain_models_have_no_blocks() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(4, 1.0);
        assert!(analyze_blocks(&m, &c, &CostParams::default(), 4).is_empty());
    }
}
