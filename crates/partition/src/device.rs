use serde::{Deserialize, Serialize};

/// Effective floating-point operations per CPU cycle assumed for an
/// edge-class ARM core running an optimized conv kernel (NNPACK-style).
///
/// 1.0 effective FLOP/cycle (0.6 GFLOP/s at 600 MHz, 1.2 GFLOP/s at
/// 1.2 GHz) matches measured single-core NNPACK conv throughput on a
/// Cortex-A72 and puts the compute/communication balance where the
/// paper's 50 Mbps testbed sits. The absolute value only scales
/// wall-clock estimates; the comparisons the paper makes (speedups,
/// crossovers) shift only through this compute-vs-network ratio.
pub const FLOPS_PER_CYCLE: f64 = 1.0;

/// One edge computing device, reduced — exactly like the paper's cost
/// model (Sec. III-B) — to a computing capacity `ϑ` (FLOP/s) and a
/// calibration coefficient `α` (Eq. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Stable identifier, unique within a [`Cluster`].
    pub id: usize,
    /// Human-readable name (e.g. `pi-0 @1.2GHz`).
    pub name: String,
    /// Computing capacity `ϑ(d_k)` in FLOP/s.
    pub capacity: f64,
    /// Regression coefficient `α_k` of Eq. 5 (1.0 = ideal).
    pub alpha: f64,
}

impl Device {
    /// Creates a device with an explicit FLOP/s capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive and finite.
    pub fn new(id: usize, name: impl Into<String>, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "device capacity must be positive and finite"
        );
        Device {
            id,
            name: name.into(),
            capacity,
            alpha: 1.0,
        }
    }

    /// Creates a Raspberry-Pi-style single-core device from its CPU
    /// frequency in GHz (`capacity = f * FLOPS_PER_CYCLE`).
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn from_frequency(id: usize, ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        Device::new(
            id,
            format!("pi-{id} @{ghz}GHz"),
            ghz * 1e9 * FLOPS_PER_CYCLE,
        )
    }

    /// Returns this device with a different `α` coefficient.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        self.alpha = alpha;
        self
    }

    /// Seconds this device needs for `flops` floating-point operations
    /// (Eq. 5: `t = α · θ / ϑ`).
    pub fn compute_time(&self, flops: f64) -> f64 {
        self.alpha * flops / self.capacity
    }

    /// Calibrates `α` from measured `(flops, seconds)` samples — the
    /// paper's "coefficient computed by a regression model" (Eq. 5).
    ///
    /// Least-squares fit of `seconds = α · flops / capacity` through the
    /// origin; returns the device with the fitted `α`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains non-positive FLOPs.
    pub fn calibrated(mut self, samples: &[(f64, f64)]) -> Self {
        assert!(!samples.is_empty(), "need at least one sample");
        assert!(
            samples.iter().all(|(f, t)| *f > 0.0 && *t >= 0.0),
            "samples must have positive flops and non-negative times"
        );
        // Minimize sum (t_i - a x_i)^2 with x_i = flops_i / capacity:
        // a = sum(x t) / sum(x^2).
        let mut num = 0.0;
        let mut den = 0.0;
        for (flops, secs) in samples {
            let x = flops / self.capacity;
            num += x * secs;
            den += x * x;
        }
        self.alpha = (num / den).max(f64::MIN_POSITIVE);
        self
    }
}

/// An edge cluster: a set of [`Device`]s with unique ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    devices: Vec<Device>,
}

impl Cluster {
    /// Creates a cluster from a device list.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty or contains duplicate ids.
    pub fn new(devices: Vec<Device>) -> Self {
        assert!(!devices.is_empty(), "cluster must have at least one device");
        let mut ids: Vec<usize> = devices.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), devices.len(), "device ids must be unique");
        Cluster { devices }
    }

    /// A homogeneous cluster of `n` Raspberry-Pi-style devices running
    /// at `ghz` GHz — the paper's capacity experiments (Figs. 8/9) use
    /// 1–8 such devices at several frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `ghz` is not positive.
    pub fn pi_cluster(n: usize, ghz: f64) -> Self {
        assert!(n > 0, "cluster must have at least one device");
        Cluster::new((0..n).map(|i| Device::from_frequency(i, ghz)).collect())
    }

    /// The paper's 8-device heterogeneous mix from Table I:
    /// 2 x 1.2 GHz + 2 x 800 MHz + 4 x 600 MHz.
    pub fn paper_heterogeneous() -> Self {
        let freqs = [1.2, 1.2, 0.8, 0.8, 0.6, 0.6, 0.6, 0.6];
        Cluster::new(
            freqs
                .iter()
                .enumerate()
                .map(|(i, f)| Device::from_frequency(i, *f))
                .collect(),
        )
    }

    /// The 6-device heterogeneous cluster used for the Fig. 13
    /// PICO-vs-BFS comparison (a smaller mix of the same three tiers).
    pub fn paper_heterogeneous_6() -> Self {
        let freqs = [1.2, 1.2, 0.8, 0.8, 0.6, 0.6];
        Cluster::new(
            freqs
                .iter()
                .enumerate()
                .map(|(i, f)| Device::from_frequency(i, *f))
                .collect(),
        )
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the cluster is empty (never true for a constructed cluster).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The devices in declaration order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Looks up a device by id.
    pub fn device(&self, id: usize) -> Option<&Device> {
        self.devices.iter().find(|d| d.id == id)
    }

    /// Sum of all device capacities.
    pub fn total_capacity(&self) -> f64 {
        self.devices.iter().map(|d| d.capacity).sum()
    }

    /// Mean device capacity.
    pub fn average_capacity(&self) -> f64 {
        self.total_capacity() / self.len() as f64
    }

    /// The idealized homogeneous cluster `D'` of Eq. 12: same size, every
    /// device at the average capacity (and average α).
    pub fn averaged(&self) -> Cluster {
        let cap = self.average_capacity();
        let alpha = self.devices.iter().map(|d| d.alpha).sum::<f64>() / self.len() as f64;
        Cluster::new(
            (0..self.len())
                .map(|i| Device::new(i, format!("avg-{i}"), cap).with_alpha(alpha))
                .collect(),
        )
    }

    /// Device ids sorted by capacity, strongest first (Algorithm 2
    /// line 3 sorts "by compute capabilities").
    pub fn ids_by_capacity_desc(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.devices.iter().map(|d| d.id).collect();
        ids.sort_by(|&a, &b| {
            let ca = self.device(a).expect("id from this cluster").capacity;
            let cb = self.device(b).expect("id from this cluster").capacity;
            cb.partial_cmp(&ca)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        ids
    }

    /// This cluster without the given devices — the re-planning input
    /// after failures.
    ///
    /// # Errors
    ///
    /// Returns `None` when removing them would empty the cluster.
    pub fn without(&self, failed: &[usize]) -> Option<Cluster> {
        let rest: Vec<Device> = self
            .devices
            .iter()
            .filter(|d| !failed.contains(&d.id))
            .cloned()
            .collect();
        if rest.is_empty() {
            None
        } else {
            Some(Cluster::new(rest))
        }
    }

    /// Whether every device has the same capacity and α.
    pub fn is_homogeneous(&self) -> bool {
        let first = &self.devices[0];
        self.devices
            .iter()
            .all(|d| d.capacity == first.capacity && d.alpha == first.alpha)
    }
}

impl FromIterator<Device> for Cluster {
    fn from_iter<T: IntoIterator<Item = Device>>(iter: T) -> Self {
        Cluster::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_frequency_scales_capacity() {
        let d = Device::from_frequency(0, 1.2);
        assert_eq!(d.capacity, 1.2e9 * FLOPS_PER_CYCLE);
        assert_eq!(d.compute_time(d.capacity), 1.0);
    }

    #[test]
    fn alpha_scales_compute_time() {
        let d = Device::from_frequency(0, 1.0).with_alpha(2.0);
        assert_eq!(d.compute_time(d.capacity), 2.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Device::new(0, "bad", 0.0);
    }

    #[test]
    #[should_panic(expected = "ids must be unique")]
    fn duplicate_ids_rejected() {
        Cluster::new(vec![
            Device::from_frequency(0, 1.0),
            Device::from_frequency(0, 1.0),
        ]);
    }

    #[test]
    fn paper_cluster_composition() {
        let c = Cluster::paper_heterogeneous();
        assert_eq!(c.len(), 8);
        assert!(!c.is_homogeneous());
        let fast = c
            .devices()
            .iter()
            .filter(|d| d.capacity > 1e9 * FLOPS_PER_CYCLE)
            .count();
        assert_eq!(fast, 2);
    }

    #[test]
    fn averaged_preserves_total_capacity() {
        let c = Cluster::paper_heterogeneous();
        let avg = c.averaged();
        assert_eq!(avg.len(), c.len());
        assert!((avg.total_capacity() - c.total_capacity()).abs() < 1e-3);
        assert!(avg.is_homogeneous());
    }

    #[test]
    fn ids_by_capacity_desc_is_sorted() {
        let c = Cluster::paper_heterogeneous();
        let ids = c.ids_by_capacity_desc();
        let caps: Vec<f64> = ids.iter().map(|i| c.device(*i).unwrap().capacity).collect();
        assert!(caps.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn homogeneous_detection() {
        assert!(Cluster::pi_cluster(4, 1.0).is_homogeneous());
        assert!(!Cluster::paper_heterogeneous_6().is_homogeneous());
    }

    #[test]
    fn calibration_fits_alpha() {
        let d = Device::from_frequency(0, 1.0);
        // Perfect samples at alpha = 1.5.
        let samples: Vec<(f64, f64)> = [1e9, 2e9, 5e9]
            .iter()
            .map(|f| (*f, 1.5 * f / d.capacity))
            .collect();
        let d = d.calibrated(&samples);
        assert!((d.alpha - 1.5).abs() < 1e-9);
    }

    #[test]
    fn calibration_averages_noise() {
        let d = Device::from_frequency(0, 1.0);
        let base = d.capacity;
        let samples = vec![(1e9, 2.2e9 / base), (1e9, 1.8e9 / base)];
        let d = d.calibrated(&samples);
        assert!((d.alpha - 2.0).abs() < 1e-9);
    }

    #[test]
    fn without_removes_devices() {
        let c = Cluster::paper_heterogeneous();
        let c2 = c.without(&[0, 7]).unwrap();
        assert_eq!(c2.len(), 6);
        assert!(c2.device(0).is_none());
        assert!(c.without(&(0..8).collect::<Vec<_>>()).is_none());
    }

    #[test]
    fn collect_into_cluster() {
        let c: Cluster = (0..3).map(|i| Device::from_frequency(i, 1.0)).collect();
        assert_eq!(c.len(), 3);
    }
}
