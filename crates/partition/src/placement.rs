//! Multi-model placement: sharing one cluster between several models.
//!
//! Real edge fleets rarely dedicate a cluster to a single network; the
//! placement literature (arXiv 2210.12219) shows co-resident models
//! contend for cores, stretching compute times. This module places `k`
//! models on one cluster under two strategies and keeps whichever has
//! the smaller bottleneck period:
//!
//! * **Partitioned** — the cluster is split into `k` disjoint device
//!   groups, capacity-proportional to each model's FLOPs; every model
//!   runs alone on its group ([`CostParams::interference`] stays `1`).
//! * **Shared** — every model is planned over the full cluster and the
//!   interference factor is set to `k`, pricing the time-slicing of
//!   `k` co-resident models on every core.
//!
//! Placement is fully deterministic: same models, cluster, and params
//! always produce the same groups and plans.

use pico_model::{Model, Rows};

use crate::{Cluster, CostParams, PicoPlanner, Plan, PlanError, PlanRequest, Planner};

/// Which co-residency strategy a [`Placement`] chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Disjoint device groups, one per model, no interference.
    Partitioned,
    /// All models over the full cluster, interference = model count.
    Shared,
}

/// One model's slot in a [`Placement`].
#[derive(Debug, Clone)]
pub struct ModelPlacement {
    /// Caller-supplied model name (zoo id or similar).
    pub name: String,
    /// Device ids this model runs on (ascending).
    pub devices: Vec<usize>,
    /// The cost parameters the plan was priced under, including the
    /// interference factor the strategy implies.
    pub params: CostParams,
    /// The admitted plan.
    pub plan: Plan,
    /// Predicted pipeline period under `params`.
    pub period: f64,
}

/// The outcome of placing several models on one cluster.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The winning strategy.
    pub strategy: PlacementStrategy,
    /// The interference factor applied to every model's compute times.
    pub interference: f64,
    /// Per-model placements, in input order.
    pub models: Vec<ModelPlacement>,
}

impl Placement {
    /// The slowest model's period — the fleet-level bottleneck the
    /// strategy choice minimizes.
    pub fn bottleneck_period(&self) -> f64 {
        self.models.iter().map(|m| m.period).fold(0.0, f64::max)
    }
}

/// Total FLOPs of one task through `model` (full output map).
fn model_flops(model: &Model) -> f64 {
    let h = model.output_shape().height;
    model.segment_flops(model.full_segment(), Rows::full(h))
}

/// Splits `cluster` into `k` non-empty disjoint groups whose total
/// capacities track `weights` (one weight per group): devices are taken
/// in capacity-descending order and each goes to the group with the
/// largest remaining capacity deficit. Returns `None` when the cluster
/// has fewer devices than groups.
fn split_cluster(cluster: &Cluster, weights: &[f64]) -> Option<Vec<Cluster>> {
    let k = weights.len();
    if cluster.len() < k || k == 0 {
        return None;
    }
    let total_cap: f64 = cluster.devices().iter().map(|d| d.capacity).sum();
    let total_w: f64 = weights.iter().sum();
    let targets: Vec<f64> = weights.iter().map(|w| total_cap * w / total_w).collect();
    let mut filled = vec![0.0f64; k];
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for &id in &cluster.ids_by_capacity_desc() {
        let cap = cluster.device(id).map(|d| d.capacity).unwrap_or(0.0);
        // Empty groups first (each model needs at least one device),
        // then the largest deficit; ties break on the lower group index
        // so the split is deterministic.
        let mut best = 0;
        let mut best_key = f64::NEG_INFINITY;
        for g in 0..k {
            let key = if groups[g].is_empty() {
                f64::INFINITY
            } else {
                targets[g] - filled[g]
            };
            if key > best_key {
                best_key = key;
                best = g;
            }
        }
        groups[best].push(id);
        filled[best] += cap;
    }
    let mut out = Vec::with_capacity(k);
    for mut ids in groups {
        ids.sort_unstable();
        let devices: Vec<_> = ids
            .iter()
            .filter_map(|&id| cluster.device(id).cloned())
            .collect();
        if devices.is_empty() {
            return None;
        }
        out.push(devices.into_iter().collect());
    }
    Some(out)
}

fn place_on(
    name: &str,
    model: &Model,
    cluster: &Cluster,
    params: &CostParams,
    planner: &dyn Planner,
) -> Result<ModelPlacement, PlanError> {
    let plan = planner.plan(&PlanRequest::new(model, cluster, params))?;
    let period = params.cost_model(model).evaluate(&plan, cluster).period;
    Ok(ModelPlacement {
        name: name.to_string(),
        devices: cluster.devices().iter().map(|d| d.id).collect(),
        params: *params,
        plan,
        period,
    })
}

fn place_partitioned(
    specs: &[(&str, &Model)],
    cluster: &Cluster,
    params: &CostParams,
    planner: &dyn Planner,
) -> Option<Result<Placement, PlanError>> {
    let weights: Vec<f64> = specs.iter().map(|(_, m)| model_flops(m)).collect();
    let groups = split_cluster(cluster, &weights)?;
    let mut models = Vec::with_capacity(specs.len());
    for ((name, model), group) in specs.iter().zip(&groups) {
        match place_on(name, model, group, params, planner) {
            Ok(p) => models.push(p),
            Err(e) => return Some(Err(e)),
        }
    }
    Some(Ok(Placement {
        strategy: PlacementStrategy::Partitioned,
        interference: 1.0,
        models,
    }))
}

fn place_shared(
    specs: &[(&str, &Model)],
    cluster: &Cluster,
    params: &CostParams,
    planner: &dyn Planner,
) -> Result<Placement, PlanError> {
    let factor = specs.len() as f64;
    let shared = params.with_interference(params.interference * factor);
    let mut models = Vec::with_capacity(specs.len());
    for (name, model) in specs {
        models.push(place_on(name, model, cluster, &shared, planner)?);
    }
    Ok(Placement {
        strategy: PlacementStrategy::Shared,
        interference: shared.interference,
        models,
    })
}

/// Places `specs` (name, model) on `cluster`, choosing between the
/// partitioned and shared strategies by the smaller bottleneck period.
/// Plans come from the paper's [`PicoPlanner`]; use
/// [`place_with`] to supply another planner.
///
/// # Errors
///
/// Returns the first [`PlanError`] if neither strategy can plan every
/// model.
///
/// # Panics
///
/// Panics if `specs` is empty.
pub fn place(
    specs: &[(&str, &Model)],
    cluster: &Cluster,
    params: &CostParams,
) -> Result<Placement, PlanError> {
    place_with(specs, cluster, params, &PicoPlanner::new())
}

/// [`place`] with an explicit planner.
///
/// # Errors
///
/// Returns the first [`PlanError`] if neither strategy can plan every
/// model.
///
/// # Panics
///
/// Panics if `specs` is empty.
pub fn place_with(
    specs: &[(&str, &Model)],
    cluster: &Cluster,
    params: &CostParams,
    planner: &dyn Planner,
) -> Result<Placement, PlanError> {
    assert!(!specs.is_empty(), "need at least one model to place");
    let shared = place_shared(specs, cluster, params, planner);
    match place_partitioned(specs, cluster, params, planner) {
        Some(Ok(part)) => match shared {
            Ok(sh) if sh.bottleneck_period() < part.bottleneck_period() => Ok(sh),
            _ => Ok(part),
        },
        Some(Err(part_err)) => shared.or(Err(part_err)),
        None => shared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;

    #[test]
    fn partitioned_groups_are_disjoint_and_interference_free() {
        let a = zoo::toy(4);
        let b = zoo::toy(4);
        let c = Cluster::pi_cluster(4, 1.0);
        let p = place(&[("a", &a), ("b", &b)], &c, &CostParams::default()).unwrap();
        if p.strategy == PlacementStrategy::Partitioned {
            assert_eq!(p.interference, 1.0);
            let mut all: Vec<usize> = p.models.iter().flat_map(|m| m.devices.clone()).collect();
            let n = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), n, "device groups overlap");
        } else {
            assert_eq!(p.interference, 2.0);
        }
        assert_eq!(p.models.len(), 2);
        assert!(p.bottleneck_period() > 0.0);
    }

    #[test]
    fn single_device_forces_shared_with_stretch() {
        let a = zoo::toy(3);
        let b = zoo::toy(3);
        let c = Cluster::pi_cluster(1, 1.0);
        let p = place(&[("a", &a), ("b", &b)], &c, &CostParams::default()).unwrap();
        assert_eq!(p.strategy, PlacementStrategy::Shared);
        assert_eq!(p.interference, 2.0);
        for m in &p.models {
            assert_eq!(m.params.interference, 2.0);
            assert_eq!(m.devices, vec![0]);
        }
    }

    #[test]
    fn shared_interference_stretches_the_period() {
        let a = zoo::toy(3);
        let c = Cluster::pi_cluster(1, 1.0);
        let alone = place(&[("a", &a)], &c, &CostParams::default()).unwrap();
        let b = zoo::toy(3);
        let both = place(&[("a", &a), ("b", &b)], &c, &CostParams::default()).unwrap();
        assert!(both.bottleneck_period() > alone.bottleneck_period());
    }

    #[test]
    fn placement_is_deterministic() {
        let a = zoo::toy(4);
        let b = zoo::toy(6);
        let c = Cluster::paper_heterogeneous();
        let p1 = place(&[("a", &a), ("b", &b)], &c, &CostParams::default()).unwrap();
        let p2 = place(&[("a", &a), ("b", &b)], &c, &CostParams::default()).unwrap();
        assert_eq!(p1.strategy, p2.strategy);
        for (m1, m2) in p1.models.iter().zip(&p2.models) {
            assert_eq!(m1.devices, m2.devices);
            assert_eq!(m1.plan, m2.plan);
            assert_eq!(m1.period, m2.period);
        }
    }

    #[test]
    fn plans_validate_on_their_groups() {
        let a = zoo::toy(4);
        let b = zoo::toy(4);
        let cluster = Cluster::pi_cluster(6, 1.0);
        let p = place(&[("a", &a), ("b", &b)], &cluster, &CostParams::default()).unwrap();
        for (spec, m) in [("a", &a), ("b", &b)].iter().zip(&p.models) {
            let group: Cluster = m
                .devices
                .iter()
                .filter_map(|&id| cluster.device(id).cloned())
                .collect();
            m.plan.validate(spec.1, &group).unwrap();
        }
    }

    #[test]
    fn bigger_model_gets_more_capacity() {
        let small = zoo::toy(2);
        let big = zoo::toy(8);
        let cluster = Cluster::pi_cluster(6, 1.0);
        let weights = [model_flops(&small), model_flops(&big)];
        let groups = split_cluster(&cluster, &weights).unwrap();
        let cap = |c: &Cluster| c.devices().iter().map(|d| d.capacity).sum::<f64>();
        assert!(cap(&groups[1]) >= cap(&groups[0]));
        assert!(!groups[0].is_empty() && !groups[1].is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_specs_panic() {
        let c = Cluster::pi_cluster(2, 1.0);
        let _ = place(&[], &c, &CostParams::default());
    }
}
