//! Structural plan diagnostics: the single source of truth behind
//! [`Plan::validate`](crate::Plan::validate) and the `pico-audit`
//! analyzer.
//!
//! [`structural_diagnostics`] runs every Error-level pass to completion
//! and returns *all* findings, each tagged with a stable code (`PA001`…),
//! a [`Severity`], and a location. [`Plan::validate`](crate::Plan::validate)
//! is a thin wrapper that surfaces the first finding as a
//! [`PlanError`] — the two can therefore never disagree about what a
//! structurally valid plan is.
//!
//! Warning/Info analysis passes (memory budgets, redundancy, cost-model
//! consistency, …) live in the `pico-audit` crate; only their codes are
//! declared here so the registry is complete in one place.

use pico_model::{Model, Region2};

use crate::{Cluster, ExecutionMode, Plan, PlanError};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only; the plan is correct and efficient enough to ship.
    Info,
    /// The plan executes correctly but wastes resources or looks
    /// suspicious; worth a look before deploying.
    Warning,
    /// The plan is structurally invalid and must not be executed.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable diagnostic codes. `PA0xx` are structural errors (subsuming
/// every [`PlanError`] that [`Plan::validate`](crate::Plan::validate)
/// can raise), `PA1xx` are efficiency warnings, `PA2xx` are
/// informational, and `PA3xx` are deep-verification findings (symbolic
/// dataflow, queue stability, switch safety) emitted by `pico-audit`'s
/// `--deep` passes. The full registry with suggested fixes lives in
/// DESIGN.md ("Plan diagnostics registry").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// PA001: the plan has no stages.
    EmptyPlan,
    /// PA002: stage segments do not tile the model contiguously.
    NonContiguousStages,
    /// PA003: stages stop before (or run past) the end of the model.
    IncompleteCoverage,
    /// PA004: a stage has no device with a non-empty share.
    EmptyStage,
    /// PA005: an assignment references a device not in the cluster.
    UnknownDevice,
    /// PA006: a device serves two stages of a pipelined plan, or appears
    /// twice within one stage.
    DeviceReuse,
    /// PA007: a strip stage's row shares do not partition the output.
    BadStripCover,
    /// PA008: a grid stage's tiles overlap or miss output cells.
    BadTileCover,
    /// PA009: a stage's segment reaches past the model's last unit.
    SegmentOutOfBounds,
    /// PA101: a device's weight + activation footprint exceeds the
    /// configured memory budget.
    MemoryOverrun,
    /// PA102: a share is shorter than its halo — most of the device's
    /// work is recomputed by its neighbours.
    DegenerateShare,
    /// PA103: the plan's overall redundancy ratio (Eq. 4) exceeds the
    /// configured threshold.
    ExcessRedundancy,
    /// PA104: the plan's claimed period/latency disagree with the cost
    /// model's recomputation (Eqs. 5–11).
    CostMismatch,
    /// PA105: a grid tile's aspect ratio is pathologically far from
    /// square, inflating its halo.
    GridAspect,
    /// PA106: the bottleneck stage measured from a telemetry trace is
    /// not the stage the cost model claims sets the period.
    BottleneckMismatch,
    /// PA201: a cluster device does no work anywhere in the plan.
    IdleDevice,
    /// PA202: a stage carries an empty (zero-area) assignment.
    EmptyAssignment,
    /// PA203: a plan assigns work to a device the audit was told is
    /// failed/excluded — a degraded plan must route around it.
    ExcludedDeviceUsed,
    /// PA301: symbolic dataflow found a worker region outside its
    /// stage's output rectangle, or a halo demand the upstream stage
    /// cannot satisfy.
    HaloMismatch,
    /// PA302: the *certified* per-device resident bound (weights +
    /// activation peak + im2col scratch peak) exceeds the deep memory
    /// budget.
    ScratchOverrun,
    /// PA303: Theorem 2 violated — within the audited workload band the
    /// arrival rate reaches or passes the critical rate λ* = 1/period,
    /// so some device's queue grows without bound.
    QueueUnstable,
    /// PA304: the bottleneck utilization ρ at the top of the workload
    /// band is above the safety margin (but still < 1).
    NearSaturation,
    /// PA305: a switch pair's stage boundaries are incompatible —
    /// neither plan's interior cut set contains the other's, so a
    /// drained warm-swap has no common handoff points.
    SwitchBoundaryIncompatible,
    /// PA306: during a warm swap both plans are resident; their combined
    /// footprint on some shared device exceeds the swap budget.
    SwapMemoryOverlap,
    /// PA307: the combined bounded-channel topology of a switch pair
    /// contains a wait-for cycle — a drain-then-switch can deadlock.
    ChannelDeadlock,
    /// PA401: a serving configuration is malformed — zero-sized queue
    /// or batch bounds, inverted batch range, or a non-positive batch
    /// delay/smoothing factor.
    ServeConfigInvalid,
    /// PA402: a tenant's in-flight budget can never bind because the
    /// queue bound plus the maximum batch already caps admitted-but-
    /// incomplete tasks below it — dead configuration.
    ServeBudgetShadowed,
    /// PA501: a churn event references a device the schedule never
    /// admitted and the initial cluster does not contain.
    ChurnUnknownDevice,
    /// PA502: a churn event's transition is invalid for the device's
    /// membership state (leave while departed, rejoin while active,
    /// recapacity while departed).
    ChurnInvalidTransition,
    /// PA503: a join event re-adds a device id that is already a
    /// member — joins must use fresh ids; returning devices rejoin.
    ChurnDuplicateJoin,
}

impl Code {
    /// Every registered code, in registry order.
    pub const ALL: [Code; 30] = [
        Code::EmptyPlan,
        Code::NonContiguousStages,
        Code::IncompleteCoverage,
        Code::EmptyStage,
        Code::UnknownDevice,
        Code::DeviceReuse,
        Code::BadStripCover,
        Code::BadTileCover,
        Code::SegmentOutOfBounds,
        Code::MemoryOverrun,
        Code::DegenerateShare,
        Code::ExcessRedundancy,
        Code::CostMismatch,
        Code::GridAspect,
        Code::BottleneckMismatch,
        Code::IdleDevice,
        Code::EmptyAssignment,
        Code::ExcludedDeviceUsed,
        Code::HaloMismatch,
        Code::ScratchOverrun,
        Code::QueueUnstable,
        Code::NearSaturation,
        Code::SwitchBoundaryIncompatible,
        Code::SwapMemoryOverlap,
        Code::ChannelDeadlock,
        Code::ServeConfigInvalid,
        Code::ServeBudgetShadowed,
        Code::ChurnUnknownDevice,
        Code::ChurnInvalidTransition,
        Code::ChurnDuplicateJoin,
    ];

    /// The stable identifier, e.g. `"PA001"`.
    pub fn id(&self) -> &'static str {
        match self {
            Code::EmptyPlan => "PA001",
            Code::NonContiguousStages => "PA002",
            Code::IncompleteCoverage => "PA003",
            Code::EmptyStage => "PA004",
            Code::UnknownDevice => "PA005",
            Code::DeviceReuse => "PA006",
            Code::BadStripCover => "PA007",
            Code::BadTileCover => "PA008",
            Code::SegmentOutOfBounds => "PA009",
            Code::MemoryOverrun => "PA101",
            Code::DegenerateShare => "PA102",
            Code::ExcessRedundancy => "PA103",
            Code::CostMismatch => "PA104",
            Code::GridAspect => "PA105",
            Code::BottleneckMismatch => "PA106",
            Code::IdleDevice => "PA201",
            Code::EmptyAssignment => "PA202",
            Code::ExcludedDeviceUsed => "PA203",
            Code::HaloMismatch => "PA301",
            Code::ScratchOverrun => "PA302",
            Code::QueueUnstable => "PA303",
            Code::NearSaturation => "PA304",
            Code::SwitchBoundaryIncompatible => "PA305",
            Code::SwapMemoryOverlap => "PA306",
            Code::ChannelDeadlock => "PA307",
            Code::ServeConfigInvalid => "PA401",
            Code::ServeBudgetShadowed => "PA402",
            Code::ChurnUnknownDevice => "PA501",
            Code::ChurnInvalidTransition => "PA502",
            Code::ChurnDuplicateJoin => "PA503",
        }
    }

    /// Parses a stable identifier (`"PA001"`…) back into its code.
    pub fn from_id(id: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.id() == id)
    }

    /// The severity this code is always reported at.
    pub fn severity(&self) -> Severity {
        match self {
            Code::EmptyPlan
            | Code::NonContiguousStages
            | Code::IncompleteCoverage
            | Code::EmptyStage
            | Code::UnknownDevice
            | Code::DeviceReuse
            | Code::BadStripCover
            | Code::BadTileCover
            | Code::SegmentOutOfBounds => Severity::Error,
            Code::MemoryOverrun
            | Code::DegenerateShare
            | Code::ExcessRedundancy
            | Code::CostMismatch
            | Code::GridAspect
            | Code::BottleneckMismatch => Severity::Warning,
            Code::IdleDevice | Code::EmptyAssignment | Code::ExcludedDeviceUsed => Severity::Info,
            Code::HaloMismatch
            | Code::ScratchOverrun
            | Code::QueueUnstable
            | Code::SwitchBoundaryIncompatible
            | Code::SwapMemoryOverlap
            | Code::ChannelDeadlock
            | Code::ServeConfigInvalid
            | Code::ChurnUnknownDevice
            | Code::ChurnInvalidTransition
            | Code::ChurnDuplicateJoin => Severity::Error,
            Code::NearSaturation | Code::ServeBudgetShadowed => Severity::Warning,
        }
    }

    /// One-line description of what the code means.
    pub fn summary(&self) -> &'static str {
        match self {
            Code::EmptyPlan => "plan has no stages",
            Code::NonContiguousStages => "stage segments do not tile the model contiguously",
            Code::IncompleteCoverage => "stages do not cover the model exactly",
            Code::EmptyStage => "stage has no worker with a non-empty share",
            Code::UnknownDevice => "assignment references a device not in the cluster",
            Code::DeviceReuse => "device reused across pipelined stages or within a stage",
            Code::BadStripCover => "strip shares do not partition the stage output rows",
            Code::BadTileCover => "grid tiles overlap or miss output cells",
            Code::SegmentOutOfBounds => "stage segment reaches past the model",
            Code::MemoryOverrun => "device footprint exceeds the memory budget",
            Code::DegenerateShare => "share is mostly halo (pure redundant compute)",
            Code::ExcessRedundancy => "plan-wide redundancy ratio above threshold",
            Code::CostMismatch => "claimed period/latency disagree with the cost model",
            Code::GridAspect => "grid tile far from square, inflating its halo",
            Code::BottleneckMismatch => "measured bottleneck stage differs from the plan's claim",
            Code::IdleDevice => "cluster device does no work in the plan",
            Code::EmptyAssignment => "stage carries an empty assignment",
            Code::ExcludedDeviceUsed => "plan assigns work to an excluded (failed) device",
            Code::HaloMismatch => "worker region escapes its stage output or halo unsatisfiable",
            Code::ScratchOverrun => "certified resident bound exceeds the deep memory budget",
            Code::QueueUnstable => "workload band reaches the critical rate: some queue diverges",
            Code::NearSaturation => "bottleneck utilization above the safety margin at peak load",
            Code::SwitchBoundaryIncompatible => "switch pair has no nested stage-boundary cuts",
            Code::SwapMemoryOverlap => "combined warm-swap footprint exceeds the swap budget",
            Code::ChannelDeadlock => "combined bounded-channel topology has a wait-for cycle",
            Code::ServeConfigInvalid => "serving configuration is malformed",
            Code::ServeBudgetShadowed => "tenant in-flight budget can never bind",
            Code::ChurnUnknownDevice => "churn event references a device the cluster never had",
            Code::ChurnInvalidTransition => "churn event invalid for the device's membership state",
            Code::ChurnDuplicateJoin => "join re-adds a device id that is already a member",
        }
    }

    /// Suggested fix, mirrored in the DESIGN.md registry.
    pub fn suggestion(&self) -> &'static str {
        match self {
            Code::EmptyPlan => "add at least one stage covering the model",
            Code::NonContiguousStages => "make each stage start where the previous one ended",
            Code::IncompleteCoverage => "extend or trim stages so they cover every unit exactly",
            Code::EmptyStage => "assign at least one non-empty share, or drop the stage",
            Code::UnknownDevice => "plan against the cluster the plan will run on",
            Code::DeviceReuse => "give pipelined stages disjoint device subsets",
            Code::BadStripCover => "make shares contiguous, disjoint, and exactly covering",
            Code::BadTileCover => "tile the output rectangle exactly with disjoint tiles",
            Code::SegmentOutOfBounds => "clamp stage segments to the model's unit count",
            Code::MemoryOverrun => "shrink the device's share or raise the budget",
            Code::DegenerateShare => "merge the share into a neighbour or rebalance rows",
            Code::ExcessRedundancy => "use fewer workers per stage, split depth-wise, or grid",
            Code::CostMismatch => "recompute metrics with the current cost parameters",
            Code::GridAspect => "pick a squarer grid factorization",
            Code::BottleneckMismatch => "re-profile the cluster or re-plan with measured costs",
            Code::IdleDevice => "spread work onto the device or remove it from the cluster",
            Code::EmptyAssignment => "drop zero-area assignments when emitting the plan",
            Code::ExcludedDeviceUsed => "re-plan with the failed devices excluded from the request",
            Code::HaloMismatch => "clip worker regions to the stage output and re-derive halos",
            Code::ScratchOverrun => "shrink the device's share, fuse less, or raise the budget",
            Code::QueueUnstable => "cap admission below lambda*, or re-plan for a shorter period",
            Code::SwitchBoundaryIncompatible => "pick switch pairs with nested stage boundaries",
            Code::SwapMemoryOverlap => "stage the swap device-by-device or raise the swap budget",
            Code::ChannelDeadlock => "use unbounded channels or drain fully before switching",
            Code::NearSaturation => "leave headroom: plan for a shorter period or shed load",
            Code::ServeConfigInvalid => "fix the listed policy fields before serving",
            Code::ServeBudgetShadowed => {
                "lower the budget below queue_capacity + max_batch or drop it"
            }
            Code::ChurnUnknownDevice => "join the device first, or fix the device id",
            Code::ChurnInvalidTransition => "order events so state transitions are legal",
            Code::ChurnDuplicateJoin => "use rejoin for returning devices, fresh ids for joins",
        }
    }
}

impl std::fmt::Display for Code {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding of the analyzer: a coded, located, human-readable fact
/// about a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Offending stage index, when the finding is stage-local.
    pub stage: Option<usize>,
    /// Offending device id, when the finding is device-local.
    pub device: Option<usize>,
    /// Offending model unit index, when the finding is layer-local.
    pub unit: Option<usize>,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic for a code with the severity the code
    /// mandates.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            stage: None,
            device: None,
            unit: None,
            message: message.into(),
        }
    }

    /// Attaches a stage location.
    pub fn at_stage(mut self, stage: usize) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Attaches a device location.
    pub fn at_device(mut self, device: usize) -> Self {
        self.device = Some(device);
        self
    }

    /// Attaches a model-unit location.
    pub fn at_unit(mut self, unit: usize) -> Self {
        self.unit = Some(unit);
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.code, self.severity)?;
        let mut locs = Vec::new();
        if let Some(s) = self.stage {
            locs.push(format!("stage {s}"));
        }
        if let Some(d) = self.device {
            locs.push(format!("device {d}"));
        }
        if let Some(u) = self.unit {
            locs.push(format!("unit {u}"));
        }
        if !locs.is_empty() {
            write!(f, " [{}]", locs.join(", "))?;
        }
        write!(f, ": {}", self.message)
    }
}

/// A structural finding paired with the legacy error it maps to, so
/// `Plan::validate` can keep returning exact [`PlanError`] variants.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StructuralFinding {
    pub(crate) diagnostic: Diagnostic,
    pub(crate) error: PlanError,
}

fn finding(code: Code, error: PlanError) -> StructuralFinding {
    let mut d = Diagnostic::new(code, error.to_string());
    match &error {
        PlanError::EmptyStage { stage }
        | PlanError::BadRowCover { stage, .. }
        | PlanError::DeviceReuse { stage, .. } => d = d.at_stage(*stage),
        PlanError::UnknownDevice { device } => d = d.at_device(*device),
        _ => {}
    }
    if let PlanError::DeviceReuse { device, .. } = &error {
        d = d.at_device(*device);
    }
    StructuralFinding {
        diagnostic: d,
        error,
    }
}

/// Runs every structural (Error-level) pass to completion.
///
/// The first finding, when any, is exactly the error the seed's
/// single-shot validator reported, preserving `Plan::validate`'s
/// observable behaviour while letting callers see the complete list.
pub(crate) fn structural_findings(
    plan: &Plan,
    model: &Model,
    cluster: &Cluster,
) -> Vec<StructuralFinding> {
    let mut out = Vec::new();
    if plan.stages.is_empty() {
        out.push(finding(Code::EmptyPlan, PlanError::EmptyPlan));
        return out;
    }

    // Pass 1: contiguous tiling of the model's unit range.
    let mut cursor = 0usize;
    for stage in &plan.stages {
        if stage.segment.start != cursor {
            out.push(finding(
                Code::NonContiguousStages,
                PlanError::NonContiguousStages {
                    expected_start: cursor,
                    found_start: stage.segment.start,
                },
            ));
        }
        // Advancing to this stage's end resynchronizes after a gap, so
        // one gap yields one diagnostic instead of cascading into every
        // later stage.
        cursor = stage.segment.end;
    }
    if cursor != model.len() {
        out.push(finding(
            Code::IncompleteCoverage,
            PlanError::IncompleteCoverage {
                covered: cursor,
                expected: model.len(),
            },
        ));
    }

    // Pass 2: per-stage device and geometry checks.
    let mut seen = std::collections::HashSet::new();
    for (idx, stage) in plan.stages.iter().enumerate() {
        if stage.worker_count() == 0 {
            out.push(finding(
                Code::EmptyStage,
                PlanError::EmptyStage { stage: idx },
            ));
        }
        for a in &stage.assignments {
            if cluster.device(a.device).is_none() {
                out.push(finding(
                    Code::UnknownDevice,
                    PlanError::UnknownDevice { device: a.device },
                ));
            }
            if a.is_empty() {
                continue;
            }
            if plan.mode == ExecutionMode::Pipelined && !seen.insert(a.device) {
                out.push(finding(
                    Code::DeviceReuse,
                    PlanError::DeviceReuse {
                        device: a.device,
                        stage: idx,
                    },
                ));
            }
        }
        if stage.segment.end > model.len() {
            // Geometry needs the stage's output shape, which does not
            // exist for an out-of-range segment. PA003 above already
            // flags the plan; this pins down the offending stage.
            out.push(
                finding(
                    Code::SegmentOutOfBounds,
                    PlanError::UnsupportedModel {
                        detail: format!(
                            "stage {idx} segment {} reaches past the model's {} units",
                            stage.segment,
                            model.len()
                        ),
                    },
                )
                .located(|d| d.at_stage(idx).at_unit(stage.segment.start)),
            );
        } else {
            geometry_findings(plan, model, idx, &mut out);
        }
        // A stage must not repeat a device within itself either
        // (sequential plans reuse devices across stages only).
        let mut ids: Vec<usize> = stage.device_ids().collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        if ids.len() != before {
            out.push(finding(
                Code::DeviceReuse,
                PlanError::DeviceReuse {
                    device: ids[0],
                    stage: idx,
                },
            ));
        }
    }
    out
}

impl StructuralFinding {
    fn located(mut self, f: impl FnOnce(Diagnostic) -> Diagnostic) -> Self {
        self.diagnostic = f(self.diagnostic);
        self
    }
}

/// Row/tile cover checks for one in-bounds stage.
fn geometry_findings(plan: &Plan, model: &Model, idx: usize, out: &mut Vec<StructuralFinding>) {
    let stage = &plan.stages[idx];
    let out_shape = model.unit_output_shape(stage.segment.end - 1);
    let out_h = out_shape.height;
    if stage.is_grid() {
        // Grid stages: tiles must be pairwise disjoint and cover the
        // output rectangle exactly (area check + disjoint check is
        // sufficient for axis-aligned rectangles).
        let regions: Vec<Region2> = stage
            .assignments
            .iter()
            .filter(|a| !a.is_empty())
            .map(|a| a.region(out_shape.width))
            .collect();
        let total: usize = regions.iter().map(Region2::area).sum();
        let expected = out_h * out_shape.width;
        if total != expected {
            out.push(finding(
                Code::BadTileCover,
                PlanError::BadRowCover {
                    stage: idx,
                    detail: format!("tiles cover {total} cells of {expected}"),
                },
            ));
        }
        for (i, a) in regions.iter().enumerate() {
            for b in &regions[i + 1..] {
                let overlap = a.rows.overlap(b.rows) * a.cols.overlap(b.cols);
                if overlap > 0 {
                    out.push(finding(
                        Code::BadTileCover,
                        PlanError::BadRowCover {
                            stage: idx,
                            detail: format!("tiles {a} and {b} overlap"),
                        },
                    ));
                }
            }
        }
    } else {
        // Strip stages: shares in row order, disjoint, covering
        // 0..out_h.
        let mut row_cursor = 0usize;
        let mut broken = false;
        for a in &stage.assignments {
            if a.rows.is_empty() {
                continue;
            }
            if a.rows.start != row_cursor {
                out.push(
                    finding(
                        Code::BadStripCover,
                        PlanError::BadRowCover {
                            stage: idx,
                            detail: format!(
                                "share {} begins at row {} but cover reached {row_cursor}",
                                a.device, a.rows.start
                            ),
                        },
                    )
                    .located(|d| d.at_device(a.device)),
                );
                broken = true;
            }
            row_cursor = a.rows.end;
        }
        if row_cursor != out_h && !broken {
            out.push(finding(
                Code::BadStripCover,
                PlanError::BadRowCover {
                    stage: idx,
                    detail: format!("cover ends at row {row_cursor}, output has {out_h} rows"),
                },
            ));
        }
    }
}

/// Runs all structural (Error-level) passes to completion and returns
/// every finding as a [`Diagnostic`].
///
/// An empty result means the plan is structurally valid —
/// [`Plan::validate`](crate::Plan::validate) would return `Ok(())` —
/// and it is safe to run analysis passes (cost, memory, redundancy)
/// that assume well-formed geometry.
pub fn structural_diagnostics(plan: &Plan, model: &Model, cluster: &Cluster) -> Vec<Diagnostic> {
    structural_findings(plan, model, cluster)
        .into_iter()
        .map(|f| f.diagnostic)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Scheme, Stage};
    use pico_model::{rows_split_even, zoo, Rows, Segment};

    fn simple_plan(model: &Model, cluster: &Cluster) -> Plan {
        let h = model.output_shape().height;
        let shares = rows_split_even(Rows::full(h), cluster.len());
        let assignments = cluster
            .devices()
            .iter()
            .zip(shares)
            .map(|(d, r)| Assignment::new(d.id, r))
            .collect();
        Plan::new(
            Scheme::EarlyFused,
            ExecutionMode::Sequential,
            vec![Stage::new(model.full_segment(), assignments)],
        )
    }

    #[test]
    fn clean_plan_has_no_findings() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(4, 1.0);
        assert!(structural_diagnostics(&simple_plan(&m, &c), &m, &c).is_empty());
    }

    #[test]
    fn every_code_has_unique_id_and_fixed_severity() {
        let mut ids: Vec<&str> = Code::ALL.iter().map(Code::id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Code::ALL.len());
        for c in Code::ALL {
            assert!(c.id().starts_with("PA"));
            assert!(!c.summary().is_empty() && !c.suggestion().is_empty());
        }
    }

    #[test]
    fn ids_round_trip_through_from_id() {
        for c in Code::ALL {
            assert_eq!(Code::from_id(c.id()), Some(c));
        }
        assert_eq!(Code::from_id(&format!("PA{}", 999)), None);
        assert_eq!(Code::from_id(""), None);
    }

    #[test]
    fn multiple_defects_are_all_reported() {
        // A gap between stages AND a reused device AND an unknown device:
        // the seed validator stopped at the gap; the scan finds all.
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![
                Stage::new(Segment::new(0, 2), vec![Assignment::new(0, Rows::full(h))]),
                Stage::new(
                    Segment::new(3, 4),
                    vec![
                        Assignment::new(0, Rows::new(0, h)),
                        Assignment::new(42, Rows::empty()),
                    ],
                ),
            ],
        );
        let diags = structural_diagnostics(&plan, &m, &c);
        let codes: Vec<Code> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::NonContiguousStages));
        assert!(codes.contains(&Code::DeviceReuse));
        assert!(codes.contains(&Code::UnknownDevice));
        // First finding is what validate() reports.
        assert_eq!(codes[0], Code::NonContiguousStages);
        assert!(matches!(
            plan.validate(&m, &c),
            Err(PlanError::NonContiguousStages { .. })
        ));
    }

    #[test]
    fn out_of_bounds_segment_is_pinned_without_panicking() {
        let m = zoo::toy(2);
        let c = Cluster::pi_cluster(1, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![Stage::new(
                Segment::new(0, m.len() + 1),
                vec![Assignment::new(0, Rows::full(h))],
            )],
        );
        let diags = structural_diagnostics(&plan, &m, &c);
        assert_eq!(diags[0].code, Code::IncompleteCoverage);
        assert!(diags.iter().any(|d| d.code == Code::SegmentOutOfBounds));
    }

    #[test]
    fn diagnostics_render_code_severity_and_location() {
        let m = zoo::toy(2);
        let c = Cluster::pi_cluster(1, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![Stage::new(
                m.full_segment(),
                vec![Assignment::new(42, Rows::full(h))],
            )],
        );
        let diags = structural_diagnostics(&plan, &m, &c);
        let line = diags[0].to_string();
        assert!(line.starts_with("PA005 error"), "{line}");
        assert!(line.contains("device 42"), "{line}");
    }

    #[test]
    fn one_gap_does_not_cascade() {
        // Stages 1..n are contiguous among themselves after a single
        // gap; only one PA002 should be reported.
        let m = zoo::toy(6);
        let c = Cluster::pi_cluster(3, 1.0);
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![
                Stage::new(
                    Segment::new(0, 2),
                    vec![Assignment::new(
                        0,
                        Rows::full(m.unit_output_shape(1).height),
                    )],
                ),
                Stage::new(
                    Segment::new(3, 5),
                    vec![Assignment::new(
                        1,
                        Rows::full(m.unit_output_shape(4).height),
                    )],
                ),
                Stage::new(
                    Segment::new(5, 6),
                    vec![Assignment::new(
                        2,
                        Rows::full(m.unit_output_shape(5).height),
                    )],
                ),
            ],
        );
        let diags = structural_diagnostics(&plan, &m, &c);
        let gaps = diags
            .iter()
            .filter(|d| d.code == Code::NonContiguousStages)
            .count();
        assert_eq!(gaps, 1, "{diags:?}");
    }
}
