use pico_model::{Model, Region2, Rows, Segment};
use serde::{Deserialize, Serialize};

use crate::{Assignment, Cluster, Device, ExecutionMode, Plan, Stage};

/// Environment parameters of the cost model: the shared WLAN bandwidth
/// `b` (the paper assumes one uniform bandwidth for all device pairs)
/// and an optional pipeline latency limit `T_lim` (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Shared bandwidth in **bits per second**.
    pub bandwidth_bps: f64,
    /// Latency constraint `T_lim` in seconds (`None` = unconstrained).
    pub t_lim: Option<f64>,
    /// Multiplier on every predicted compute time (Eq. 5 becomes
    /// `t = alpha_scale · α · θ / ϑ`). `1.0` keeps the nominal
    /// one-FLOP-per-cycle assumption; [`CostParams::calibrated`]
    /// re-fits it from measured per-layer kernel times so planner
    /// periods track the deployed compute backend. Scaling is uniform,
    /// so share balancing and stage ordering are unaffected — only
    /// absolute period/latency predictions move.
    pub alpha_scale: f64,
    /// Per-backend throughput multiplier on compute times, composing
    /// multiplicatively with `alpha_scale` (Eq. 5 becomes
    /// `t = backend_alpha · alpha_scale · α · θ / ϑ`). `1.0` prices
    /// the scalar `Im2colGemm` backend; a vectorized (`Simd`) or
    /// int8-quantized device runs the same FLOPs in a fraction of the
    /// time, so its plans should carry `backend_alpha < 1` (e.g. the
    /// measured `Reference/Simd` gate ratio inverted —
    /// `pico bench kernels` prints the per-backend medians this is
    /// derived from; see EXPERIMENTS.md).
    pub backend_alpha: f64,
    /// Co-residency stretch on compute times when several models share
    /// the cluster (Eq. 5 becomes `t = interference · backend_alpha ·
    /// alpha_scale · α · θ / ϑ`). `1.0` means the model runs alone;
    /// [`crate::placement`] sets it to the co-resident model count when
    /// models time-share the same devices, following the
    /// interference-aware placement literature (arXiv 2210.12219).
    /// Transfers are unaffected — contention is priced on the cores,
    /// not the wire.
    pub interference: f64,
}

impl CostParams {
    /// Creates parameters with the given bandwidth in bits/s.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive and finite.
    pub fn new(bandwidth_bps: f64) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive and finite"
        );
        CostParams {
            bandwidth_bps,
            t_lim: None,
            alpha_scale: 1.0,
            backend_alpha: 1.0,
            interference: 1.0,
        }
    }

    /// The paper's testbed network: a WiFi access point with 50 Mbps.
    pub fn wifi_50mbps() -> Self {
        CostParams::new(50e6)
    }

    /// Returns these parameters with a latency limit.
    pub fn with_t_lim(mut self, t_lim: f64) -> Self {
        assert!(t_lim.is_finite() && t_lim > 0.0, "t_lim must be positive");
        self.t_lim = Some(t_lim);
        self
    }

    /// Returns these parameters pricing a compute backend `ratio`×
    /// faster (`ratio > 1`, e.g. the measured `Reference/Simd` median
    /// ratio) — sugar for setting [`CostParams::backend_alpha`] to
    /// `1 / ratio`.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive and finite.
    pub fn with_backend_speedup(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "backend speedup must be positive and finite"
        );
        self.backend_alpha = 1.0 / ratio;
        self
    }

    /// Returns these parameters with a co-residency interference factor
    /// (`>= 1`): compute times stretch by `factor`, transfers do not.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or is below `1.0`.
    pub fn with_interference(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "interference factor must be finite and >= 1"
        );
        self.interference = factor;
        self
    }

    /// Re-fits the compute coefficient from measured per-layer kernel
    /// times: a least-squares fit through the origin of
    /// `seconds = alpha_scale · flops / capacity` over `samples` of
    /// `(flops, seconds)` pairs measured on a device of nominal
    /// `capacity` cycles/s (`pico bench planner` prints such a fit for
    /// the active backend).
    ///
    /// Samples with non-positive or non-finite entries are ignored;
    /// with no usable sample the parameters are returned unchanged.
    pub fn calibrated(mut self, capacity: f64, samples: &[(f64, f64)]) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive and finite"
        );
        let mut num = 0.0;
        let mut den = 0.0;
        for &(flops, secs) in samples {
            if flops.is_finite() && secs.is_finite() && flops > 0.0 && secs > 0.0 {
                let x = flops / capacity;
                num += x * secs;
                den += x * x;
            }
        }
        if den > 0.0 {
            self.alpha_scale = num / den;
        }
        self
    }

    /// Builds a [`CostModel`] for a model under these parameters.
    pub fn cost_model<'m>(&self, model: &'m Model) -> CostModel<'m> {
        CostModel {
            model,
            params: *self,
        }
    }
}

impl Default for CostParams {
    /// The paper's 50 Mbps WiFi, no latency limit.
    fn default() -> Self {
        CostParams::wifi_50mbps()
    }
}

/// Computation/communication breakdown of one stage (Eq. 9:
/// `T(S) = T_comp(S) + T_comm(S)`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// `T_comp`: the slowest device's compute time (Eq. 6).
    pub comp: f64,
    /// `T_comm`: summed transfer time over the stage's devices (Eq. 8).
    pub comm: f64,
}

impl StageCost {
    /// Total stage time (Eq. 9).
    pub fn total(&self) -> f64 {
        self.comp + self.comm
    }
}

/// Predicted performance of a whole plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanMetrics {
    /// Pipeline period `P` (Eq. 10) — the reciprocal of throughput. For
    /// sequential (one-stage) schemes this equals `latency`.
    pub period: f64,
    /// Pipeline latency `T` (Eq. 11) — time for one task to traverse
    /// all stages.
    pub latency: f64,
    /// Per-stage cost breakdown.
    pub stage_costs: Vec<StageCost>,
}

impl PlanMetrics {
    /// Steady-state throughput in tasks per second (`1 / period`).
    pub fn throughput(&self) -> f64 {
        1.0 / self.period
    }
}

/// The paper's analytic cost model (Sec. III-B) bound to one model.
///
/// All times are seconds, all data volumes are bytes (converted to bits
/// against [`CostParams::bandwidth_bps`]).
#[derive(Debug, Clone)]
pub struct CostModel<'m> {
    model: &'m Model,
    params: CostParams,
}

impl<'m> CostModel<'m> {
    /// The model being costed.
    pub fn model(&self) -> &'m Model {
        self.model
    }

    /// The environment parameters.
    pub fn params(&self) -> CostParams {
        self.params
    }

    /// Eq. 5: time for `device` to compute output rows `rows` of
    /// segment `seg` (including halo redundancy), scaled by the
    /// calibrated compute coefficient.
    pub fn assignment_comp_time(&self, device: &Device, seg: Segment, rows: Rows) -> f64 {
        self.params.interference
            * self.params.backend_alpha
            * self.params.alpha_scale
            * device.compute_time(self.model.segment_flops(seg, rows))
    }

    /// Eq. 7: time to ship one device's input tile in and output tile
    /// back over the shared link.
    pub fn assignment_comm_time(&self, seg: Segment, rows: Rows) -> f64 {
        let bytes = self.assignment_comm_bytes(seg, rows);
        bytes as f64 * 8.0 / self.params.bandwidth_bps
    }

    /// Bytes moved for one assignment: `φ(F_i^k) + φ(F_j^k)`.
    pub fn assignment_comm_bytes(&self, seg: Segment, rows: Rows) -> usize {
        if rows.is_empty() {
            return 0;
        }
        let in_rows = self.model.segment_input_rows(seg, rows);
        let in_bytes = self
            .model
            .unit_input_shape(seg.start)
            .row_bytes(in_rows.len());
        let out_bytes = self
            .model
            .unit_output_shape(seg.end - 1)
            .row_bytes(rows.len());
        in_bytes + out_bytes
    }

    /// Eq. 5 for a rectangular tile (grid partitioning).
    pub fn region_comp_time(&self, device: &Device, seg: Segment, region: Region2) -> f64 {
        self.params.interference
            * self.params.backend_alpha
            * self.params.alpha_scale
            * device.compute_time(self.model.segment_region_flops(seg, region))
    }

    /// Bytes moved for a rectangular tile: input region + output region.
    pub fn region_comm_bytes(&self, seg: Segment, region: Region2) -> usize {
        if region.is_empty() {
            return 0;
        }
        let need = self.model.segment_input_region(seg, region);
        need.bytes(self.model.unit_input_shape(seg.start).channels)
            + region.bytes(self.model.unit_output_shape(seg.end - 1).channels)
    }

    /// Eq. 7 for a rectangular tile.
    pub fn region_comm_time(&self, seg: Segment, region: Region2) -> f64 {
        self.region_comm_bytes(seg, region) as f64 * 8.0 / self.params.bandwidth_bps
    }

    /// Compute time of one assignment (strip or tile).
    pub fn comp_time_of(&self, device: &Device, seg: Segment, a: &Assignment) -> f64 {
        match a.cols {
            None => self.assignment_comp_time(device, seg, a.rows),
            Some(_) => {
                let width = self.model.unit_output_shape(seg.end - 1).width;
                self.region_comp_time(device, seg, a.region(width))
            }
        }
    }

    /// Transfer time of one assignment (strip or tile).
    pub fn comm_time_of(&self, seg: Segment, a: &Assignment) -> f64 {
        match a.cols {
            None => self.assignment_comm_time(seg, a.rows),
            Some(_) => {
                let width = self.model.unit_output_shape(seg.end - 1).width;
                self.region_comm_time(seg, a.region(width))
            }
        }
    }

    /// Eqs. 6 + 8 + 9: a stage's compute (max over devices) and
    /// communication (sum over devices) cost.
    ///
    /// Following Eq. 8 literally, *every* device in the stage — even a
    /// single one — pays for shipping its input tile in and its output
    /// tile out over the shared link: in a pipeline, data always moves
    /// between the coordinator `d_f` and the compute devices, and
    /// between consecutive stages' coordinators.
    ///
    /// # Panics
    ///
    /// Panics if an assignment references a device missing from
    /// `cluster`. Validate plans first ([`Plan::validate`]).
    pub fn stage_cost(&self, stage: &Stage, cluster: &Cluster) -> StageCost {
        let workers: Vec<&Assignment> =
            stage.assignments.iter().filter(|a| !a.is_empty()).collect();
        let comp = workers
            .iter()
            .map(|a| {
                let device = cluster
                    .device(a.device)
                    .expect("plan references device missing from cluster");
                self.comp_time_of(device, stage.segment, a)
            })
            .fold(0.0, f64::max);
        let comm = workers
            .iter()
            .map(|a| self.comm_time_of(stage.segment, a))
            .sum();
        StageCost { comp, comm }
    }

    /// Evaluates a plan: per-stage costs, pipeline period (Eq. 10), and
    /// pipeline latency (Eq. 11).
    ///
    /// # Panics
    ///
    /// Panics if the plan references devices missing from `cluster`.
    pub fn evaluate(&self, plan: &Plan, cluster: &Cluster) -> PlanMetrics {
        let stage_costs: Vec<StageCost> = plan
            .stages
            .iter()
            .map(|s| self.stage_cost(s, cluster))
            .collect();
        let latency: f64 = stage_costs.iter().map(StageCost::total).sum();
        let period = match plan.mode {
            ExecutionMode::Pipelined => {
                stage_costs.iter().map(StageCost::total).fold(0.0, f64::max)
            }
            ExecutionMode::Sequential => latency,
        };
        PlanMetrics {
            period,
            latency,
            stage_costs,
        }
    }

    /// Cost of a hypothetical stage: segment `seg` split evenly over the
    /// first `p` devices of `cluster` (the homogeneous `Ts[i][j][p]` of
    /// Algorithm 1).
    pub fn even_stage_cost(&self, seg: Segment, cluster: &Cluster, p: usize) -> StageCost {
        let h = self.model.unit_output_shape(seg.end - 1).height;
        let shares = pico_model::rows_split_even(Rows::full(h), p);
        let stage = Stage::new(
            seg,
            cluster
                .devices()
                .iter()
                .take(p)
                .zip(shares)
                .map(|(d, r)| crate::Assignment::new(d.id, r))
                .collect(),
        );
        self.stage_cost(&stage, cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Scheme};
    use pico_model::{rows_split_even, zoo};

    fn toy_setup() -> (Model, Cluster, CostParams) {
        (
            zoo::toy(4),
            Cluster::pi_cluster(4, 1.0),
            CostParams::wifi_50mbps(),
        )
    }

    #[test]
    fn comp_time_scales_with_capacity() {
        let (m, _, p) = toy_setup();
        let cm = p.cost_model(&m);
        let slow = Device::from_frequency(0, 0.6);
        let fast = Device::from_frequency(1, 1.2);
        let seg = m.full_segment();
        let rows = Rows::full(m.output_shape().height);
        let t_slow = cm.assignment_comp_time(&slow, seg, rows);
        let t_fast = cm.assignment_comp_time(&fast, seg, rows);
        assert!((t_slow / t_fast - 2.0).abs() < 1e-9);
    }

    #[test]
    fn comm_bytes_count_input_and_output_tiles() {
        let (m, _, p) = toy_setup();
        let cm = p.cost_model(&m);
        let seg = m.full_segment();
        let h = m.output_shape().height;
        let rows = Rows::new(0, h / 2);
        let in_rows = m.segment_input_rows(seg, rows);
        let expected =
            m.input_shape().row_bytes(in_rows.len()) + m.output_shape().row_bytes(rows.len());
        assert_eq!(cm.assignment_comm_bytes(seg, rows), expected);
    }

    #[test]
    fn empty_assignment_moves_nothing() {
        let (m, _, p) = toy_setup();
        let cm = p.cost_model(&m);
        assert_eq!(cm.assignment_comm_bytes(m.full_segment(), Rows::empty()), 0);
    }

    #[test]
    fn comm_time_uses_bits() {
        let (m, _, _) = toy_setup();
        let p = CostParams::new(8.0); // 8 bits/s = 1 byte/s
        let cm = p.cost_model(&m);
        let seg = m.full_segment();
        let rows = Rows::new(0, 4);
        let bytes = cm.assignment_comm_bytes(seg, rows);
        assert!((cm.assignment_comm_time(seg, rows) - bytes as f64).abs() < 1e-9);
    }

    #[test]
    fn single_worker_stage_pays_its_transfer() {
        // Eq. 8 charges every stage device for its input and output
        // tiles, including a solo device.
        let (m, c, p) = toy_setup();
        let cm = p.cost_model(&m);
        let h = m.output_shape().height;
        let stage = Stage::new(m.full_segment(), vec![Assignment::new(0, Rows::full(h))]);
        let cost = cm.stage_cost(&stage, &c);
        let expected = cm.assignment_comm_time(m.full_segment(), Rows::full(h));
        assert!((cost.comm - expected).abs() < 1e-12);
        assert!(cost.comp > 0.0);
    }

    #[test]
    fn stage_comp_is_max_comm_is_sum() {
        let (m, c, p) = toy_setup();
        let cm = p.cost_model(&m);
        let h = m.output_shape().height;
        let shares = rows_split_even(Rows::full(h), 2);
        let stage = Stage::new(
            m.full_segment(),
            vec![Assignment::new(0, shares[0]), Assignment::new(1, shares[1])],
        );
        let cost = cm.stage_cost(&stage, &c);
        let seg = m.full_segment();
        let d0 = c.device(0).unwrap();
        let t0 = cm.assignment_comp_time(d0, seg, shares[0]);
        let t1 = cm.assignment_comp_time(c.device(1).unwrap(), seg, shares[1]);
        assert!((cost.comp - t0.max(t1)).abs() < 1e-12);
        let comm =
            cm.assignment_comm_time(seg, shares[0]) + cm.assignment_comm_time(seg, shares[1]);
        assert!((cost.comm - comm).abs() < 1e-12);
    }

    #[test]
    fn sequential_period_equals_latency() {
        let (m, c, p) = toy_setup();
        let cm = p.cost_model(&m);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::OptimalFused,
            ExecutionMode::Sequential,
            vec![
                Stage::new(Segment::new(0, 2), vec![Assignment::new(0, Rows::full(h))]),
                Stage::new(Segment::new(2, 4), vec![Assignment::new(1, Rows::full(h))]),
            ],
        );
        let metrics = cm.evaluate(&plan, &c);
        assert_eq!(metrics.period, metrics.latency);
    }

    #[test]
    fn pipelined_period_is_max_stage() {
        let (m, c, p) = toy_setup();
        let cm = p.cost_model(&m);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![
                Stage::new(Segment::new(0, 2), vec![Assignment::new(0, Rows::full(h))]),
                Stage::new(Segment::new(2, 4), vec![Assignment::new(1, Rows::full(h))]),
            ],
        );
        let metrics = cm.evaluate(&plan, &c);
        let max = metrics
            .stage_costs
            .iter()
            .map(StageCost::total)
            .fold(0.0, f64::max);
        assert_eq!(metrics.period, max);
        assert!(metrics.period < metrics.latency);
        assert!((metrics.throughput() - 1.0 / max).abs() < 1e-12);
    }

    #[test]
    fn even_stage_cost_more_devices_less_comp() {
        let (m, c, p) = toy_setup();
        let cm = p.cost_model(&m);
        let seg = m.full_segment();
        let c1 = cm.even_stage_cost(seg, &c, 1);
        let c4 = cm.even_stage_cost(seg, &c, 4);
        assert!(c4.comp < c1.comp);
        // Splitting adds halo rows to the summed transfers.
        assert!(c4.comm > c1.comm);
        assert!(c1.comm > 0.0);
    }

    #[test]
    fn default_params_are_paper_wifi() {
        let p = CostParams::default();
        assert_eq!(p.bandwidth_bps, 50e6);
        assert_eq!(p.t_lim, None);
    }

    #[test]
    fn t_lim_builder() {
        let p = CostParams::wifi_50mbps().with_t_lim(2.5);
        assert_eq!(p.t_lim, Some(2.5));
    }

    #[test]
    fn calibrated_recovers_an_exact_coefficient() {
        // Samples generated with alpha_scale = 0.25 at 1 GHz fit back
        // to exactly 0.25.
        let cap = 1e9;
        let truth = 0.25;
        let samples: Vec<(f64, f64)> = [1e8, 5e8, 2e9]
            .iter()
            .map(|&f| (f, truth * f / cap))
            .collect();
        let p = CostParams::wifi_50mbps().calibrated(cap, &samples);
        assert!((p.alpha_scale - truth).abs() < 1e-12);
    }

    #[test]
    fn calibrated_ignores_degenerate_samples() {
        let p = CostParams::wifi_50mbps().calibrated(1e9, &[(0.0, 1.0), (-1.0, 2.0), (1.0, 0.0)]);
        assert_eq!(p.alpha_scale, 1.0);
        let q = CostParams::wifi_50mbps().calibrated(1e9, &[]);
        assert_eq!(q.alpha_scale, 1.0);
    }

    #[test]
    fn alpha_scale_scales_comp_but_not_comm() {
        let (m, c, p) = toy_setup();
        let mut fast = p;
        fast.alpha_scale = 0.5;
        let seg = m.full_segment();
        let rows = Rows::full(m.output_shape().height);
        let d = c.device(0).unwrap();
        let base = p.cost_model(&m);
        let scaled = fast.cost_model(&m);
        assert!(
            (scaled.assignment_comp_time(d, seg, rows)
                - 0.5 * base.assignment_comp_time(d, seg, rows))
            .abs()
                < 1e-15
        );
        assert_eq!(
            scaled.assignment_comm_time(seg, rows),
            base.assignment_comm_time(seg, rows)
        );
    }

    #[test]
    fn backend_alpha_scales_comp_but_not_comm() {
        let (m, c, p) = toy_setup();
        assert_eq!(p.backend_alpha, 1.0);
        // A 4× faster backend quarters compute times; transfers are
        // untouched (the wire does not care about the micro-kernel).
        let fast = p.with_backend_speedup(4.0);
        assert!((fast.backend_alpha - 0.25).abs() < 1e-15);
        let seg = m.full_segment();
        let rows = Rows::full(m.output_shape().height);
        let d = c.device(0).unwrap();
        let base = p.cost_model(&m);
        let scaled = fast.cost_model(&m);
        assert!(
            (scaled.assignment_comp_time(d, seg, rows)
                - 0.25 * base.assignment_comp_time(d, seg, rows))
            .abs()
                < 1e-15
        );
        assert!(
            (scaled.region_comp_time(
                d,
                seg,
                Region2::new(rows, Rows::full(m.output_shape().width))
            ) - 0.25
                * base.region_comp_time(
                    d,
                    seg,
                    Region2::new(rows, Rows::full(m.output_shape().width))
                ))
            .abs()
                < 1e-15
        );
        assert_eq!(
            scaled.assignment_comm_time(seg, rows),
            base.assignment_comm_time(seg, rows)
        );
    }

    #[test]
    fn interference_scales_comp_but_not_comm() {
        let (m, c, p) = toy_setup();
        assert_eq!(p.interference, 1.0);
        let shared = p.with_interference(2.0);
        let seg = m.full_segment();
        let rows = Rows::full(m.output_shape().height);
        let d = c.device(0).unwrap();
        let base = p.cost_model(&m);
        let scaled = shared.cost_model(&m);
        assert!(
            (scaled.assignment_comp_time(d, seg, rows)
                - 2.0 * base.assignment_comp_time(d, seg, rows))
            .abs()
                < 1e-15
        );
        let region = Region2::new(rows, Rows::full(m.output_shape().width));
        assert!(
            (scaled.region_comp_time(d, seg, region) - 2.0 * base.region_comp_time(d, seg, region))
                .abs()
                < 1e-15
        );
        assert_eq!(
            scaled.assignment_comm_time(seg, rows),
            base.assignment_comm_time(seg, rows)
        );
    }

    #[test]
    #[should_panic(expected = "interference factor")]
    fn interference_below_one_is_rejected() {
        let _ = CostParams::wifi_50mbps().with_interference(0.5);
    }

    #[test]
    fn backend_alpha_composes_with_alpha_scale() {
        let (m, c, p) = toy_setup();
        let mut both = p.with_backend_speedup(2.0);
        both.alpha_scale = 0.5;
        let seg = m.full_segment();
        let rows = Rows::full(m.output_shape().height);
        let d = c.device(0).unwrap();
        let base = p.cost_model(&m);
        let scaled = both.cost_model(&m);
        assert!(
            (scaled.assignment_comp_time(d, seg, rows)
                - 0.25 * base.assignment_comp_time(d, seg, rows))
            .abs()
                < 1e-15
        );
    }

    #[test]
    fn alpha_scale_moves_plan_periods_uniformly() {
        let (m, c, p) = toy_setup();
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![
                Stage::new(Segment::new(0, 2), vec![Assignment::new(0, Rows::full(h))]),
                Stage::new(Segment::new(2, 4), vec![Assignment::new(1, Rows::full(h))]),
            ],
        );
        let base = p.cost_model(&m).evaluate(&plan, &c);
        let mut half = p;
        half.alpha_scale = 0.5;
        let scaled = half.cost_model(&m).evaluate(&plan, &c);
        for (a, b) in base.stage_costs.iter().zip(&scaled.stage_costs) {
            assert!((b.comp - 0.5 * a.comp).abs() < 1e-15);
            assert_eq!(a.comm, b.comm);
        }
        assert!(scaled.period < base.period);
    }
}
