//! Cluster churn: deterministic membership-change schedules.
//!
//! The runtime's fail-stop `FailureSchedule` model scripts devices
//! that die and never return. Real edge fleets *churn*:
//! devices leave, rejoin (possibly at a different clock), join fresh,
//! or get re-provisioned mid-stream. This module generalizes the
//! fail-stop script into a [`ClusterSchedule`] of [`ChurnEvent`]s that
//! both the pipeline runtime and the discrete-event simulator consume:
//!
//! * [`ClusterSchedule`] — plain data, sorted by task index, so the
//!   same schedule replayed against the same plan and seed reproduces
//!   the same membership trajectory byte-for-byte;
//! * [`ChurnMembership`] — the re-admission state machine. Every event
//!   is checked against the per-device `Active`/`Departed` state, so an
//!   invalid script (rejoin of a live device, leave of a ghost) is a
//!   typed [`ChurnError`] instead of silent nonsense;
//! * [`ChurnEpoch`] — the executable view: the schedule sliced at each
//!   *re-admission boundary* (any `join`/`rejoin`/`recapacity` task
//!   index). Within an epoch membership only shrinks, which is exactly
//!   the fail-stop model the runtime's recovery path already handles;
//!   across a boundary the orchestrator re-plans on the new live
//!   cluster and audit-gates the swap.
//!
//! Leave events inside an epoch are re-based to *epoch-relative* task
//! indices. This is what makes a rejoined device a fresh worker: the
//! next epoch's failure script cannot match it, so no stale per-task
//! failure or backoff state leaks across the boundary.
//!
//! The script grammar (one event per line, `#` comments):
//!
//! ```text
//! leave <device>@<task>
//! rejoin <device>@<task> [<ghz>]
//! join <device>@<task> <ghz>
//! recapacity <device>@<task> <ghz>
//! ```

use std::collections::BTreeMap;

use crate::device::FLOPS_PER_CYCLE;
use crate::{Cluster, Device};

/// What happens to a device at a scheduled task index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnKind {
    /// The device fail-stops: it errors on every task of its epoch from
    /// the scheduled index on (the fail-stop model, now with a way
    /// back).
    Leave,
    /// A previously departed device returns. With `ghz` set it comes
    /// back at a different clock (capacity `ghz · 10⁹ ·
    /// FLOPS_PER_CYCLE`); `None` restores its last known capacity.
    Rejoin {
        /// Optional new clock in GHz.
        ghz: Option<f64>,
    },
    /// A device never seen before joins the cluster at the given clock.
    Join {
        /// Clock in GHz.
        ghz: f64,
    },
    /// A live device is re-provisioned to a new clock mid-stream
    /// (thermal throttling, DVFS, a hardware swap keeping the id).
    Recapacity {
        /// New clock in GHz.
        ghz: f64,
    },
}

/// One scheduled membership change: `kind` applied to `device` when the
/// stream reaches task `at_task` (submission order, 0-based).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// The device the event applies to.
    pub device: usize,
    /// First task index (submission order) the new membership holds for.
    pub at_task: usize,
    /// What changes.
    pub kind: ChurnKind,
}

impl ChurnEvent {
    /// Whether this event changes membership in a way that requires a
    /// re-plan (everything except a plain leave, which the degraded
    /// recovery path absorbs without one).
    pub fn is_boundary(&self) -> bool {
        !matches!(self.kind, ChurnKind::Leave)
    }
}

impl std::fmt::Display for ChurnEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            ChurnKind::Leave => write!(f, "leave {}@{}", self.device, self.at_task),
            ChurnKind::Rejoin { ghz: None } => {
                write!(f, "rejoin {}@{}", self.device, self.at_task)
            }
            ChurnKind::Rejoin { ghz: Some(g) } => {
                write!(f, "rejoin {}@{} {g}", self.device, self.at_task)
            }
            ChurnKind::Join { ghz } => write!(f, "join {}@{} {ghz}", self.device, self.at_task),
            ChurnKind::Recapacity { ghz } => {
                write!(f, "recapacity {}@{} {ghz}", self.device, self.at_task)
            }
        }
    }
}

/// Typed churn failures: invalid membership transitions and script
/// parse errors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ChurnError {
    /// A leave/rejoin/recapacity names a device the cluster has never
    /// contained.
    UnknownDevice {
        /// The unknown device id.
        device: usize,
        /// The offending event's task index.
        at_task: usize,
    },
    /// A leave or recapacity targets a device that has already departed.
    NotActive {
        /// The departed device id.
        device: usize,
        /// The offending event's task index.
        at_task: usize,
    },
    /// A rejoin targets a device that never left.
    AlreadyActive {
        /// The still-live device id.
        device: usize,
        /// The offending event's task index.
        at_task: usize,
    },
    /// A join reuses an id the cluster already knows (use `rejoin` for
    /// returning devices).
    DuplicateJoin {
        /// The duplicated device id.
        device: usize,
        /// The offending event's task index.
        at_task: usize,
    },
    /// The schedule leaves no live device at a re-admission boundary.
    EmptyCluster {
        /// Task index where membership became empty.
        at_task: usize,
    },
    /// A script line did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::UnknownDevice { device, at_task } => {
                write!(
                    f,
                    "churn event at task {at_task} names unknown device {device}"
                )
            }
            ChurnError::NotActive { device, at_task } => write!(
                f,
                "churn event at task {at_task} targets device {device}, which has already departed"
            ),
            ChurnError::AlreadyActive { device, at_task } => write!(
                f,
                "rejoin at task {at_task} targets device {device}, which never left"
            ),
            ChurnError::DuplicateJoin { device, at_task } => write!(
                f,
                "join at task {at_task} reuses existing device id {device} (use rejoin)"
            ),
            ChurnError::EmptyCluster { at_task } => {
                write!(f, "churn schedule leaves no live device at task {at_task}")
            }
            ChurnError::Parse { line, detail } => {
                write!(f, "churn script line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for ChurnError {}

/// A deterministic script of membership changes — the churn
/// generalization of the fail-stop failure schedule.
///
/// Schedules are plain data: events sort stably by task index, so the
/// same schedule against the same plan and seed reproduces the same
/// epoch sequence, which is what lets the churn chaos harness assert
/// bit-exact outputs across leave/rejoin cycles.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterSchedule {
    events: Vec<ChurnEvent>,
}

impl ClusterSchedule {
    /// An empty schedule (no membership changes).
    pub fn new() -> Self {
        ClusterSchedule::default()
    }

    /// Adds a leave: `device` fail-stops from task `at_task` on.
    pub fn leave(mut self, device: usize, at_task: usize) -> Self {
        self.push(ChurnEvent {
            device,
            at_task,
            kind: ChurnKind::Leave,
        });
        self
    }

    /// Adds a rejoin at the device's last known capacity.
    pub fn rejoin(mut self, device: usize, at_task: usize) -> Self {
        self.push(ChurnEvent {
            device,
            at_task,
            kind: ChurnKind::Rejoin { ghz: None },
        });
        self
    }

    /// Adds a rejoin at a new clock (GHz).
    pub fn rejoin_at(mut self, device: usize, at_task: usize, ghz: f64) -> Self {
        self.push(ChurnEvent {
            device,
            at_task,
            kind: ChurnKind::Rejoin { ghz: Some(ghz) },
        });
        self
    }

    /// Adds a join of a brand-new device at the given clock (GHz).
    pub fn join(mut self, device: usize, at_task: usize, ghz: f64) -> Self {
        self.push(ChurnEvent {
            device,
            at_task,
            kind: ChurnKind::Join { ghz },
        });
        self
    }

    /// Adds a mid-stream re-provisioning of a live device to `ghz`.
    pub fn recapacity(mut self, device: usize, at_task: usize, ghz: f64) -> Self {
        self.push(ChurnEvent {
            device,
            at_task,
            kind: ChurnKind::Recapacity { ghz },
        });
        self
    }

    /// Appends an event, keeping events stably sorted by task index
    /// (ties keep insertion order).
    pub fn push(&mut self, event: ChurnEvent) {
        self.events.push(event);
        self.events.sort_by_key(|e| e.at_task);
    }

    /// The events, sorted by task index (insertion order within a task).
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Whether the schedule changes nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Parses the churn script grammar: one event per line
    /// (`leave 1@2`, `rejoin 1@4`, `rejoin 1@4 0.8`, `join 9@3 1.0`,
    /// `recapacity 0@5 0.6`), blank lines and `#` comments ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ChurnError::Parse`] with the 1-based line number on
    /// malformed input. Membership validity is *not* checked here — it
    /// depends on the cluster, so it surfaces from
    /// [`ClusterSchedule::epochs`] (or the churn audit pass).
    pub fn parse(script: &str) -> Result<Self, ChurnError> {
        let mut schedule = ClusterSchedule::new();
        for (idx, raw) in script.lines().enumerate() {
            let line = idx + 1;
            let text = raw.split('#').next().unwrap_or("").trim();
            if text.is_empty() {
                continue;
            }
            let mut words = text.split_whitespace();
            let err = |detail: String| ChurnError::Parse { line, detail };
            let verb = words.next().ok_or_else(|| err("empty event".into()))?;
            let target = words
                .next()
                .ok_or_else(|| err(format!("`{verb}` needs a <device>@<task> target")))?;
            let (device, at_task) = parse_target(target).map_err(&err)?;
            let ghz = words
                .next()
                .map(|w| {
                    w.parse::<f64>()
                        .ok()
                        .filter(|g| g.is_finite() && *g > 0.0)
                        .ok_or_else(|| err(format!("`{w}` is not a positive GHz value")))
                })
                .transpose()?;
            if let Some(extra) = words.next() {
                return Err(err(format!("unexpected trailing token `{extra}`")));
            }
            let kind = match (verb, ghz) {
                ("leave", None) => ChurnKind::Leave,
                ("leave", Some(_)) => {
                    return Err(err("`leave` takes no GHz argument".into()));
                }
                ("rejoin", ghz) => ChurnKind::Rejoin { ghz },
                ("join", Some(ghz)) => ChurnKind::Join { ghz },
                ("join", None) => {
                    return Err(err("`join` needs a GHz argument".into()));
                }
                ("recapacity", Some(ghz)) => ChurnKind::Recapacity { ghz },
                ("recapacity", None) => {
                    return Err(err("`recapacity` needs a GHz argument".into()));
                }
                _ => {
                    return Err(err(format!(
                        "unknown event `{verb}` (expected leave/rejoin/join/recapacity)"
                    )));
                }
            };
            schedule.push(ChurnEvent {
                device,
                at_task,
                kind,
            });
        }
        Ok(schedule)
    }

    /// Slices the schedule into executable [`ChurnEpoch`]s against the
    /// initial cluster, validating every membership transition along
    /// the way.
    ///
    /// Epoch boundaries fall at every distinct task index carrying a
    /// re-admission event (`join`/`rejoin`/`recapacity`); plain leaves
    /// stay inside their epoch as epoch-relative fail-stop entries.
    /// Events at the same boundary apply admissions before leaves, so a
    /// `rejoin 1@4` + `leave 2@4` pair yields one epoch whose cluster
    /// contains device 1 and whose failure script kills device 2 at
    /// relative task 0.
    ///
    /// # Errors
    ///
    /// Any invalid transition ([`ChurnError::UnknownDevice`],
    /// [`NotActive`](ChurnError::NotActive),
    /// [`AlreadyActive`](ChurnError::AlreadyActive),
    /// [`DuplicateJoin`](ChurnError::DuplicateJoin)) or a boundary with
    /// no live device ([`ChurnError::EmptyCluster`]).
    pub fn epochs(&self, initial: &Cluster) -> Result<Vec<ChurnEpoch>, ChurnError> {
        let mut membership = ChurnMembership::new(initial);
        let mut epochs: Vec<ChurnEpoch> = Vec::new();
        let mut start = 0usize;
        let mut snapshot = initial.clone();
        let mut leaves: Vec<(usize, usize)> = Vec::new();
        let mut admitted: Vec<usize> = Vec::new();
        let mut resized: Vec<usize> = Vec::new();

        let mut i = 0;
        while i < self.events.len() {
            let at = self.events[i].at_task;
            let mut j = i;
            while j < self.events.len() && self.events[j].at_task == at {
                j += 1;
            }
            let group = &self.events[i..j];
            let boundary = group.iter().any(ChurnEvent::is_boundary);
            if boundary && at > start {
                epochs.push(ChurnEpoch {
                    start_task: start,
                    cluster: snapshot.clone(),
                    leaves: std::mem::take(&mut leaves),
                    admitted: std::mem::take(&mut admitted),
                    resized: std::mem::take(&mut resized),
                });
                start = at;
            }
            // Admissions and re-provisionings first, then leaves: a
            // device admitted and killed at the same index lives in the
            // new epoch's cluster and dies at relative task 0.
            for e in group.iter().filter(|e| e.is_boundary()) {
                membership.apply(e)?;
                match e.kind {
                    ChurnKind::Recapacity { .. } => resized.push(e.device),
                    _ => admitted.push(e.device),
                }
            }
            if boundary {
                snapshot = membership.live_cluster(at)?;
            }
            for e in group.iter().filter(|e| !e.is_boundary()) {
                membership.apply(e)?;
                leaves.push((e.device, at - start));
            }
            i = j;
        }
        epochs.push(ChurnEpoch {
            start_task: start,
            cluster: snapshot,
            leaves,
            admitted,
            resized,
        });
        Ok(epochs)
    }
}

impl std::fmt::Display for ClusterSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

fn parse_target(word: &str) -> Result<(usize, usize), String> {
    let (device, task) = word
        .split_once('@')
        .ok_or_else(|| format!("`{word}` is not <device>@<task>"))?;
    let device = device
        .parse::<usize>()
        .map_err(|_| format!("`{device}` is not a device id"))?;
    let task = task
        .parse::<usize>()
        .map_err(|_| format!("`{task}` is not a task index"))?;
    Ok((device, task))
}

/// Per-device membership state the re-admission machine tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemberState {
    Active,
    Departed,
}

/// The re-admission state machine: every known device is `Active` or
/// `Departed`, and each [`ChurnEvent`] is a checked transition
/// (`leave`: Active → Departed; `rejoin`: Departed → Active; `join`:
/// unknown → Active; `recapacity`: Active → Active at a new clock).
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnMembership {
    /// Device id → (last known hardware, state). `BTreeMap` keeps
    /// iteration deterministic by id.
    devices: BTreeMap<usize, (Device, MemberState)>,
}

impl ChurnMembership {
    /// Starts from `cluster` with every device active.
    pub fn new(cluster: &Cluster) -> Self {
        ChurnMembership {
            devices: cluster
                .devices()
                .iter()
                .map(|d| (d.id, (d.clone(), MemberState::Active)))
                .collect(),
        }
    }

    /// Applies one event, enforcing the transition rules.
    ///
    /// # Errors
    ///
    /// The typed [`ChurnError`] for any invalid transition; state is
    /// unchanged on error.
    pub fn apply(&mut self, event: &ChurnEvent) -> Result<(), ChurnError> {
        let ChurnEvent {
            device,
            at_task,
            kind,
        } = *event;
        match kind {
            ChurnKind::Leave => match self.devices.get_mut(&device) {
                None => Err(ChurnError::UnknownDevice { device, at_task }),
                Some((_, s @ MemberState::Active)) => {
                    *s = MemberState::Departed;
                    Ok(())
                }
                Some((_, MemberState::Departed)) => Err(ChurnError::NotActive { device, at_task }),
            },
            ChurnKind::Rejoin { ghz } => match self.devices.get_mut(&device) {
                None => Err(ChurnError::UnknownDevice { device, at_task }),
                Some((_, MemberState::Active)) => {
                    Err(ChurnError::AlreadyActive { device, at_task })
                }
                Some((d, s @ MemberState::Departed)) => {
                    if let Some(ghz) = ghz {
                        reclock(d, ghz);
                    }
                    *s = MemberState::Active;
                    Ok(())
                }
            },
            ChurnKind::Join { ghz } => {
                if self.devices.contains_key(&device) {
                    return Err(ChurnError::DuplicateJoin { device, at_task });
                }
                self.devices.insert(
                    device,
                    (Device::from_frequency(device, ghz), MemberState::Active),
                );
                Ok(())
            }
            ChurnKind::Recapacity { ghz } => match self.devices.get_mut(&device) {
                None => Err(ChurnError::UnknownDevice { device, at_task }),
                Some((_, MemberState::Departed)) => Err(ChurnError::NotActive { device, at_task }),
                Some((d, MemberState::Active)) => {
                    reclock(d, ghz);
                    Ok(())
                }
            },
        }
    }

    /// Whether `device` is currently active.
    pub fn is_active(&self, device: usize) -> bool {
        matches!(self.devices.get(&device), Some((_, MemberState::Active)))
    }

    /// Number of active devices.
    pub fn active_count(&self) -> usize {
        self.devices
            .values()
            .filter(|(_, s)| *s == MemberState::Active)
            .count()
    }

    /// The live cluster (active devices in ascending id order).
    ///
    /// # Errors
    ///
    /// [`ChurnError::EmptyCluster`] when nothing is active; `at_task`
    /// labels the error with the boundary being materialized.
    pub fn live_cluster(&self, at_task: usize) -> Result<Cluster, ChurnError> {
        let live: Vec<Device> = self
            .devices
            .values()
            .filter(|(_, s)| *s == MemberState::Active)
            .map(|(d, _)| d.clone())
            .collect();
        if live.is_empty() {
            Err(ChurnError::EmptyCluster { at_task })
        } else {
            Ok(Cluster::new(live))
        }
    }
}

fn reclock(d: &mut Device, ghz: f64) {
    assert!(ghz.is_finite() && ghz > 0.0, "GHz must be positive");
    d.capacity = ghz * 1e9 * FLOPS_PER_CYCLE;
    d.name = format!("pi-{} @{ghz}GHz", d.id);
}

/// One executable slice of a churn schedule: the task range starting at
/// [`start_task`](ChurnEpoch::start_task), the live cluster at its
/// start, and the fail-stop script (epoch-relative task indices) to
/// apply within it.
///
/// Epoch-relative leaves are the fresh-worker guarantee: a device that
/// left in epoch `n` and rejoined at epoch `n + 1` appears in the new
/// epoch's cluster with **no** surviving failure entry, so the gather/
/// retry path treats it exactly like a device that never failed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnEpoch {
    /// Global task index (submission order) the epoch starts at.
    pub start_task: usize,
    /// Live membership at the epoch's start.
    pub cluster: Cluster,
    /// Fail-stop entries within the epoch: `(device, from_task)` with
    /// `from_task` relative to [`start_task`](ChurnEpoch::start_task).
    pub leaves: Vec<(usize, usize)>,
    /// Devices (re-)admitted at this epoch's boundary.
    pub admitted: Vec<usize>,
    /// Devices re-provisioned to a new capacity at this boundary.
    pub resized: Vec<usize>,
}

impl ChurnEpoch {
    /// Whether this epoch begins with a membership gain or change that
    /// requires an audit-gated re-plan.
    pub fn needs_replan(&self) -> bool {
        !self.admitted.is_empty() || !self.resized.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pi4() -> Cluster {
        Cluster::pi_cluster(4, 1.0)
    }

    #[test]
    fn empty_schedule_is_one_epoch() {
        let epochs = ClusterSchedule::new().epochs(&pi4()).unwrap();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].start_task, 0);
        assert_eq!(epochs[0].cluster, pi4());
        assert!(epochs[0].leaves.is_empty());
        assert!(!epochs[0].needs_replan());
    }

    #[test]
    fn leave_only_schedule_stays_one_epoch() {
        let s = ClusterSchedule::new().leave(1, 2).leave(3, 5);
        let epochs = s.epochs(&pi4()).unwrap();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].leaves, vec![(1, 2), (3, 5)]);
    }

    #[test]
    fn leave_then_rejoin_splits_epochs_and_rebases_leaves() {
        let s = ClusterSchedule::new().leave(1, 1).rejoin(1, 3).leave(2, 4);
        let epochs = s.epochs(&pi4()).unwrap();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[0].start_task, 0);
        assert_eq!(epochs[0].leaves, vec![(1, 1)]);
        assert_eq!(epochs[1].start_task, 3);
        assert_eq!(epochs[1].admitted, vec![1]);
        // The rejoined device is back in the live cluster, and the
        // later leave is rebased to the epoch-relative index 4 - 3 = 1.
        assert!(epochs[1].cluster.device(1).is_some());
        assert_eq!(epochs[1].leaves, vec![(2, 1)]);
        assert!(epochs[1].needs_replan());
    }

    #[test]
    fn rejoined_device_carries_no_stale_failure_entry() {
        // The fresh-worker regression: after a flap, the final epoch's
        // failure script must not mention the rejoined device at all.
        let s = ClusterSchedule::new()
            .leave(1, 1)
            .rejoin(1, 2)
            .leave(1, 3)
            .rejoin(1, 4);
        let epochs = s.epochs(&pi4()).unwrap();
        assert_eq!(epochs.len(), 3);
        let last = epochs.last().unwrap();
        assert_eq!(last.start_task, 4);
        assert!(last.cluster.device(1).is_some());
        assert!(
            last.leaves.iter().all(|(d, _)| *d != 1),
            "stale failure entry leaked across the rejoin: {:?}",
            last.leaves
        );
    }

    #[test]
    fn rejoin_with_new_clock_changes_capacity() {
        let s = ClusterSchedule::new().leave(0, 1).rejoin_at(0, 2, 0.5);
        let epochs = s.epochs(&pi4()).unwrap();
        let d = epochs[1].cluster.device(0).unwrap();
        assert_eq!(d.capacity, 0.5e9 * FLOPS_PER_CYCLE);
    }

    #[test]
    fn recapacity_resizes_in_place() {
        let s = ClusterSchedule::new().recapacity(2, 3, 0.6);
        let epochs = s.epochs(&pi4()).unwrap();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[1].resized, vec![2]);
        assert!(epochs[1].admitted.is_empty());
        assert_eq!(
            epochs[1].cluster.device(2).unwrap().capacity,
            0.6e9 * FLOPS_PER_CYCLE
        );
        // Epoch 0 still sees the original hardware.
        assert_eq!(
            epochs[0].cluster.device(2).unwrap().capacity,
            1.0e9 * FLOPS_PER_CYCLE
        );
    }

    #[test]
    fn join_adds_a_new_device() {
        let s = ClusterSchedule::new().join(9, 2, 1.2);
        let epochs = s.epochs(&pi4()).unwrap();
        assert_eq!(epochs[1].cluster.len(), 5);
        assert_eq!(
            epochs[1].cluster.device(9).unwrap().capacity,
            1.2e9 * FLOPS_PER_CYCLE
        );
    }

    #[test]
    fn invalid_transitions_are_typed() {
        let c = pi4();
        assert_eq!(
            ClusterSchedule::new().leave(7, 1).epochs(&c),
            Err(ChurnError::UnknownDevice {
                device: 7,
                at_task: 1
            })
        );
        assert_eq!(
            ClusterSchedule::new().rejoin(1, 1).epochs(&c),
            Err(ChurnError::AlreadyActive {
                device: 1,
                at_task: 1
            })
        );
        assert_eq!(
            ClusterSchedule::new().join(1, 1, 1.0).epochs(&c),
            Err(ChurnError::DuplicateJoin {
                device: 1,
                at_task: 1
            })
        );
        assert_eq!(
            ClusterSchedule::new().leave(1, 1).leave(1, 2).epochs(&c),
            Err(ChurnError::NotActive {
                device: 1,
                at_task: 2
            })
        );
        assert_eq!(
            ClusterSchedule::new()
                .leave(0, 1)
                .recapacity(0, 2, 1.0)
                .epochs(&c),
            Err(ChurnError::NotActive {
                device: 0,
                at_task: 2
            })
        );
    }

    #[test]
    fn membership_reports_empty_cluster() {
        // Every epoch boundary admits at least one device, so epochs()
        // can never see an empty live set — but the state machine's
        // direct consumers (the churn audit pass) can.
        let c = Cluster::pi_cluster(1, 1.0);
        let mut m = ChurnMembership::new(&c);
        m.apply(&ChurnEvent {
            device: 0,
            at_task: 1,
            kind: ChurnKind::Leave,
        })
        .unwrap();
        assert_eq!(m.active_count(), 0);
        assert!(!m.is_active(0));
        assert_eq!(
            m.live_cluster(1),
            Err(ChurnError::EmptyCluster { at_task: 1 })
        );
        // A cross-epoch flap drains and refills the single device.
        let s = ClusterSchedule::new().leave(0, 1).rejoin(0, 3);
        let epochs = s.epochs(&c).unwrap();
        assert_eq!(epochs.len(), 2);
        assert_eq!(epochs[1].cluster.len(), 1);
    }

    #[test]
    fn script_round_trips() {
        let script = "\
# a flapping device
leave 1@1
rejoin 1@2
leave 1@3   # second drop
rejoin 1@4 0.8
join 9@5 1.2
recapacity 0@6 0.6
";
        let s = ClusterSchedule::parse(script).unwrap();
        assert_eq!(s.len(), 6);
        let printed = s.to_string();
        let reparsed = ClusterSchedule::parse(&printed).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn script_errors_carry_line_numbers() {
        let cases = [
            ("boot 1@2", 1),
            ("leave 1", 1),
            ("leave x@2", 1),
            ("leave 1@y", 1),
            ("join 9@2", 1),
            ("recapacity 0@2", 1),
            ("leave 1@2 0.5", 1),
            ("rejoin 1@2 -3", 1),
            ("leave 1@2\njoin 9@3 1.0 extra", 2),
        ];
        for (script, want_line) in cases {
            match ClusterSchedule::parse(script) {
                Err(ChurnError::Parse { line, .. }) => {
                    assert_eq!(line, want_line, "script {script:?}")
                }
                other => panic!("script {script:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn events_sort_stably_by_task() {
        let s = ClusterSchedule::new().leave(3, 5).leave(1, 2).leave(2, 5);
        let order: Vec<(usize, usize)> = s.events().iter().map(|e| (e.at_task, e.device)).collect();
        assert_eq!(order, vec![(2, 1), (5, 3), (5, 2)]);
    }

    #[test]
    fn display_is_the_script_grammar() {
        let s = ClusterSchedule::new().leave(1, 2).rejoin_at(1, 4, 0.8);
        assert_eq!(s.to_string(), "leave 1@2\nrejoin 1@4 0.8\n");
    }
}
