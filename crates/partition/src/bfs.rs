use std::collections::HashMap;
use std::time::{Duration, Instant};

use pico_model::{Model, Rows, Segment};
use pico_telemetry::names;

use crate::{
    balance_rows, Assignment, Cluster, CostParams, ExecutionMode, Plan, PlanError, PlanRequest,
    Planner, Scheme, Stage,
};

/// Exhaustive search for the optimal pipeline — the paper's BFS baseline
/// (Sec. V-C). It enumerates every contiguous layer partition and every
/// assignment of devices to stages (devices may idle), evaluating each
/// candidate with the full cost model.
///
/// The search space explodes combinatorially with layers and devices
/// (Table II: minutes at 10 layers / 6 devices, over an hour beyond), so
/// an optional wall-clock budget truncates the search; the outcome then
/// carries the best plan found and a `timed_out` flag.
///
/// Symmetry between devices of equal capacity is broken (equal devices
/// are interchangeable), and per-stage costs are memoized on
/// (segment, capacity multiset).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BfsOptimal {
    budget: Option<Duration>,
}

/// Result of a [`BfsOptimal::search`].
#[derive(Debug, Clone)]
pub struct BfsOutcome {
    /// The best plan found.
    pub plan: Plan,
    /// Predicted period of the best plan.
    pub period: f64,
    /// Predicted latency of the best plan.
    pub latency: f64,
    /// Candidate stage sets evaluated.
    pub evaluated: u64,
    /// Whether the wall-clock budget truncated the search.
    pub timed_out: bool,
    /// Wall-clock time spent searching.
    pub elapsed: Duration,
}

impl BfsOptimal {
    /// Creates an unbudgeted (complete) search.
    pub fn new() -> Self {
        BfsOptimal { budget: None }
    }

    /// Creates a search truncated after `budget` of wall-clock time.
    pub fn with_budget(budget: Duration) -> Self {
        BfsOptimal {
            budget: Some(budget),
        }
    }

    /// Runs the search, returning the best plan and search statistics.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::LatencyInfeasible`] when `params.t_lim`
    /// rejects every explored candidate, or
    /// [`PlanError::UnsupportedModel`] when the budget expires before
    /// any feasible candidate was evaluated.
    pub fn search(
        &self,
        model: &Model,
        cluster: &Cluster,
        params: &CostParams,
    ) -> Result<BfsOutcome, PlanError> {
        let start = pico_telemetry::clock::wall_now();
        let mut ctx = SearchCtx {
            model,
            cluster,
            params,
            // Device ids strongest-first; equal-capacity runs are
            // symmetry-broken during assignment.
            ids: cluster.ids_by_capacity_desc(),
            stage_cache: HashMap::new(),
            best: None,
            best_infeasible_latency: f64::INFINITY,
            evaluated: 0,
            deadline: self.budget.map(|b| start + b),
            timed_out: false,
        };

        let l = model.len();
        let max_stages = l.min(cluster.len());
        let mut cuts = Vec::new();
        ctx.enumerate_compositions(0, l, max_stages, &mut cuts);

        let elapsed = start.elapsed();
        match ctx.best {
            Some((plan, period, latency)) => Ok(BfsOutcome {
                plan,
                period,
                latency,
                evaluated: ctx.evaluated,
                timed_out: ctx.timed_out,
                elapsed,
            }),
            None if ctx.timed_out => Err(PlanError::UnsupportedModel {
                detail: format!(
                    "BFS budget expired after {elapsed:?} before any candidate was evaluated"
                ),
            }),
            None => Err(PlanError::LatencyInfeasible {
                limit: params.t_lim.unwrap_or(f64::INFINITY),
                best: ctx.best_infeasible_latency,
            }),
        }
    }
}

impl Planner for BfsOptimal {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn plan(&self, req: &PlanRequest<'_>) -> Result<Plan, PlanError> {
        let _plan_span = req.recorder().span(names::PLAN);
        let model = req.model();
        let cluster = req.cluster();
        let params = req.params();
        self.search(model, cluster, params)
            .and_then(|o| req.admit(o.plan))
    }
}

struct SearchCtx<'a> {
    model: &'a Model,
    cluster: &'a Cluster,
    params: &'a CostParams,
    ids: Vec<usize>,
    /// (seg.start, seg.end, sorted device-id multiset) -> stage cost.
    stage_cache: HashMap<(usize, usize, Vec<usize>), f64>,
    best: Option<(Plan, f64, f64)>,
    best_infeasible_latency: f64,
    evaluated: u64,
    deadline: Option<Instant>,
    timed_out: bool,
}

impl SearchCtx<'_> {
    fn out_of_time(&mut self) -> bool {
        if self.timed_out {
            return true;
        }
        if let Some(d) = self.deadline {
            if self.evaluated.is_multiple_of(512) && pico_telemetry::clock::wall_now() > d {
                self.timed_out = true;
            }
        }
        self.timed_out
    }

    /// Enumerates contiguous segmentations of units `[from, l)` into at
    /// most `stages_left` segments, then assigns devices for each.
    fn enumerate_compositions(
        &mut self,
        from: usize,
        l: usize,
        stages_left: usize,
        cuts: &mut Vec<Segment>,
    ) {
        if self.out_of_time() {
            return;
        }
        if from == l {
            let segments = cuts.clone();
            let mut assignment = vec![usize::MAX; self.ids.len()];
            self.assign_devices(&segments, 0, &mut assignment);
            return;
        }
        if stages_left == 0 {
            return;
        }
        for end in (from + 1)..=l {
            cuts.push(Segment::new(from, end));
            self.enumerate_compositions(end, l, stages_left - 1, cuts);
            cuts.pop();
        }
    }

    /// Assigns device `i` (strongest-first order) to one of the stages
    /// or to idle, with symmetry breaking between equal-capacity
    /// devices: within a run of equal devices, stage choices must be
    /// non-decreasing (idle counts as the last choice).
    fn assign_devices(&mut self, segments: &[Segment], i: usize, assignment: &mut Vec<usize>) {
        if self.out_of_time() {
            return;
        }
        let s = segments.len();
        if i == self.ids.len() {
            self.evaluate(segments, assignment);
            return;
        }
        let min_choice = if i > 0 && self.capacity(i) == self.capacity(i - 1) {
            assignment[i - 1]
        } else {
            0
        };
        // Choices: stage index 0..s, or s = idle.
        for choice in min_choice..=s {
            assignment[i] = choice;
            // Feasibility: remaining devices must be able to fill all
            // still-empty stages.
            let empty_stages = (0..s)
                .filter(|st| !assignment[..=i].iter().any(|a| a == st))
                .count();
            if empty_stages < self.ids.len() - i {
                self.assign_devices(segments, i + 1, assignment);
            }
        }
        assignment[i] = usize::MAX;
    }

    fn capacity(&self, i: usize) -> f64 {
        self.cluster
            .device(self.ids[i])
            .expect("id from this cluster")
            .capacity
    }

    fn evaluate(&mut self, segments: &[Segment], assignment: &[usize]) {
        self.evaluated += 1;
        let s = segments.len();
        let mut period: f64 = 0.0;
        let mut latency = 0.0;
        let mut stages = Vec::with_capacity(s);
        for (st, seg) in segments.iter().enumerate() {
            let members: Vec<usize> = (0..self.ids.len())
                .filter(|i| assignment[*i] == st)
                .map(|i| self.ids[i])
                .collect();
            if members.is_empty() {
                return; // infeasible: every stage needs a device
            }
            let cost = self.stage_cost(*seg, &members);
            period = period.max(cost);
            latency += cost;
            stages.push(self.build_stage(*seg, &members));
        }
        if let Some(lim) = self.params.t_lim {
            if latency > lim {
                self.best_infeasible_latency = self.best_infeasible_latency.min(latency);
                return;
            }
        }
        let better = match &self.best {
            None => true,
            Some((_, p, t)) => period < *p || (period == *p && latency < *t),
        };
        if better {
            let plan = Plan::new(Scheme::BfsOptimal, ExecutionMode::Pipelined, stages);
            self.best = Some((plan, period, latency));
        }
    }

    fn stage_cost(&mut self, seg: Segment, members: &[usize]) -> f64 {
        let mut key_ids = members.to_vec();
        key_ids.sort_unstable();
        let key = (seg.start, seg.end, key_ids);
        if let Some(v) = self.stage_cache.get(&key) {
            return *v;
        }
        let stage = self.build_stage(seg, members);
        let v = self
            .params
            .cost_model(self.model)
            .stage_cost(&stage, self.cluster)
            .total();
        self.stage_cache.insert(key, v);
        v
    }

    fn build_stage(&self, seg: Segment, members: &[usize]) -> Stage {
        let h = self.model.unit_output_shape(seg.end - 1).height;
        let devices: Vec<&crate::Device> = members
            .iter()
            .map(|id| self.cluster.device(*id).expect("id from this cluster"))
            .collect();
        // Same divide-and-conquer share balancing PICO uses, so BFS is a
        // true exhaustive upper bound over the heuristic.
        let shares = balance_rows(self.model, seg, Rows::full(h), &devices);
        Stage::new(
            seg,
            members
                .iter()
                .zip(shares)
                .map(|(id, r)| Assignment::new(*id, r))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PicoPlanner;
    use pico_model::zoo;

    #[test]
    fn bfs_finds_valid_plan() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(3, 1.0);
        let params = CostParams::wifi_50mbps();
        let out = BfsOptimal::new().search(&m, &c, &params).unwrap();
        let diags = crate::diag::structural_diagnostics(&out.plan, &m, &c);
        assert!(diags.is_empty(), "{diags:?}");
        assert!(!out.timed_out);
        assert!(out.evaluated > 0);
    }

    #[test]
    fn bfs_period_never_worse_than_pico() {
        // BFS is exhaustive over a superset of PICO's candidates with
        // weighted shares, so its period lower-bounds the heuristic's on
        // small instances (Fig. 13's premise).
        let params = CostParams::wifi_50mbps();
        for (layers, devices) in [(4, 3), (6, 4)] {
            let m = zoo::toy(layers);
            let c = Cluster::paper_heterogeneous_6();
            let c = Cluster::new(c.devices()[..devices].to_vec());
            let cm = params.cost_model(&m);
            let bfs = BfsOptimal::new().search(&m, &c, &params).unwrap();
            let pico = PicoPlanner
                .plan(&PlanRequest::new(&m, &c, &params))
                .unwrap();
            let pico_period = cm.evaluate(&pico, &c).period;
            assert!(
                bfs.period <= pico_period * 1.0001,
                "({layers},{devices}): bfs {} pico {}",
                bfs.period,
                pico_period
            );
        }
    }

    #[test]
    fn budget_truncates_search() {
        let m = zoo::toy(10);
        let c = Cluster::pi_cluster(6, 1.0);
        let params = CostParams::wifi_50mbps();
        let out = BfsOptimal::with_budget(Duration::from_millis(50))
            .search(&m, &c, &params)
            .unwrap();
        // Either it finished fast or it was truncated; both must yield a
        // valid plan.
        out.plan.validate(&m, &c).unwrap();
        assert!(out.elapsed < Duration::from_secs(5));
    }

    #[test]
    fn t_lim_infeasible_reports_best() {
        let m = zoo::toy(3);
        let c = Cluster::pi_cluster(2, 1.0);
        let params = CostParams::wifi_50mbps().with_t_lim(1e-12);
        match BfsOptimal::new().search(&m, &c, &params) {
            Err(PlanError::LatencyInfeasible { best, .. }) => assert!(best.is_finite()),
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn symmetry_breaking_reduces_candidates() {
        let m = zoo::toy(3);
        let params = CostParams::wifi_50mbps();
        let homo = Cluster::pi_cluster(4, 1.0);
        let hetero = Cluster::new(vec![
            crate::Device::from_frequency(0, 1.2),
            crate::Device::from_frequency(1, 1.0),
            crate::Device::from_frequency(2, 0.8),
            crate::Device::from_frequency(3, 0.6),
        ]);
        let n_homo = BfsOptimal::new()
            .search(&m, &homo, &params)
            .unwrap()
            .evaluated;
        let n_hetero = BfsOptimal::new()
            .search(&m, &hetero, &params)
            .unwrap()
            .evaluated;
        assert!(n_homo < n_hetero, "homo {n_homo} hetero {n_hetero}");
    }

    #[test]
    fn evaluated_grows_with_problem_size() {
        // The Table II story: BFS cost explodes with layers/devices.
        let params = CostParams::wifi_50mbps();
        let c4 = Cluster::pi_cluster(4, 1.0);
        let small = BfsOptimal::new()
            .search(&zoo::toy(4), &c4, &params)
            .unwrap();
        let large = BfsOptimal::new()
            .search(&zoo::toy(8), &c4, &params)
            .unwrap();
        assert!(large.evaluated > small.evaluated * 4);
    }
}
