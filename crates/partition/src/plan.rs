use pico_model::{Model, Region2, Rows, Segment};
use serde::{Deserialize, Serialize};

use crate::{Cluster, PlanError};

/// One device's share of a stage: the region of the stage's *final
/// output* feature map it must produce (the paper's `F_j^k`).
///
/// PICO's plans are row strips (`cols = None`, meaning the full width);
/// the DeepThings-style grid extension restricts columns too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Device id (within the plan's cluster).
    pub device: usize,
    /// Output rows the device produces.
    pub rows: Rows,
    /// Output columns the device produces (`None` = the full width, the
    /// paper's strip partitioning).
    pub cols: Option<Rows>,
}

impl Assignment {
    /// Creates a full-width (strip) assignment.
    pub fn new(device: usize, rows: Rows) -> Self {
        Assignment {
            device,
            rows,
            cols: None,
        }
    }

    /// Creates a rectangular (grid-tile) assignment.
    pub fn tile(device: usize, region: Region2) -> Self {
        Assignment {
            device,
            rows: region.rows,
            cols: Some(region.cols),
        }
    }

    /// Whether the assignment covers no output.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() || self.cols.is_some_and(|c| c.is_empty())
    }

    /// The output region for a map of the given width.
    pub fn region(&self, width: usize) -> Region2 {
        Region2::new(self.rows, self.cols.unwrap_or(Rows::full(width)))
    }
}

/// One pipeline stage `S_{i->j} = (D_{i->j}, F_j)`: a contiguous model
/// segment plus the per-device output partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// The model units this stage executes.
    pub segment: Segment,
    /// Per-device output row shares, in row order.
    pub assignments: Vec<Assignment>,
}

impl Stage {
    /// Creates a stage.
    pub fn new(segment: Segment, assignments: Vec<Assignment>) -> Self {
        Stage {
            segment,
            assignments,
        }
    }

    /// Device ids participating in this stage (with non-empty shares).
    pub fn device_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.assignments
            .iter()
            .filter(|a| !a.is_empty())
            .map(|a| a.device)
    }

    /// Whether any assignment restricts columns (a grid stage).
    pub fn is_grid(&self) -> bool {
        self.assignments.iter().any(|a| a.cols.is_some())
    }

    /// Number of devices with non-empty shares.
    pub fn worker_count(&self) -> usize {
        self.device_ids().count()
    }
}

/// Which parallelization strategy produced a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Layer-wise (MoDNN).
    LayerWise,
    /// Early-fused-layer (DeepThings).
    EarlyFused,
    /// Optimal-fused-layer (AOFL).
    OptimalFused,
    /// PICO pipeline (this paper).
    Pico,
    /// Exhaustive optimal pipeline (BFS baseline).
    BfsOptimal,
    /// Grid-partitioned early fusion (DeepThings' actual 2-D scheme,
    /// implemented here as an extension).
    GridFused,
    /// Interleaved operator partitioning (arXiv 2409.07693): per-unit
    /// stages alternating the split axis between rows and columns.
    Interleaved,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scheme::LayerWise => "LW",
            Scheme::EarlyFused => "EFL",
            Scheme::OptimalFused => "OFL",
            Scheme::Pico => "PICO",
            Scheme::BfsOptimal => "BFS",
            Scheme::GridFused => "GRID",
            Scheme::Interleaved => "ILV",
        };
        f.write_str(s)
    }
}

/// How a plan's stages execute over a task stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionMode {
    /// Stages run concurrently on disjoint device subsets; a new task
    /// enters as soon as the first stage frees up. Period = max stage
    /// cost (Eq. 10); the paper's PICO/BFS plans.
    Pipelined,
    /// Stages run one after another on (possibly) the same devices; the
    /// whole cluster serves one task at a time, so period = latency
    /// ("for those one-stage schemes p is equal to t"): LW/EFL/OFL.
    Sequential,
}

/// A complete parallelization strategy: the stage set `S` of Eq. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// The strategy that produced this plan.
    pub scheme: Scheme,
    /// How stages execute.
    pub mode: ExecutionMode,
    /// The stages, in model order.
    pub stages: Vec<Stage>,
}

impl Plan {
    /// Creates a plan.
    pub fn new(scheme: Scheme, mode: ExecutionMode, stages: Vec<Stage>) -> Self {
        Plan {
            scheme,
            mode,
            stages,
        }
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Ids of all devices that do work somewhere in the plan
    /// (deduplicated, ascending).
    pub fn used_devices(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .stages
            .iter()
            .flat_map(|s| s.device_ids().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Validates the plan against a model and cluster:
    ///
    /// * stages cover the model's units contiguously, in order, exactly;
    /// * every stage has at least one non-empty assignment;
    /// * every assignment's device exists in the cluster;
    /// * within a stage, shares are disjoint and cover the stage's
    ///   output rows exactly;
    /// * in [`ExecutionMode::Pipelined`] plans, no device serves two
    ///   stages (stages must be able to run concurrently).
    ///
    /// # Errors
    ///
    /// Returns the first [`PlanError`] found. This is a thin wrapper
    /// over [`crate::diag::structural_diagnostics`] — the same passes,
    /// run to completion there, truncated to the first finding here —
    /// so the boolean validator and the diagnostics engine can never
    /// disagree.
    pub fn validate(&self, model: &Model, cluster: &Cluster) -> Result<(), PlanError> {
        match crate::diag::structural_findings(self, model, cluster)
            .into_iter()
            .next()
        {
            Some(f) => Err(f.error),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;
    use pico_model::{rows_split_even, zoo};

    fn simple_plan(model: &Model, cluster: &Cluster) -> Plan {
        let h = model.output_shape().height;
        let shares = rows_split_even(Rows::full(h), cluster.len());
        let assignments = cluster
            .devices()
            .iter()
            .zip(shares)
            .map(|(d, r)| Assignment::new(d.id, r))
            .collect();
        Plan::new(
            Scheme::EarlyFused,
            ExecutionMode::Sequential,
            vec![Stage::new(model.full_segment(), assignments)],
        )
    }

    #[test]
    fn valid_single_stage_plan() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(4, 1.0);
        assert!(simple_plan(&m, &c).validate(&m, &c).is_ok());
    }

    #[test]
    fn rejects_gap_in_stages() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![
                Stage::new(Segment::new(0, 2), vec![Assignment::new(0, Rows::full(h))]),
                Stage::new(Segment::new(3, 4), vec![Assignment::new(1, Rows::full(h))]),
            ],
        );
        assert!(matches!(
            plan.validate(&m, &c),
            Err(PlanError::NonContiguousStages { .. })
        ));
    }

    #[test]
    fn rejects_incomplete_coverage() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(1, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![Stage::new(
                Segment::new(0, 2),
                vec![Assignment::new(0, Rows::full(h))],
            )],
        );
        assert!(matches!(
            plan.validate(&m, &c),
            Err(PlanError::IncompleteCoverage { .. })
        ));
    }

    #[test]
    fn rejects_device_reuse_in_pipeline() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![
                Stage::new(Segment::new(0, 2), vec![Assignment::new(0, Rows::full(h))]),
                Stage::new(Segment::new(2, 4), vec![Assignment::new(0, Rows::full(h))]),
            ],
        );
        assert!(matches!(
            plan.validate(&m, &c),
            Err(PlanError::DeviceReuse { device: 0, .. })
        ));
    }

    #[test]
    fn allows_device_reuse_in_sequential() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(1, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::OptimalFused,
            ExecutionMode::Sequential,
            vec![
                Stage::new(Segment::new(0, 2), vec![Assignment::new(0, Rows::full(h))]),
                Stage::new(Segment::new(2, 4), vec![Assignment::new(0, Rows::full(h))]),
            ],
        );
        assert!(plan.validate(&m, &c).is_ok());
    }

    #[test]
    fn rejects_partial_row_cover() {
        let m = zoo::toy(2);
        let c = Cluster::pi_cluster(2, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![Stage::new(
                m.full_segment(),
                vec![
                    Assignment::new(0, Rows::new(0, h / 2)),
                    Assignment::new(1, Rows::new(h / 2, h - 1)),
                ],
            )],
        );
        assert!(matches!(
            plan.validate(&m, &c),
            Err(PlanError::BadRowCover { .. })
        ));
    }

    #[test]
    fn rejects_unknown_device() {
        let m = zoo::toy(2);
        let c = Cluster::pi_cluster(1, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![Stage::new(
                m.full_segment(),
                vec![Assignment::new(42, Rows::full(h))],
            )],
        );
        assert!(matches!(
            plan.validate(&m, &c),
            Err(PlanError::UnknownDevice { device: 42 })
        ));
    }

    #[test]
    fn used_devices_deduplicates() {
        let m = zoo::toy(4);
        let _c = Cluster::new(vec![
            Device::from_frequency(7, 1.0),
            Device::from_frequency(3, 1.0),
        ]);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::OptimalFused,
            ExecutionMode::Sequential,
            vec![
                Stage::new(Segment::new(0, 2), vec![Assignment::new(7, Rows::full(h))]),
                Stage::new(Segment::new(2, 4), vec![Assignment::new(7, Rows::full(h))]),
            ],
        );
        assert_eq!(plan.used_devices(), vec![7]);
    }

    #[test]
    fn empty_assignments_are_skipped_in_cover() {
        let m = zoo::toy(2);
        let c = Cluster::pi_cluster(3, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![Stage::new(
                m.full_segment(),
                vec![
                    Assignment::new(0, Rows::new(0, h)),
                    Assignment::new(1, Rows::empty()),
                ],
            )],
        );
        assert!(plan.validate(&m, &c).is_ok());
    }
}
