//! Symbolic region and memory accessors over the plan IR — the inputs
//! to `pico-audit`'s deep verification passes (DESIGN.md §14).
//!
//! The structural passes in [`diag`](crate::diag) check plan *shape*
//! (cover, disjointness, contiguity); the deep passes reason about the
//! exact [`Region2`]s each worker materializes. This module derives
//! those symbolically from the model's receptive-field arithmetic:
//!
//! * [`stage_regions`] — for every (stage, worker), the output region
//!   the worker owns and the input region (halo included) it must
//!   fetch from the upstream stage;
//! * [`certified_plan_memory`] — a per-device resident *bound* that
//!   extends [`memory::plan_memory`] with the im2col scratch peak, so
//!   an over-budget finding is a certificate, not an estimate;
//! * [`interior_cuts`] — the unit indices at which a pipelined plan
//!   hands feature maps between stages, the handoff points a warm swap
//!   must agree on.

use pico_model::{LayerKind, Model, Region2, Segment, Unit, BYTES_PER_ELEMENT};

use crate::{memory, ExecutionMode, Plan};

/// One worker's symbolic footprint within a stage: the exact output
/// region it owns and the input region (halo included) it must fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerRegion {
    /// Device id of the worker.
    pub device: usize,
    /// Output region the worker produces (rows × cols of the stage's
    /// final unit output).
    pub output: Region2,
    /// Input region the worker reads, back-propagated through the
    /// stage's segment (Eq. 3), clamped to the stage input rectangle.
    pub input: Region2,
}

/// Symbolic geometry of one stage: its input/output rectangles and
/// every worker's regions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRegions {
    /// Stage index within the plan.
    pub stage: usize,
    /// Height of the stage's output feature map.
    pub out_height: usize,
    /// Width of the stage's output feature map.
    pub out_width: usize,
    /// Height of the stage's input feature map.
    pub in_height: usize,
    /// Width of the stage's input feature map.
    pub in_width: usize,
    /// Per-worker regions, in assignment order, empty shares skipped.
    pub workers: Vec<WorkerRegion>,
}

impl StageRegions {
    /// The stage's full output rectangle.
    pub fn output_rect(&self) -> Region2 {
        Region2::full(self.out_height, self.out_width)
    }

    /// The stage's full input rectangle.
    pub fn input_rect(&self) -> Region2 {
        Region2::full(self.in_height, self.in_width)
    }
}

/// Derives every stage's symbolic regions for a plan whose segments are
/// in bounds (`stage.segment.end <= model.len()`); out-of-range stages
/// are skipped — the structural PA009 pass owns those.
pub fn stage_regions(model: &Model, plan: &Plan) -> Vec<StageRegions> {
    let mut out = Vec::with_capacity(plan.stage_count());
    for (idx, stage) in plan.stages.iter().enumerate() {
        let seg = stage.segment;
        if seg.end > model.len() {
            continue;
        }
        let out_shape = model.unit_output_shape(seg.end - 1);
        let in_shape = model.unit_input_shape(seg.start);
        let workers = stage
            .assignments
            .iter()
            .filter(|a| !a.is_empty())
            .map(|a| {
                let output = a.region(out_shape.width);
                let input = model.segment_input_region(seg, output);
                WorkerRegion {
                    device: a.device,
                    output,
                    input,
                }
            })
            .collect();
        out.push(StageRegions {
            stage: idx,
            out_height: out_shape.height,
            out_width: out_shape.width,
            in_height: in_shape.height,
            in_width: in_shape.width,
            workers,
        });
    }
    out
}

/// The unit indices at which a pipelined plan hands feature maps
/// between stages (interior stage boundaries, model endpoints
/// excluded). Sequential plans hand off nothing mid-task — each task
/// runs the whole model before the next starts — so their cut set is
/// empty, making a one-stage fused plan switch-compatible with any
/// pipeline (APICO's canonical pair).
pub fn interior_cuts(plan: &Plan) -> Vec<usize> {
    if plan.mode == ExecutionMode::Sequential {
        return Vec::new();
    }
    plan.stages
        .iter()
        .skip(1)
        .map(|s| s.segment.start)
        .collect()
}

/// A certified per-device resident-memory bound: everything
/// [`memory::DeviceMemory`] counts plus the im2col scratch peak of the
/// device's worst convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifiedMemory {
    /// Device id.
    pub device: usize,
    /// Bytes of model parameters the device holds.
    pub weights_bytes: usize,
    /// Peak bytes of feature-map tiles resident at once.
    pub peak_activation_bytes: usize,
    /// Peak bytes of the im2col patch matrix across the device's units.
    pub scratch_bytes: usize,
}

impl CertifiedMemory {
    /// Total certified resident bytes.
    pub fn total_bytes(&self) -> usize {
        self.weights_bytes + self.peak_activation_bytes + self.scratch_bytes
    }
}

/// Computes each device's certified memory bound under `plan`:
/// [`memory::plan_memory`]'s weights + activation peaks, plus the peak
/// im2col scratch the GEMM backend would materialize for the device's
/// share. Devices in ascending id order; idle devices omitted.
pub fn certified_plan_memory(model: &Model, plan: &Plan) -> Vec<CertifiedMemory> {
    let mut scratch: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for stage in &plan.stages {
        let seg = stage.segment;
        if seg.end > model.len() {
            continue;
        }
        let out_width = model.unit_output_shape(seg.end - 1).width;
        for a in stage.assignments.iter().filter(|a| !a.is_empty()) {
            let peak = scratch_peak(model, seg, a.region(out_width));
            let entry = scratch.entry(a.device).or_insert(0);
            *entry = (*entry).max(peak);
        }
    }
    memory::plan_memory(model, plan)
        .into_iter()
        .map(|dm| CertifiedMemory {
            device: dm.device,
            weights_bytes: dm.weights_bytes,
            peak_activation_bytes: dm.peak_activation_bytes,
            scratch_bytes: scratch.get(&dm.device).copied().unwrap_or(0),
        })
        .collect()
}

/// Peak im2col scratch bytes while a device computes `region` of
/// segment `seg`: the patch matrix for a conv is
/// `out_area × k_h·k_w·(C_in/groups)` elements. Blocks are bounded
/// conservatively by evaluating every inner conv at the block's input
/// region (inner regions cannot exceed it for the zoo's stride ≥ 1
/// layers), keeping the bound sound without per-path traces.
fn scratch_peak(model: &Model, seg: Segment, region: Region2) -> usize {
    let trace = model.segment_region_trace(seg, region);
    let mut peak = 0usize;
    for (k, i) in seg.iter().enumerate() {
        let out_region = trace[k];
        let in_shape = model.unit_input_shape(i);
        match model.unit(i) {
            Unit::Layer(l) => peak = peak.max(layer_scratch(&l.kind, out_region)),
            Unit::Block(b) => {
                let block_in = model.unit(i).input_region(out_region, in_shape);
                for l in b.paths.iter().flatten() {
                    peak = peak.max(layer_scratch(&l.kind, block_in));
                }
            }
        }
    }
    peak
}

fn layer_scratch(kind: &LayerKind, out_region: Region2) -> usize {
    match kind {
        LayerKind::Conv(c) => {
            out_region.area() * c.kernel.0 * c.kernel.1 * c.in_per_group() * BYTES_PER_ELEMENT
        }
        LayerKind::Pool(_) | LayerKind::Fc(_) => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, CostParams, OptimalFused, PicoPlanner, PlanRequest, Planner};
    use pico_model::zoo;

    #[test]
    fn worker_regions_tile_each_stage_and_need_halos() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let regions = stage_regions(&m, &plan);
        assert_eq!(regions.len(), plan.stage_count());
        for sr in &regions {
            let total: usize = sr.workers.iter().map(|w| w.output.area()).sum();
            assert_eq!(total, sr.output_rect().area(), "stage {}", sr.stage);
            for w in &sr.workers {
                assert!(sr.output_rect().contains(w.output));
                assert!(sr.input_rect().contains(w.input));
                // Reading at least as many input rows as output rows it
                // produces (receptive fields only grow backwards).
                assert!(w.input.area() > 0);
            }
        }
    }

    #[test]
    fn certified_bound_dominates_the_estimate() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let est = memory::plan_memory(&m, &plan);
        let cert = certified_plan_memory(&m, &plan);
        assert_eq!(est.len(), cert.len());
        for (e, b) in est.iter().zip(&cert) {
            assert_eq!(e.device, b.device);
            assert!(b.total_bytes() >= e.total_bytes());
            // A conv model always needs some patch scratch.
            assert!(b.scratch_bytes > 0, "device {}", b.device);
        }
    }

    #[test]
    fn sequential_plans_have_no_interior_cuts() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(4, 1.0);
        let params = CostParams::default();
        let pico = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let ofl = OptimalFused::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        assert!(interior_cuts(&ofl).is_empty());
        if pico.stage_count() > 1 {
            assert_eq!(interior_cuts(&pico).len(), pico.stage_count() - 1);
        }
    }
}
