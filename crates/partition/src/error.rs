/// Errors raised while constructing or validating plans.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm, which
/// is what lets new failure modes (like the memory budget) land
/// without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The plan has no stages.
    EmptyPlan,
    /// A stage has no devices with non-empty shares.
    EmptyStage {
        /// Index of the offending stage.
        stage: usize,
    },
    /// Stage segments do not tile the model contiguously.
    NonContiguousStages {
        /// Where the next stage should start.
        expected_start: usize,
        /// Where it actually starts.
        found_start: usize,
    },
    /// Stages stop before the end of the model.
    IncompleteCoverage {
        /// Units covered by the stages.
        covered: usize,
        /// Units in the model.
        expected: usize,
    },
    /// An assignment references a device not in the cluster.
    UnknownDevice {
        /// The unknown device id.
        device: usize,
    },
    /// A device appears in two stages of a pipelined plan (or twice in
    /// one stage).
    DeviceReuse {
        /// The reused device id.
        device: usize,
        /// Stage where the reuse was detected.
        stage: usize,
    },
    /// Row shares within a stage do not partition the output map.
    BadRowCover {
        /// Index of the offending stage.
        stage: usize,
        /// Human-readable description.
        detail: String,
    },
    /// No plan satisfies the latency limit `T_lim`.
    LatencyInfeasible {
        /// The requested limit in seconds.
        limit: f64,
        /// The best achievable latency found.
        best: f64,
    },
    /// The planner cannot handle this model (e.g. it contains
    /// non-partitionable units in positions the strategy cannot express).
    UnsupportedModel {
        /// Human-readable description.
        detail: String,
    },
    /// The plan needs more resident bytes on some device than the
    /// request's memory budget allows.
    MemoryBudgetExceeded {
        /// The per-device budget in bytes.
        budget: usize,
        /// Bytes the worst-loaded device would need.
        required: usize,
    },
    /// Excluding failed devices left no devices to plan over.
    ClusterExhausted {
        /// Devices the request excluded.
        excluded: Vec<usize>,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EmptyPlan => write!(f, "plan has no stages"),
            PlanError::EmptyStage { stage } => write!(f, "stage {stage} has no workers"),
            PlanError::NonContiguousStages {
                expected_start,
                found_start,
            } => write!(
                f,
                "stages are not contiguous: expected start {expected_start}, found {found_start}"
            ),
            PlanError::IncompleteCoverage { covered, expected } => {
                write!(f, "stages cover {covered} of {expected} model units")
            }
            PlanError::UnknownDevice { device } => {
                write!(f, "assignment references unknown device {device}")
            }
            PlanError::DeviceReuse { device, stage } => {
                write!(
                    f,
                    "device {device} reused in stage {stage} of a pipelined plan"
                )
            }
            PlanError::BadRowCover { stage, detail } => {
                write!(
                    f,
                    "stage {stage} row shares do not partition the output: {detail}"
                )
            }
            PlanError::LatencyInfeasible { limit, best } => write!(
                f,
                "no plan meets latency limit {limit:.4}s (best achievable {best:.4}s)"
            ),
            PlanError::UnsupportedModel { detail } => {
                write!(f, "model not supported by this planner: {detail}")
            }
            PlanError::MemoryBudgetExceeded { budget, required } => write!(
                f,
                "plan needs {required} resident bytes on its worst device, budget is {budget}"
            ),
            PlanError::ClusterExhausted { excluded } => write!(
                f,
                "excluding failed devices {excluded:?} leaves an empty cluster"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PlanError::LatencyInfeasible {
            limit: 0.5,
            best: 0.75,
        };
        let msg = e.to_string();
        assert!(msg.contains("0.5") && msg.contains("0.75"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<PlanError>();
    }
}
