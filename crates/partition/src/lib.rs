//! Partition planning for PICO cooperative CNN inference.
//!
//! This crate implements the paper's cost model (Sec. III-B, Eqs. 2–11)
//! and every parallelization strategy it evaluates (Sec. V-A):
//!
//! * [`LayerWise`] — MoDNN-style per-layer scatter/gather (LW),
//! * [`EarlyFused`] — DeepThings-style early fused layers (EFL),
//! * [`OptimalFused`] — AOFL-style optimally fused layers (OFL),
//! * [`PicoPlanner`] — the paper's contribution: dynamic-programming
//!   pipeline construction (Algorithm 1) plus greedy adaptation to a
//!   heterogeneous cluster (Algorithm 2),
//! * [`BfsOptimal`] — exhaustive optimal search, tractable only on toy
//!   models (Table II, Fig. 13).
//!
//! All planners implement the [`Planner`] trait and produce a [`Plan`]:
//! an ordered list of [`Stage`]s, each owning a contiguous model
//! [`Segment`](pico_model::Segment) and a set of per-device feature-map
//! row [`Assignment`]s.
//!
//! # Example
//!
//! ```
//! use pico_model::zoo;
//! use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};
//!
//! let model = zoo::vgg16().features();
//! let cluster = Cluster::pi_cluster(8, 1.0); // 8 Raspberry Pis @ 1 GHz
//! let params = CostParams::wifi_50mbps();
//! let plan = PicoPlanner::default().plan(&PlanRequest::new(&model, &cluster, &params))?;
//! let metrics = params.cost_model(&model).evaluate(&plan, &cluster);
//! assert!(metrics.period <= metrics.latency);
//! # Ok::<(), pico_partition::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bfs;
pub mod block_parallel;
pub mod churn;
mod cost;
mod device;
pub mod diag;
mod error;
mod fused;
pub mod grid;
mod grid_fused;
mod interleaved;
mod layer_wise;
pub mod memory;
pub mod pareto;
mod pico;
pub mod placement;
mod plan;
mod planner;
pub mod redundancy;
mod request;
pub mod symbolic;

pub use bfs::BfsOptimal;
pub use churn::{ChurnEpoch, ChurnError, ChurnEvent, ChurnKind, ChurnMembership, ClusterSchedule};
pub use cost::{CostModel, CostParams, PlanMetrics, StageCost};
pub use device::{Cluster, Device, FLOPS_PER_CYCLE};
pub use diag::{structural_diagnostics, Code, Diagnostic, Severity};
pub use error::PlanError;
pub use fused::{EarlyFused, OptimalFused};
pub use grid_fused::GridFused;
pub use interleaved::Interleaved;
pub use layer_wise::LayerWise;
pub use pico::{balance_rows, PicoPlanner};
pub use plan::{Assignment, ExecutionMode, Plan, Scheme, Stage};
pub use planner::Planner;
pub use request::PlanRequest;
