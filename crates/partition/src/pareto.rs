//! The period/latency Pareto frontier of Eq. 1.
//!
//! PICO minimizes the pipeline period subject to `T ≤ T_lim`; sweeping
//! `T_lim` therefore traces the achievable (period, latency) trade-off
//! curve — deep pipelines cycle fast but take long to traverse, shallow
//! ones the reverse. Deployment tools use the frontier to pick an
//! operating point against an application's latency SLO.

use pico_model::Model;
use serde::{Deserialize, Serialize};

use crate::{Cluster, CostParams, PicoPlanner, Plan, PlanRequest, Planner};

/// One achievable operating point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// The latency limit that produced this plan (`None` =
    /// unconstrained).
    pub t_lim: Option<f64>,
    /// Predicted pipeline period (s).
    pub period: f64,
    /// Predicted pipeline latency (s).
    pub latency: f64,
    /// The plan realizing the point.
    pub plan: Plan,
}

/// Traces the period/latency frontier by sweeping `T_lim` over `steps`
/// values between the tightest feasible latency and the unconstrained
/// optimum's latency. Points are deduplicated and returned in
/// ascending-period (descending-latency) order; the result always
/// contains at least the unconstrained plan.
///
/// # Example
///
/// ```
/// use pico_model::zoo;
/// use pico_partition::pareto::frontier;
/// use pico_partition::{Cluster, CostParams, PlanRequest};
///
/// let model = zoo::vgg16().features();
/// let cluster = Cluster::pi_cluster(8, 1.0);
/// let points = frontier(&model, &cluster, &CostParams::wifi_50mbps(), 8);
/// // The frontier is a genuine trade-off: as latency falls, period rises.
/// for w in points.windows(2) {
///     assert!(w[1].period >= w[0].period);
///     assert!(w[1].latency <= w[0].latency + 1e-9);
/// }
/// ```
///
/// # Panics
///
/// Panics if `steps == 0` or the unconstrained planner fails (which it
/// cannot for a valid model/cluster without a `t_lim` in `params`).
pub fn frontier(
    model: &Model,
    cluster: &Cluster,
    params: &CostParams,
    steps: usize,
) -> Vec<FrontierPoint> {
    assert!(steps > 0, "need at least one step");
    // Same environment minus the latency limit; the calibrated compute
    // coefficient must survive the rebuild.
    let base_params = CostParams {
        t_lim: None,
        ..*params
    };
    let cm = base_params.cost_model(model);
    let planner = PicoPlanner::new();

    let unconstrained = planner
        .plan(&PlanRequest::new(model, cluster, &base_params))
        .expect("unconstrained planning always succeeds");
    let top = cm.evaluate(&unconstrained, cluster);

    let mut points = vec![FrontierPoint {
        t_lim: None,
        period: top.period,
        latency: top.latency,
        plan: unconstrained,
    }];

    // Tighten the limit step by step below the unconstrained latency;
    // infeasible limits simply contribute no point.
    for i in 1..=steps {
        let t_lim = top.latency * (1.0 - i as f64 / (steps as f64 + 1.0));
        if t_lim <= 0.0 {
            continue;
        }
        let constrained = base_params.with_t_lim(t_lim);
        if let Ok(plan) = planner.plan(&PlanRequest::new(model, cluster, &constrained)) {
            let m = cm.evaluate(&plan, cluster);
            points.push(FrontierPoint {
                t_lim: Some(t_lim),
                period: m.period,
                latency: m.latency,
                plan,
            });
        }
    }

    // Keep the Pareto-optimal, deduplicated set, ascending by period.
    points.sort_by(|a, b| {
        a.period
            .partial_cmp(&b.period)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                a.latency
                    .partial_cmp(&b.latency)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    let mut out: Vec<FrontierPoint> = Vec::new();
    for p in points {
        match out.last() {
            Some(last) if p.latency >= last.latency - 1e-12 => {} // dominated
            Some(last)
                if (p.period - last.period).abs() < 1e-12
                    && (p.latency - last.latency).abs() < 1e-12 => {}
            _ => out.push(p),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;

    #[test]
    fn frontier_is_monotone_and_nonempty() {
        let model = zoo::vgg16().features();
        let cluster = Cluster::pi_cluster(8, 1.0);
        let points = frontier(&model, &cluster, &CostParams::wifi_50mbps(), 10);
        assert!(!points.is_empty());
        for w in points.windows(2) {
            assert!(w[1].period >= w[0].period - 1e-12);
            assert!(w[1].latency <= w[0].latency + 1e-9);
        }
        // The first point is the unconstrained optimum.
        assert_eq!(points[0].t_lim, None);
    }

    #[test]
    fn frontier_has_multiple_points_when_tradeoff_exists() {
        let model = zoo::vgg16().features();
        let cluster = Cluster::pi_cluster(8, 1.0);
        let points = frontier(&model, &cluster, &CostParams::wifi_50mbps(), 12);
        assert!(
            points.len() >= 2,
            "expected a real trade-off, got {}",
            points.len()
        );
    }

    #[test]
    fn every_frontier_plan_validates_and_honors_its_limit() {
        let model = zoo::vgg16().features();
        let cluster = Cluster::paper_heterogeneous();
        for p in frontier(&model, &cluster, &CostParams::wifi_50mbps(), 8) {
            let diags = crate::diag::structural_diagnostics(&p.plan, &model, &cluster);
            assert!(diags.is_empty(), "{diags:?}");
            if let Some(t) = p.t_lim {
                assert!(
                    p.latency <= t + 1e-9,
                    "latency {} over limit {t}",
                    p.latency
                );
            }
        }
    }

    #[test]
    fn single_device_frontier_is_one_point() {
        let model = zoo::toy(4);
        let cluster = Cluster::pi_cluster(1, 1.0);
        let points = frontier(&model, &cluster, &CostParams::wifi_50mbps(), 6);
        assert_eq!(points.len(), 1);
    }
}
