//! Workspace automation, following the cargo-xtask pattern: run with
//! `cargo xtask <task>` (aliased in `.cargo/config.toml`).
//!
//! The only task so far is `lint`: repo-specific source-level static
//! analysis that stock clippy cannot express:
//!
//! 1. **no-panic-serving-path** — no `.unwrap()` / `.expect(` in
//!    non-test code of `pico-runtime` and `pico-core` (the serving
//!    path propagates `Result`s; panics belong in tests only);
//! 2. **no-lossy-casts-in-cost** — the cost model
//!    (`crates/partition/src/cost.rs`) may only cast *to* `f64`
//!    (int → f64 is the one sanctioned widening); any other `as` cast
//!    between numeric primitives silently truncates;
//! 3. **lint-headers** — every crate root keeps
//!    `#![forbid(unsafe_code)]` and a `missing_docs` lint
//!    (`warn` or `deny`); `pico-tensor` alone carries
//!    `#![deny(unsafe_code)]` instead, because its vectorized and
//!    parallel kernels opt back in per-module (see rule 10);
//! 4. **diagnostics-registry** — every `PA###` diagnostic code
//!    mentioned anywhere in the sources is documented in DESIGN.md's
//!    "Plan diagnostics registry";
//! 5. **telemetry-name-registry** — span/counter/histogram names
//!    passed to `Recorder` methods (and `Event` constructors) outside
//!    `pico-telemetry` itself must be `pico_telemetry::names::*`
//!    consts, never ad-hoc string literals, so the name registry stays
//!    the single source of truth and the trace summary's exact-match
//!    grouping cannot silently miss a misspelled name;
//! 6. **kernel-hot-path** — the GEMM micro-kernels
//!    (`crates/tensor/src/gemm.rs`) contain no `.unwrap()` /
//!    `.expect(` and no allocation calls in non-test code: every
//!    buffer is caller-provided (normally from a `Scratch` pool), so
//!    the steady-state zero-allocation guarantee cannot silently rot;
//! 7. **wall-clock-discipline** — `Instant::now()` appears only inside
//!    `pico-telemetry` (the `clock::wall_now` seam) and `pico-bench`
//!    (the measurement harness); everything else must go through the
//!    seam so timing stays mockable and the simulator's virtual time
//!    cannot silently mix with wall time;
//! 8. **bounded-channels-only** — no `unbounded(` / `mpsc::channel(`
//!    in non-test code of `pico-runtime` and `pico-serve`: every
//!    queue in the serving path is bounded so backpressure reaches
//!    admission control as a typed rejection instead of unbounded
//!    memory growth;
//! 9. **serve-plans-via-frontier** — `pico-serve` never invokes a
//!    planner directly (no `.plan(` / `PlanRequest::new(` in non-test
//!    code): every plan the serving path runs comes off the
//!    audit-certified fleet frontier through the plan cache, so an
//!    uncertified plan cannot reach the runtime;
//! 10. **simd-hot-path** — the vectorized, parallel, and quantized
//!     kernels (`crates/tensor/src/{simd,pool,quant}.rs`) inherit the
//!     rule-6 discipline (no `.unwrap()` / `.expect(`, no allocation
//!     calls in non-test code), `unsafe` stays confined to `simd.rs`
//!     and `pool.rs`, and every non-test line using `unsafe` carries a
//!     nearby `SAFETY:` comment;
//! 11. **no-churn-in-serve** — `pico-serve` never constructs or
//!     consumes churn events (`ClusterSchedule` / `ChurnEvent` /
//!     `ChurnKind` stay out of non-test code): membership churn is
//!     decided by the deployment layer (`pico-core`'s epoch
//!     orchestration), and the serving path only ever sees its
//!     consequences through the plan cache and fleet frontier.
//!
//! Exit code 0 when clean, 1 with a findings listing otherwise.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown task `{other}`\n\nusage: cargo xtask lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root: this file lives in `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// One lint finding.
struct Violation {
    rule: &'static str,
    file: PathBuf,
    line: usize,
    detail: String,
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut violations = Vec::new();

    lint_no_panics(&root, &mut violations);
    lint_cost_casts(&root, &mut violations);
    lint_headers(&root, &mut violations);
    lint_registry(&root, &mut violations);
    lint_telemetry_names(&root, &mut violations);
    lint_kernel_hot_path(&root, &mut violations);
    lint_wall_clock(&root, &mut violations);
    lint_bounded_channels(&root, &mut violations);
    lint_serve_via_frontier(&root, &mut violations);
    lint_simd_hot_path(&root, &mut violations);
    lint_no_churn_in_serve(&root, &mut violations);

    if violations.is_empty() {
        println!("xtask lint: clean (11 rules, 0 findings)");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            let path = v.file.strip_prefix(&root).unwrap_or(&v.file);
            eprintln!("[{}] {}:{}: {}", v.rule, path.display(), v.line, v.detail);
        }
        eprintln!("xtask lint: {} finding(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// Collects `.rs` files under `dir`, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

/// Strips `//` comments and the contents of ordinary string literals
/// from one line, so lint patterns never match inside either. Escapes
/// inside strings are handled; raw strings and block comments are rare
/// enough in this workspace to ignore.
fn strip_comments_and_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_string = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Net brace depth change of a (comment/string-stripped) line.
fn brace_delta(code: &str) -> i64 {
    code.chars().fold(0, |acc, c| match c {
        '{' => acc + 1,
        '}' => acc - 1,
        _ => acc,
    })
}

/// Iterates the non-test lines of a source file: lines inside
/// `#[cfg(test)]`-gated items (modules, functions, uses) are skipped.
fn non_test_lines(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut pending_cfg_test = false;
    let mut test_block_depth: i64 = 0;
    let mut in_test_block = false;
    for (i, raw) in source.lines().enumerate() {
        let code = strip_comments_and_strings(raw);
        let trimmed = code.trim();
        if in_test_block {
            test_block_depth += brace_delta(&code);
            if test_block_depth <= 0 {
                in_test_block = false;
            }
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with('#') {
                // Another attribute between #[cfg(test)] and the item.
            } else {
                pending_cfg_test = false;
                let delta = brace_delta(&code);
                if delta > 0 {
                    in_test_block = true;
                    test_block_depth = delta;
                }
                // Item without a block (e.g. a gated `use`): only that
                // line is skipped.
            }
            continue;
        }
        if trimmed.contains("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        out.push((i + 1, code));
    }
    out
}

/// Rule 1: no `.unwrap()` / `.expect(` in the serving path.
fn lint_no_panics(root: &Path, violations: &mut Vec<Violation>) {
    let mut files = Vec::new();
    for dir in ["crates/runtime/src", "crates/core/src"] {
        rust_files(&root.join(dir), &mut files);
    }
    for file in files {
        let Ok(source) = std::fs::read_to_string(&file) else {
            continue;
        };
        for (line, code) in non_test_lines(&source) {
            for pattern in [".unwrap()", ".expect("] {
                if code.contains(pattern) {
                    violations.push(Violation {
                        rule: "no-panic-serving-path",
                        file: file.clone(),
                        line,
                        detail: format!("`{pattern}` in non-test serving-path code"),
                    });
                }
            }
        }
    }
}

const LOSSY_CAST_TARGETS: [&str; 14] = [
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize", "f32",
    "char",
];

/// Rule 2: in the cost model, `as` may only widen to `f64`.
fn lint_cost_casts(root: &Path, violations: &mut Vec<Violation>) {
    let file = root.join("crates/partition/src/cost.rs");
    let Ok(source) = std::fs::read_to_string(&file) else {
        violations.push(Violation {
            rule: "no-lossy-casts-in-cost",
            file,
            line: 0,
            detail: "crates/partition/src/cost.rs is missing".to_owned(),
        });
        return;
    };
    for (i, raw) in source.lines().enumerate() {
        let code = strip_comments_and_strings(raw);
        let mut rest = code.as_str();
        while let Some(pos) = rest.find(" as ") {
            let after = &rest[pos + 4..];
            let target: String = after
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if LOSSY_CAST_TARGETS.contains(&target.as_str()) {
                violations.push(Violation {
                    rule: "no-lossy-casts-in-cost",
                    file: file.clone(),
                    line: i + 1,
                    detail: format!("lossy `as {target}` cast (only `as f64` is allowed here)"),
                });
            }
            rest = after;
        }
    }
}

/// Rule 3: every crate root keeps its lint headers.
fn lint_headers(root: &Path, violations: &mut Vec<Violation>) {
    let mut roots = vec![root.join("src/lib.rs")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            let lib = dir.join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            } else {
                // Binary-only crates (like this one) carry the
                // unsafe-code header on their main.rs instead.
                let main = dir.join("src/main.rs");
                if main.is_file() {
                    let ok = std::fs::read_to_string(&main)
                        .is_ok_and(|s| s.contains("#![forbid(unsafe_code)]"));
                    if !ok {
                        violations.push(Violation {
                            rule: "lint-headers",
                            file: main,
                            line: 1,
                            detail: "missing `#![forbid(unsafe_code)]`".to_owned(),
                        });
                    }
                }
            }
        }
    }
    for lib in roots {
        let Ok(source) = std::fs::read_to_string(&lib) else {
            violations.push(Violation {
                rule: "lint-headers",
                file: lib,
                line: 0,
                detail: "crate root missing".to_owned(),
            });
            continue;
        };
        // pico-tensor hosts the explicitly vectorized and parallel
        // kernels, which opt back into `unsafe` per-module; its root
        // must deny (not forbid) so those `#![allow]`s are possible,
        // while rule 10 polices where they may appear.
        let tensor_root = lib.ends_with("crates/tensor/src/lib.rs");
        let (required, found) = if tensor_root {
            (
                "#![deny(unsafe_code)]",
                source.contains("#![deny(unsafe_code)]"),
            )
        } else {
            (
                "#![forbid(unsafe_code)]",
                source.contains("#![forbid(unsafe_code)]"),
            )
        };
        if !found {
            violations.push(Violation {
                rule: "lint-headers",
                file: lib.clone(),
                line: 1,
                detail: format!("missing `{required}`"),
            });
        }
        if !source.contains("#![warn(missing_docs)]") && !source.contains("#![deny(missing_docs)]")
        {
            violations.push(Violation {
                rule: "lint-headers",
                file: lib,
                line: 1,
                detail: "missing `#![warn(missing_docs)]` / `#![deny(missing_docs)]`".to_owned(),
            });
        }
    }
}

/// Extracts every `PA###` token from a string.
fn pa_codes(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 5 <= bytes.len() {
        if bytes[i] == b'P'
            && bytes[i + 1] == b'A'
            && bytes[i + 2].is_ascii_digit()
            && bytes[i + 3].is_ascii_digit()
            && bytes[i + 4].is_ascii_digit()
            && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric())
            && (i + 5 == bytes.len() || !bytes[i + 5].is_ascii_alphanumeric())
        {
            out.push(text[i..i + 5].to_owned());
            i += 5;
        } else {
            i += 1;
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Rule 4: every diagnostic code used in the sources appears in the
/// DESIGN.md registry.
fn lint_registry(root: &Path, violations: &mut Vec<Violation>) {
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let documented = pa_codes(&design);
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests"] {
        rust_files(&root.join(dir), &mut files);
    }
    for file in files {
        // This linter's own source mentions no real codes.
        if file.ends_with("crates/xtask/src/main.rs") {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(&file) else {
            continue;
        };
        for code in pa_codes(&source) {
            if !documented.contains(&code) {
                let line = source
                    .lines()
                    .position(|l| l.contains(&code))
                    .map(|p| p + 1)
                    .unwrap_or(0);
                let mut detail = String::new();
                let _ = write!(
                    detail,
                    "diagnostic code {code} is not documented in DESIGN.md's registry"
                );
                violations.push(Violation {
                    rule: "diagnostics-registry",
                    file: file.clone(),
                    line,
                    detail,
                });
            }
        }
    }
}

/// Recorder methods whose *first* argument is an event name.
const RECORDER_NAME_METHODS: [&str; 9] = [
    ".span(",
    ".span_with(",
    ".span_at(",
    ".instant(",
    ".instant_at(",
    ".count(",
    ".count_at(",
    ".observe(",
    ".observe_at(",
];

/// `Event` constructors that take a name (second argument, after the
/// timestamp).
const EVENT_NAME_CALLS: [&str; 3] = ["Event::span_begin(", "Event::span_end(", "Event::instant("];

/// Byte offsets of every occurrence of `needle` in `haystack`.
fn find_all(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = haystack[start..].find(needle) {
        out.push(start + p);
        start += p + needle.len();
    }
    out
}

/// First non-whitespace character at or after `(idx, col)` in the
/// line stream, looking at most three lines ahead (rustfmt puts a
/// wrapped first argument on the very next line).
fn first_arg_char(lines: &[(usize, String)], idx: usize, col: usize) -> Option<char> {
    for (n, (_, code)) in lines.iter().enumerate().skip(idx).take(4) {
        let from = if n == idx { col } else { 0 };
        if let Some(c) = code
            .get(from..)
            .and_then(|s| s.chars().find(|c| !c.is_whitespace()))
        {
            return Some(c);
        }
    }
    None
}

/// Rule-5 findings for one (already test-stripped) source: `(line,
/// offending token)` pairs where a recorder method or `Event`
/// constructor is handed a string literal instead of a `names::` const.
fn telemetry_name_findings(lines: &[(usize, String)]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, (line, code)) in lines.iter().enumerate() {
        for token in RECORDER_NAME_METHODS {
            for pos in find_all(code, token) {
                if first_arg_char(lines, idx, pos + token.len()) == Some('"') {
                    out.push((*line, token.trim_start_matches('.').to_owned()));
                }
            }
        }
        for token in EVENT_NAME_CALLS {
            for pos in find_all(code, token) {
                // The name is the second argument; scan the argument
                // window (this line + up to three continuations, cut at
                // the first close paren) for any string literal.
                let mut window = code[pos + token.len()..].to_owned();
                for (_, next) in lines.iter().skip(idx + 1).take(3) {
                    window.push(' ');
                    window.push_str(next);
                }
                let window = window.split(')').next().unwrap_or("");
                if window.contains('"') {
                    out.push((*line, token.to_owned()));
                }
            }
        }
    }
    out
}

/// Rule 5: telemetry names outside the telemetry crate come from the
/// `pico_telemetry::names` registry, never ad-hoc string literals.
fn lint_telemetry_names(root: &Path, violations: &mut Vec<Violation>) {
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests"] {
        rust_files(&root.join(dir), &mut files);
    }
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file);
        let rel = rel.to_string_lossy().replace('\\', "/");
        // The telemetry crate defines the API (its internals forward a
        // `name` parameter); the linter's own source spells the
        // patterns it searches for.
        if rel.starts_with("crates/telemetry/") || rel.starts_with("crates/xtask/") {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(&file) else {
            continue;
        };
        let lines = non_test_lines(&source);
        for (line, token) in telemetry_name_findings(&lines) {
            violations.push(Violation {
                rule: "telemetry-name-registry",
                file: file.clone(),
                line,
                detail: format!(
                    "`{token}...)` called with a string literal; \
                     use a `pico_telemetry::names` const"
                ),
            });
        }
    }
}

/// Tokens that heap-allocate; none may appear in kernel hot-path code.
const ALLOCATION_TOKENS: [&str; 9] = [
    "vec!",
    "Vec::new",
    "Vec::with_capacity",
    ".to_vec(",
    ".collect(",
    ".to_owned(",
    ".to_string(",
    "String::",
    "Box::new",
];

/// Rule 6: the GEMM micro-kernels stay panic-free and allocation-free
/// outside tests.
fn lint_kernel_hot_path(root: &Path, violations: &mut Vec<Violation>) {
    let file = root.join("crates/tensor/src/gemm.rs");
    let Ok(source) = std::fs::read_to_string(&file) else {
        violations.push(Violation {
            rule: "kernel-hot-path",
            file,
            line: 0,
            detail: "crates/tensor/src/gemm.rs is missing".to_owned(),
        });
        return;
    };
    for (line, code) in non_test_lines(&source) {
        for pattern in [".unwrap()", ".expect("] {
            if code.contains(pattern) {
                violations.push(Violation {
                    rule: "kernel-hot-path",
                    file: file.clone(),
                    line,
                    detail: format!("`{pattern}` in non-test kernel code"),
                });
            }
        }
        for token in ALLOCATION_TOKENS {
            if code.contains(token) {
                violations.push(Violation {
                    rule: "kernel-hot-path",
                    file: file.clone(),
                    line,
                    detail: format!("`{token}` allocates; kernel buffers must be caller-provided"),
                });
            }
        }
    }
}

/// Rule 7: wall-clock reads go through `pico_telemetry::clock` (or the
/// bench harness, which measures wall time by design); a bare
/// `Instant::now()` anywhere else bypasses the one seam that keeps
/// timing mockable.
fn lint_wall_clock(root: &Path, violations: &mut Vec<Violation>) {
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests"] {
        rust_files(&root.join(dir), &mut files);
    }
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file);
        let rel = rel.to_string_lossy().replace('\\', "/");
        if rel.starts_with("crates/telemetry/")
            || rel.starts_with("crates/bench/")
            || rel.starts_with("crates/xtask/")
        {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(&file) else {
            continue;
        };
        for (line, code) in non_test_lines(&source) {
            if code.contains("Instant::now(") {
                violations.push(Violation {
                    rule: "wall-clock-discipline",
                    file: file.clone(),
                    line,
                    detail: "wall-clock read outside pico-telemetry/pico-bench; \
                             use `pico_telemetry::clock::wall_now()`"
                        .to_owned(),
                });
            }
        }
    }
}

/// Rule 8: only bounded channels in the serving path. An unbounded
/// queue between intake and the pipeline would absorb overload
/// silently; the design surfaces it as a typed admission rejection.
fn lint_bounded_channels(root: &Path, violations: &mut Vec<Violation>) {
    let mut files = Vec::new();
    for dir in ["crates/runtime/src", "crates/serve/src"] {
        rust_files(&root.join(dir), &mut files);
    }
    for file in files {
        let Ok(source) = std::fs::read_to_string(&file) else {
            continue;
        };
        for (line, code) in non_test_lines(&source) {
            for pattern in ["unbounded(", "mpsc::channel("] {
                if code.contains(pattern) {
                    violations.push(Violation {
                        rule: "bounded-channels-only",
                        file: file.clone(),
                        line,
                        detail: format!(
                            "`{pattern}` in the serving path; use `bounded(..)` so \
                             backpressure surfaces at admission"
                        ),
                    });
                }
            }
        }
    }
}

/// Rule 9: `pico-serve` never plans for itself. Every plan the serving
/// path executes must come off the audit-certified fleet frontier
/// (through the plan cache), so a direct planner invocation here would
/// bypass the deep-audit gate that certifies stability and memory.
fn lint_serve_via_frontier(root: &Path, violations: &mut Vec<Violation>) {
    let mut files = Vec::new();
    rust_files(&root.join("crates/serve/src"), &mut files);
    for file in files {
        let Ok(source) = std::fs::read_to_string(&file) else {
            continue;
        };
        for (line, code) in non_test_lines(&source) {
            for pattern in [".plan(", "PlanRequest::new("] {
                if code.contains(pattern) {
                    violations.push(Violation {
                        rule: "serve-plans-via-frontier",
                        file: file.clone(),
                        line,
                        detail: format!(
                            "`{pattern}` plans directly in pico-serve; take plans \
                             from the audited fleet frontier (pico-fleet) instead"
                        ),
                    });
                }
            }
        }
    }
}

/// Rule 11: membership churn never reaches `pico-serve`. Churn events
/// are a deployment-layer concern — `pico-core` slices streams into
/// epochs and re-admits devices behind the audit gates — so the serving
/// path handling churn types directly would create a second, ungated
/// re-admission path.
fn lint_no_churn_in_serve(root: &Path, violations: &mut Vec<Violation>) {
    let mut files = Vec::new();
    rust_files(&root.join("crates/serve/src"), &mut files);
    for file in files {
        let Ok(source) = std::fs::read_to_string(&file) else {
            continue;
        };
        for (line, code) in non_test_lines(&source) {
            for pattern in ["ClusterSchedule", "ChurnEvent", "ChurnKind"] {
                if code.contains(pattern) {
                    violations.push(Violation {
                        rule: "no-churn-in-serve",
                        file: file.clone(),
                        line,
                        detail: format!(
                            "`{pattern}` in pico-serve; churn is orchestrated by \
                             pico-core's epoch machinery, not the serving path"
                        ),
                    });
                }
            }
        }
    }
}

/// True when `code` contains `unsafe` as a whole word (so
/// `unsafe_code` in an attribute does not count).
fn contains_unsafe_keyword(code: &str) -> bool {
    for pos in find_all(code, "unsafe") {
        let before_ok = pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        let after_ok = !code[pos + 6..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Rule 10: the vectorized, parallel, and quantized kernels inherit
/// the rule-6 hot-path discipline, `unsafe` stays confined to the two
/// modules that need it, and every use is documented with a nearby
/// `SAFETY:` comment.
fn lint_simd_hot_path(root: &Path, violations: &mut Vec<Violation>) {
    const UNSAFE_OK: [&str; 2] = ["simd.rs", "pool.rs"];
    for name in ["simd.rs", "pool.rs", "quant.rs"] {
        let file = root.join("crates/tensor/src").join(name);
        let Ok(source) = std::fs::read_to_string(&file) else {
            violations.push(Violation {
                rule: "simd-hot-path",
                file,
                line: 0,
                detail: format!("crates/tensor/src/{name} is missing"),
            });
            continue;
        };
        let raw_lines: Vec<&str> = source.lines().collect();
        for (line, code) in non_test_lines(&source) {
            for pattern in [".unwrap()", ".expect("] {
                if code.contains(pattern) {
                    violations.push(Violation {
                        rule: "simd-hot-path",
                        file: file.clone(),
                        line,
                        detail: format!("`{pattern}` in non-test kernel code"),
                    });
                }
            }
            for token in ALLOCATION_TOKENS {
                if code.contains(token) {
                    violations.push(Violation {
                        rule: "simd-hot-path",
                        file: file.clone(),
                        line,
                        detail: format!(
                            "`{token}` allocates; kernel buffers must be caller-provided"
                        ),
                    });
                }
            }
            if contains_unsafe_keyword(&code) {
                if !UNSAFE_OK.contains(&name) {
                    violations.push(Violation {
                        rule: "simd-hot-path",
                        file: file.clone(),
                        line,
                        detail: "`unsafe` outside simd.rs/pool.rs; quantized kernels \
                                 are plain safe Rust"
                            .to_owned(),
                    });
                } else {
                    // The justification may sit above a doc comment
                    // and attributes, so scan a few raw lines back
                    // (comments included — that is where it lives).
                    let documented = raw_lines[..line.saturating_sub(1)]
                        .iter()
                        .rev()
                        .take(8)
                        .any(|l| l.contains("SAFETY"))
                        || raw_lines
                            .get(line.saturating_sub(1))
                            .is_some_and(|l| l.contains("SAFETY"));
                    if !documented {
                        violations.push(Violation {
                            rule: "simd-hot-path",
                            file: file.clone(),
                            line,
                            detail: "`unsafe` without a nearby `// SAFETY:` comment".to_owned(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_but_keeps_code() {
        assert_eq!(
            strip_comments_and_strings("let x = 1; // .unwrap()"),
            "let x = 1; "
        );
        assert_eq!(
            strip_comments_and_strings(r#"let s = "a as u8 // x";"#),
            r#"let s = "";"#
        );
    }

    #[test]
    fn non_test_lines_skip_gated_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap() }\n}\nfn c() {}\n";
        let lines = non_test_lines(src);
        let text: Vec<&str> = lines.iter().map(|(_, l)| l.as_str()).collect();
        assert!(text.iter().any(|l| l.contains("fn a")));
        assert!(text.iter().any(|l| l.contains("fn c")));
        assert!(!text.iter().any(|l| l.contains("unwrap")));
    }

    #[test]
    fn non_test_lines_skip_gated_use_only() {
        let src = "#[cfg(test)]\nuse foo::Bar;\nfn a() {}\n";
        let lines = non_test_lines(src);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].1.contains("fn a"));
    }

    #[test]
    fn unsafe_keyword_detection_requires_word_boundaries() {
        assert!(contains_unsafe_keyword("unsafe fn f()"));
        assert!(contains_unsafe_keyword("let s = unsafe { *p };"));
        assert!(!contains_unsafe_keyword("#![allow(unsafe_code)]"));
        assert!(!contains_unsafe_keyword("not_unsafe()"));
        assert!(!contains_unsafe_keyword("fn safe_code() {}"));
    }

    #[test]
    fn pa_code_extraction_requires_word_boundaries() {
        assert_eq!(pa_codes("PA001 and PA102."), vec!["PA001", "PA102"]);
        assert!(pa_codes("SPA001 PA0012 OPA123x").is_empty());
    }

    #[test]
    fn telemetry_name_literals_are_flagged() {
        let src = "\
fn instrument(rec: &Recorder) {
    rec.span_at(names::COMPUTE, Ctx::default(), 0.0, 1.0, 0.0, 0);
    rec.count_at(\"ad_hoc\", Ctx::default(), 0.0, 1.0);
    rec.observe_at(
        \"wrapped_literal\",
        Ctx::default(),
        0.0,
        1.0,
    );
    rec.record(Event::instant(0.0, \"bad_name\", Ctx::default()));
    rec.record(Event::instant(0.0, names::PLAN, Ctx::default()));
    let n = xs.iter().count();
}
#[cfg(test)]
mod tests {
    fn gated() { rec.count(\"test_only\", 1.0); }
}
";
        let lines = non_test_lines(src);
        let found = telemetry_name_findings(&lines);
        let tokens: Vec<&str> = found.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            tokens,
            vec!["count_at(", "observe_at(", "Event::instant("],
            "{found:?}"
        );
    }

    #[test]
    fn the_workspace_is_lint_clean() {
        // The committed tree must satisfy its own lints; this is the
        // same check CI runs via `cargo xtask lint`.
        let root = workspace_root();
        let mut violations = Vec::new();
        lint_no_panics(&root, &mut violations);
        lint_cost_casts(&root, &mut violations);
        lint_headers(&root, &mut violations);
        lint_registry(&root, &mut violations);
        lint_telemetry_names(&root, &mut violations);
        lint_kernel_hot_path(&root, &mut violations);
        lint_wall_clock(&root, &mut violations);
        lint_bounded_channels(&root, &mut violations);
        lint_serve_via_frontier(&root, &mut violations);
        lint_simd_hot_path(&root, &mut violations);
        lint_no_churn_in_serve(&root, &mut violations);
        let rendered: Vec<String> = violations
            .iter()
            .map(|v| format!("[{}] {}:{}: {}", v.rule, v.file.display(), v.line, v.detail))
            .collect();
        assert!(rendered.is_empty(), "{rendered:#?}");
    }
}
