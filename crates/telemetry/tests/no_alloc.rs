//! The zero-cost promise, checked at the allocator: driving the full
//! recorder surface through a `Noop` recorder must not allocate.
//!
//! The runtime clones a recorder into every worker thread and calls it
//! per task; if the disabled path ever allocated, "telemetry is free
//! when off" would be false and it could not stay compiled into the
//! serving loop unconditionally.

use pico_telemetry::{names, Ctx, Event, Recorder};

pico_telemetry::install_counting_allocator!();

#[test]
fn noop_recorder_does_not_allocate() {
    let rec = Recorder::noop();
    let cloned = rec.clone();

    let before = allocation_count();
    for task in 0..1000 {
        let ctx = Ctx::stage(0).on_device(1).for_task(task);
        cloned.record(Event::span_begin(0.0, names::COMPUTE, ctx).with_value(1e9));
        cloned.record(Event::span_end(1.0, names::COMPUTE, ctx));
        cloned.span_at(
            names::STAGE_BUSY,
            Ctx::stage(0).for_task(task),
            0.0,
            1.0,
            0.0,
            64,
        );
        cloned.instant(names::PLAN_SWITCH, ctx);
        cloned.instant_at(names::HALO_EXCHANGE, ctx, 0.5, 2.0);
        cloned.count(names::TASKS_COMPLETED, 1.0);
        cloned.count_at(names::BYTES_MOVED, ctx, 0.5, 128.0);
        cloned.observe(names::QUEUE_DELAY_OBSERVED, 0.25);
        cloned.observe_at(names::LAMBDA_ESTIMATE, ctx, 0.5, 12.0);
        {
            let _guard = cloned.span_with(names::SCATTER, ctx);
        }
        assert!(!cloned.is_enabled());
        assert_eq!(cloned.now(), 0.0);
    }
    let after = allocation_count();

    assert_eq!(after - before, 0, "Noop recorder allocated on the hot path");

    // snapshot() hands back an owned (empty) Vec, which std guarantees
    // allocation-free; exercise it last so the guarantee is also
    // covered without muddying the loop above.
    let snap_before = allocation_count();
    assert!(rec.snapshot().is_empty());
    assert_eq!(allocation_count() - snap_before, 0);
}
