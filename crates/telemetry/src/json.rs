//! A minimal JSON reader/writer for trace round-tripping.
//!
//! The workspace is intentionally dependency-free on the serving path,
//! so `trace validate`/`summarize` cannot lean on a JSON crate. This is
//! a small recursive-descent parser (objects keep key order) plus the
//! one formatting helper exporters share.

use crate::error::TelemetryError;

/// A parsed JSON value. Object members keep document order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, as f64.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number in this value, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string in this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array in this value, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, TelemetryError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

/// Formats an f64 as a JSON number: Rust's shortest round-trip form,
/// with non-finite values (illegal in JSON) written as 0.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `format!` can emit exponent forms like 1e-7, which JSON allows.
        s
    } else {
        "0".to_string()
    }
}

/// Escapes a string for embedding in a JSON document (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> TelemetryError {
        TelemetryError::Parse {
            offset: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TelemetryError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, TelemetryError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, TelemetryError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Value, TelemetryError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, TelemetryError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, TelemetryError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // BMP only; surrogate halves degrade to the
                            // replacement character rather than erroring
                            // — trace names are ASCII in practice.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, TelemetryError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, TelemetryError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_trace_shaped_document() {
        let doc = r#"{"traceEvents":[{"name":"compute","ph":"X","ts":1.5,"dur":2,"pid":0,"tid":1,"args":{"flops":1e9}}],"displayTimeUnit":"ms"}"#;
        let v = parse(doc).expect("parse");
        let events = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].get("name").and_then(Value::as_str),
            Some("compute")
        );
        assert_eq!(events[0].get("ts").and_then(Value::as_f64), Some(1.5));
        assert_eq!(
            events[0]
                .get("args")
                .and_then(|a| a.get("flops"))
                .and_then(Value::as_f64),
            Some(1e9)
        );
        assert_eq!(v.get("displayTimeUnit").and_then(Value::as_str), Some("ms"));
    }

    #[test]
    fn parses_escapes_literals_and_negatives() {
        let v = parse(r#"{"s":"a\"b\nA","t":true,"f":false,"n":null,"x":-2.5}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\"b\nA"));
        assert_eq!(v.get("t"), Some(&Value::Bool(true)));
        assert_eq!(v.get("f"), Some(&Value::Bool(false)));
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("x").and_then(Value::as_f64), Some(-2.5));
    }

    #[test]
    fn reports_offsets_for_malformed_input() {
        for bad in ["{\"a\" 1}", "[1,]", "{", "\"unterminated", "[1] extra"] {
            match parse(bad) {
                Err(TelemetryError::Parse { .. }) => {}
                other => panic!("{bad:?} should fail to parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn fmt_f64_emits_legal_json_numbers() {
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
        // Whatever form it takes, it must round-trip through the parser.
        for v in [1e-9, 123456789.125, -0.001] {
            let parsed = parse(&fmt_f64(v)).unwrap();
            assert_eq!(parsed.as_f64(), Some(v));
        }
    }
}
