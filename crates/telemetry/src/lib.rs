//! `pico-telemetry`: structured tracing and metrics for the PICO
//! pipeline runtime.
//!
//! The paper's whole argument rests on *measured* per-stage timing —
//! pipeline period = max stage time (Sec. III), and APICO's switcher
//! reacts to observed workload (Eq. 15) — so every layer of this
//! workspace records what it does through one cheap handle:
//!
//! * [`Recorder`] — an enum-dispatch handle (`Noop` | `InMemory` |
//!   `Jsonl`) cloned into worker threads. The `Noop` variant performs
//!   no allocation and takes no lock; disabled telemetry costs one
//!   branch per call site.
//! * [`Event`] — a `Copy` record: span begin/end, instant, counter
//!   increment, or histogram sample, each tagged with an optional
//!   stage × device × task [`Ctx`] and `flops`/`bytes` payload.
//! * [`names`] — the one registry every span/counter name comes from;
//!   `cargo xtask lint` rejects ad-hoc string literals at call sites.
//! * [`trace`] — export to Chrome trace-event JSON (load the file in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)), plus a
//!   dependency-free parser/validator for round-tripping.
//! * [`summary`] — a plain-text per-stage timeline ([`TraceSummary`])
//!   derived from recorded events; the runtime's
//!   `RunReport::stage_stats` reconciles with it exactly (asserted by
//!   proptest, not by eye).
//! * [`Histogram`] — fixed log-bucket latency histograms for queue
//!   delays and span durations.
//!
//! # Example
//!
//! ```
//! use pico_telemetry::{names, Ctx, Recorder};
//!
//! let rec = Recorder::in_memory();
//! {
//!     let _span = rec.span(names::PLAN);
//!     // ... plan ...
//! }
//! rec.count(names::TASKS_COMPLETED, 1.0);
//! let events = rec.snapshot();
//! assert_eq!(events.len(), 3); // span begin + end, one counter
//! let json = pico_telemetry::trace::chrome_trace(&events);
//! assert!(json.starts_with("{\"traceEvents\":["));
//!
//! // The zero-cost path: a disabled recorder records nothing.
//! let off = Recorder::noop();
//! off.instant(names::PLAN_SWITCH, Ctx::default());
//! assert!(!off.is_enabled());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod alloc_counter;
pub mod clock;
mod error;
mod event;
mod histogram;
pub mod json;
pub mod names;
mod recorder;
pub mod summary;
pub mod trace;

pub use error::TelemetryError;
pub use event::{Ctx, Event, EventKind, Id};
pub use histogram::Histogram;
pub use recorder::{Recorder, SpanGuard};
pub use summary::{TenantSummary, TraceSummary};
