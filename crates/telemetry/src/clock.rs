//! The one sanctioned wall-clock read.
//!
//! Virtual-time discipline: the DES, the planners, and every analysis
//! pass must be deterministic functions of their inputs, so they must
//! never read the wall clock directly — `cargo xtask lint` (rule 7)
//! bans `Instant::now()` outside `pico-telemetry` and `pico-bench`.
//! Code that legitimately needs a deadline or a throttle reference
//! point (the runtime's pacing, the BFS search budget) takes it from
//! here, keeping every wall-clock read greppable in one place.

use std::time::Instant;

/// Reads the wall clock. The only `Instant::now()` outside
/// `pico-bench` the lint permits.
pub fn wall_now() -> Instant {
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let a = wall_now();
        let b = wall_now();
        assert!(b >= a);
    }
}
