use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::error::TelemetryError;
use crate::event::{Ctx, Event, EventKind};

/// A cheap, clonable handle every instrumented layer records through.
///
/// The handle is an enum over sinks, so dispatch is one branch — no
/// vtable, no generic parameter infecting `Runtime`/`Planner`
/// signatures:
///
/// * [`Recorder::noop`] — drops everything. No allocation, no lock,
///   no clock read; this is the default everywhere and the reason
///   telemetry can stay compiled into the hot path.
/// * [`Recorder::in_memory`] — appends to a shared buffer for
///   [`snapshot`](Recorder::snapshot), Chrome-trace export, and the
///   summary view.
/// * [`Recorder::jsonl`] — streams each event as one JSON line to a
///   file, for runs too long to buffer.
///
/// Timestamps are seconds since the recorder's construction
/// ([`now`](Recorder::now)). Producers with their own clock — the
/// runtime's shared run-start `Instant`, the simulator's virtual time —
/// use the `*_at` variants and pass explicit timestamps; that is what
/// lets `RunReport::stage_stats` and the recorded spans agree exactly.
#[derive(Clone, Debug, Default)]
pub enum Recorder {
    /// Discards every event.
    #[default]
    Noop,
    /// Buffers events in memory.
    InMemory(Arc<MemSink>),
    /// Streams events as JSON lines.
    Jsonl(Arc<JsonlSink>),
}

/// Shared state of an in-memory recorder.
#[derive(Debug)]
pub struct MemSink {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

/// Shared state of a JSONL-streaming recorder.
#[derive(Debug)]
pub struct JsonlSink {
    epoch: Instant,
    out: Mutex<BufWriter<File>>,
}

impl Recorder {
    /// A disabled recorder: every call is a branch and a return.
    pub fn noop() -> Self {
        Recorder::Noop
    }

    /// A recorder buffering events for later export.
    pub fn in_memory() -> Self {
        Recorder::InMemory(Arc::new(MemSink {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }))
    }

    /// A recorder streaming one JSON object per event to `path`.
    pub fn jsonl(path: impl AsRef<Path>) -> Result<Self, TelemetryError> {
        let file = File::create(path)?;
        Ok(Recorder::Jsonl(Arc::new(JsonlSink {
            epoch: Instant::now(),
            out: Mutex::new(BufWriter::new(file)),
        })))
    }

    /// Whether events are kept. Callers building an expensive payload
    /// should guard on this; plain `record` calls don't need to.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, Recorder::Noop)
    }

    /// Seconds since this recorder was constructed (0.0 when disabled —
    /// a `Noop` recorder never reads the clock).
    pub fn now(&self) -> f64 {
        match self {
            Recorder::Noop => 0.0,
            Recorder::InMemory(m) => m.epoch.elapsed().as_secs_f64(),
            Recorder::Jsonl(j) => j.epoch.elapsed().as_secs_f64(),
        }
    }

    /// Records one event. The `Noop` arm returns before touching the
    /// event, so building it with `Copy` constructors stays free.
    pub fn record(&self, event: Event) {
        match self {
            Recorder::Noop => {}
            Recorder::InMemory(m) => m.events.lock().expect("telemetry buffer").push(event),
            Recorder::Jsonl(j) => {
                let mut out = j.out.lock().expect("telemetry sink");
                // A full disk mid-run shouldn't panic the pipeline;
                // drop the line and let `flush` surface the error.
                let _ = write_jsonl_line(&mut *out, &event);
            }
        }
    }

    /// Opens a span named `name` with no location; it closes (and the
    /// pair is recorded) when the returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_with(name, Ctx::default())
    }

    /// Opens a located span; closes when the guard drops.
    pub fn span_with(&self, name: &'static str, ctx: Ctx) -> SpanGuard<'_> {
        let begin = self.now();
        self.record(Event::span_begin(begin, name, ctx));
        SpanGuard {
            rec: self,
            name,
            ctx,
        }
    }

    /// Records a complete span from explicit timestamps, with its
    /// FLOPs/bytes payload on the begin event. This is the runtime's
    /// workhorse: it measures with its own clock, uses the same numbers
    /// for `StageStat`, and hands them here verbatim.
    pub fn span_at(
        &self,
        name: &'static str,
        ctx: Ctx,
        begin: f64,
        end: f64,
        value: f64,
        bytes: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.record(
            Event::span_begin(begin, name, ctx)
                .with_value(value)
                .with_bytes(bytes),
        );
        self.record(Event::span_end(end, name, ctx));
    }

    /// Records a point-in-time marker at [`now`](Recorder::now).
    pub fn instant(&self, name: &'static str, ctx: Ctx) {
        if !self.is_enabled() {
            return;
        }
        let ts = self.now();
        self.record(Event::instant(ts, name, ctx));
    }

    /// Records a point-in-time marker at an explicit timestamp, with a
    /// value payload.
    pub fn instant_at(&self, name: &'static str, ctx: Ctx, ts: f64, value: f64) {
        self.record(Event::instant(ts, name, ctx).with_value(value));
    }

    /// Increments a counter by `delta` at [`now`](Recorder::now).
    pub fn count(&self, name: &'static str, delta: f64) {
        if !self.is_enabled() {
            return;
        }
        let ts = self.now();
        self.count_at(name, Ctx::default(), ts, delta);
    }

    /// Increments a counter at an explicit timestamp.
    pub fn count_at(&self, name: &'static str, ctx: Ctx, ts: f64, delta: f64) {
        self.record(Event {
            ts,
            name,
            kind: EventKind::Counter,
            ctx,
            value: delta,
            bytes: 0,
        });
    }

    /// Records one histogram sample at [`now`](Recorder::now).
    pub fn observe(&self, name: &'static str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let ts = self.now();
        self.observe_at(name, Ctx::default(), ts, value);
    }

    /// Records one histogram sample at an explicit timestamp.
    pub fn observe_at(&self, name: &'static str, ctx: Ctx, ts: f64, value: f64) {
        self.record(Event {
            ts,
            name,
            kind: EventKind::Sample,
            ctx,
            value,
            bytes: 0,
        });
    }

    /// A copy of everything recorded so far. Empty for `Noop` and for
    /// the streaming JSONL sink (whose events are already on disk).
    pub fn snapshot(&self) -> Vec<Event> {
        match self {
            Recorder::InMemory(m) => m.events.lock().expect("telemetry buffer").clone(),
            _ => Vec::new(),
        }
    }

    /// Flushes a streaming sink; a no-op for the others.
    pub fn flush(&self) -> Result<(), TelemetryError> {
        if let Recorder::Jsonl(j) = self {
            j.out.lock().expect("telemetry sink").flush()?;
        }
        Ok(())
    }
}

/// Closes its span when dropped. Returned by [`Recorder::span`] and
/// [`Recorder::span_with`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    rec: &'a Recorder,
    name: &'static str,
    ctx: Ctx,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.rec.now();
        self.rec.record(Event::span_end(end, self.name, self.ctx));
    }
}

fn write_jsonl_line(out: &mut impl Write, e: &Event) -> std::io::Result<()> {
    write!(
        out,
        "{{\"ts\":{},\"name\":\"{}\",\"kind\":\"{}\"",
        crate::json::fmt_f64(e.ts),
        e.name,
        e.kind.label()
    )?;
    if let Some(stage) = e.ctx.stage.get() {
        write!(out, ",\"stage\":{stage}")?;
    }
    if let Some(device) = e.ctx.device.get() {
        write!(out, ",\"device\":{device}")?;
    }
    if let Some(task) = e.ctx.task.get() {
        write!(out, ",\"task\":{task}")?;
    }
    if e.value != 0.0 {
        write!(out, ",\"value\":{}", crate::json::fmt_f64(e.value))?;
    }
    if e.bytes != 0 {
        write!(out, ",\"bytes\":{}", e.bytes)?;
    }
    writeln!(out, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;

    #[test]
    fn noop_records_nothing_and_reads_no_clock() {
        let rec = Recorder::noop();
        assert!(!rec.is_enabled());
        assert_eq!(rec.now(), 0.0);
        rec.record(Event::instant(1.0, names::PLAN, Ctx::default()));
        rec.count(names::TASKS_COMPLETED, 1.0);
        {
            let _g = rec.span(names::PLAN);
        }
        assert!(rec.snapshot().is_empty());
        assert!(rec.flush().is_ok());
    }

    #[test]
    fn in_memory_keeps_ordered_events() {
        let rec = Recorder::in_memory();
        {
            let _g = rec.span_with(names::COMPUTE, Ctx::stage(0).on_device(1).for_task(2));
        }
        rec.span_at(names::SCATTER, Ctx::stage(1), 0.5, 0.75, 3.0, 128);
        rec.observe(names::LAMBDA_ESTIMATE, 9.5);
        let events = rec.snapshot();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, EventKind::SpanBegin);
        assert_eq!(events[1].kind, EventKind::SpanEnd);
        assert!(events[1].ts >= events[0].ts);
        assert_eq!(events[2].value, 3.0);
        assert_eq!(events[2].bytes, 128);
        assert_eq!(events[3].ts, 0.75);
        assert_eq!(events[4].kind, EventKind::Sample);
    }

    #[test]
    fn clones_share_one_buffer() {
        let rec = Recorder::in_memory();
        let other = rec.clone();
        other.count_at(names::TASKS_COMPLETED, Ctx::default(), 1.0, 1.0);
        assert_eq!(rec.snapshot().len(), 1);
    }

    #[test]
    fn jsonl_streams_one_line_per_event() {
        let path =
            std::env::temp_dir().join(format!("pico-telemetry-test-{}.jsonl", std::process::id()));
        let rec = Recorder::jsonl(&path).expect("create sink");
        assert!(rec.is_enabled());
        rec.span_at(
            names::COMPUTE,
            Ctx::stage(0).on_device(3).for_task(7),
            1.0,
            2.5,
            10.0,
            64,
        );
        rec.flush().expect("flush");
        let text = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"compute\""));
        assert!(lines[0].contains("\"kind\":\"span_begin\""));
        assert!(lines[0].contains("\"device\":3"));
        assert!(lines[0].contains("\"bytes\":64"));
        assert!(lines[1].contains("\"kind\":\"span_end\""));
        assert!(lines[1].contains("\"ts\":2.5"));
        // JSONL streams to disk; nothing is buffered for snapshot.
        assert!(rec.snapshot().is_empty());
    }
}
