/// A fixed log-bucket histogram for latency-like samples (seconds).
///
/// Buckets double from 1 µs to ~8.4 s (24 buckets) with an overflow
/// bucket above; that is enough resolution to tell a 2 ms stage from a
/// 3 ms one while keeping the struct flat and copyable into summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; Histogram::BUCKETS + 1],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    const BUCKETS: usize = 24;
    const BASE: f64 = 1e-6;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; Histogram::BUCKETS + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket(value: f64) -> usize {
        if value <= Histogram::BASE {
            return 0;
        }
        let idx = (value / Histogram::BASE).log2().ceil() as usize;
        idx.min(Histogram::BUCKETS)
    }

    /// Upper bound of bucket `i` in seconds (`INFINITY` for overflow).
    pub fn bucket_bound(i: usize) -> f64 {
        if i >= Histogram::BUCKETS {
            f64::INFINITY
        } else {
            Histogram::BASE * (1u64 << i) as f64
        }
    }

    /// Adds one sample. Non-finite samples are ignored.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.counts[Histogram::bucket(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Upper bound of the bucket holding quantile `q` (0.0..=1.0) — an
    /// estimate bounded by bucket resolution, clamped to the observed
    /// max so coarse upper buckets don't over-report.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Histogram::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn tracks_exact_moments_and_bucketed_quantiles() {
        let mut h = Histogram::new();
        for v in [0.001, 0.002, 0.004, 0.1] {
            h.observe(v);
        }
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 0.107).abs() < 1e-12);
        assert_eq!(h.min(), 0.001);
        assert_eq!(h.max(), 0.1);
        // Median falls in the bucket containing 0.002.
        let p50 = h.quantile(0.5);
        assert!((0.002..=0.004).contains(&p50), "p50={p50}");
        assert_eq!(h.quantile(1.0), 0.1);
    }

    #[test]
    fn overflow_bucket_clamps_to_max() {
        let mut h = Histogram::new();
        h.observe(1000.0);
        assert_eq!(h.quantile(0.99), 1000.0);
    }
}
