//! A reusable counting-allocator harness for allocation-regression
//! tests.
//!
//! [`install_counting_allocator!`] expands to a `#[global_allocator]`
//! that counts every `alloc`/`realloc` call, plus an
//! `allocation_count()` reader. The expansion happens in the *caller's*
//! crate (a test binary), so this library itself stays
//! `forbid(unsafe_code)`-clean while tests across the workspace share
//! one vetted harness instead of re-rolling the `GlobalAlloc` wrapper.

/// Installs a process-wide allocation counter in the invoking crate.
///
/// Expands to a counting `#[global_allocator]` (wrapping
/// [`std::alloc::System`]) and a free function `allocation_count() ->
/// usize` returning the number of `alloc` + `realloc` calls since
/// process start. Invoke once, at the top level of a test binary:
///
/// ```ignore
/// pico_telemetry::install_counting_allocator!();
///
/// #[test]
/// fn hot_path_does_not_allocate() {
///     let before = allocation_count();
///     // ... exercise the hot path ...
///     assert_eq!(allocation_count() - before, 0);
/// }
/// ```
///
/// The counter is global to the process; in multi-threaded tests,
/// deltas include every thread's allocations.
#[macro_export]
macro_rules! install_counting_allocator {
    () => {
        static __PICO_ALLOCATIONS: ::std::sync::atomic::AtomicUsize =
            ::std::sync::atomic::AtomicUsize::new(0);

        struct __PicoCountingAlloc;

        unsafe impl ::std::alloc::GlobalAlloc for __PicoCountingAlloc {
            unsafe fn alloc(&self, layout: ::std::alloc::Layout) -> *mut u8 {
                __PICO_ALLOCATIONS.fetch_add(1, ::std::sync::atomic::Ordering::SeqCst);
                ::std::alloc::System.alloc(layout)
            }

            unsafe fn dealloc(&self, ptr: *mut u8, layout: ::std::alloc::Layout) {
                ::std::alloc::System.dealloc(ptr, layout)
            }

            unsafe fn realloc(
                &self,
                ptr: *mut u8,
                layout: ::std::alloc::Layout,
                new_size: usize,
            ) -> *mut u8 {
                __PICO_ALLOCATIONS.fetch_add(1, ::std::sync::atomic::Ordering::SeqCst);
                ::std::alloc::System.realloc(ptr, layout, new_size)
            }
        }

        #[global_allocator]
        static __PICO_GLOBAL_ALLOC: __PicoCountingAlloc = __PicoCountingAlloc;

        /// Allocator calls (`alloc` + `realloc`) since process start.
        #[allow(dead_code)]
        fn allocation_count() -> usize {
            __PICO_ALLOCATIONS.load(::std::sync::atomic::Ordering::SeqCst)
        }
    };
}
