//! Plain-text per-stage timeline summaries.
//!
//! [`TraceSummary`] aggregates a recorded event stream (or a trace file
//! read back through [`crate::trace::parse_chrome_trace`]) into the numbers
//! the paper's analysis is phrased in: per-stage busy time, the
//! bottleneck stage that sets the pipeline period, bytes moved, and
//! sample statistics for the adaptive scheduler's estimates.
//!
//! Per-stage busy time sums `stage_busy` span durations in begin-time
//! order — the same addends in the same order the runtime uses for
//! `RunReport::stage_stats`, so the two agree to the last bit (a
//! property test in the workspace root asserts exact equality).

use std::fmt;

use crate::event::{Event, EventKind};
use crate::histogram::Histogram;
use crate::names;
use crate::trace::{pair_spans, ParsedTrace, TraceSpan};

/// Aggregates for one pipeline stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageSummary {
    /// Stage index.
    pub stage: u32,
    /// Number of `stage_busy` spans (tasks the stage served).
    pub tasks: u64,
    /// Total busy seconds, summed in span begin order.
    pub busy: f64,
    /// Seconds inside `compute` spans.
    pub compute: f64,
    /// Seconds inside `scatter` spans.
    pub scatter: f64,
    /// Seconds inside `stitch` spans.
    pub stitch: f64,
    /// FLOPs summed over this stage's spans.
    pub flops: f64,
    /// Bytes moved, summed over this stage's spans.
    pub bytes: u64,
}

impl StageSummary {
    /// Mean busy seconds per task (0.0 when no tasks ran).
    pub fn busy_per_task(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.busy / self.tasks as f64
        }
    }
}

/// Admission-control aggregates for one serving-layer tenant, counted
/// from `task_admitted` / `task_rejected` instants.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSummary {
    /// Tenant index (the serving layer's registration order).
    pub tenant: u32,
    /// Tasks admitted into the tenant's queue.
    pub admitted: u64,
    /// Tasks rejected with a typed admission error.
    pub rejected: u64,
}

/// A per-stage timeline view over recorded telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Per-stage aggregates, sorted by stage index.
    pub stages: Vec<StageSummary>,
    /// Per-tenant admission aggregates, sorted by tenant index (empty
    /// for traces without a serving layer).
    pub tenants: Vec<TenantSummary>,
    /// Warm swaps drained (`swap_drained` instants).
    pub swaps: u64,
    /// Seconds spent planning (`plan` spans).
    pub plan_time: f64,
    /// Wall window covered by spans: latest end − earliest begin.
    pub window: f64,
    /// Final `tasks_completed` counter value.
    pub tasks_completed: f64,
    /// Histogram per sample name, first-seen order.
    pub samples: Vec<(String, Histogram)>,
}

impl TraceSummary {
    /// Builds a summary from a live recorder snapshot.
    pub fn from_events(events: &[Event]) -> Self {
        let spans = pair_spans(events);
        let samples: Vec<(&str, f64)> = events
            .iter()
            .filter(|e| e.kind == EventKind::Sample)
            .map(|e| (e.name, e.value))
            .collect();
        let instants: Vec<(&str, Option<u32>)> = events
            .iter()
            .filter(|e| e.kind == EventKind::Instant)
            .map(|e| (e.name, e.ctx.tenant.get()))
            .collect();
        let tasks_completed = events
            .iter()
            .filter(|e| e.kind == EventKind::Counter && e.name == names::TASKS_COMPLETED)
            .map(|e| e.value)
            .sum();
        Self::build(&spans, &samples, &instants, tasks_completed)
    }

    /// Builds a summary from a parsed Chrome trace file.
    pub fn from_trace(trace: &ParsedTrace) -> Self {
        let samples: Vec<(&str, f64)> = trace
            .samples
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let instants: Vec<(&str, Option<u32>)> = trace
            .instant_records
            .iter()
            .map(|r| (r.name.as_str(), r.tenant))
            .collect();
        let tasks_completed = trace
            .counter_totals
            .iter()
            .find(|(n, _)| n == names::TASKS_COMPLETED)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        Self::build(&trace.spans, &samples, &instants, tasks_completed)
    }

    fn build(
        spans: &[TraceSpan],
        samples: &[(&str, f64)],
        instants: &[(&str, Option<u32>)],
        tasks_completed: f64,
    ) -> Self {
        let mut summary = TraceSummary {
            tasks_completed,
            ..TraceSummary::default()
        };
        let mut earliest = f64::INFINITY;
        let mut latest = f64::NEG_INFINITY;
        for span in spans {
            earliest = earliest.min(span.begin);
            latest = latest.max(span.begin + span.dur);
            if span.name == names::PLAN {
                summary.plan_time += span.dur;
                continue;
            }
            let Some(stage) = span.stage else { continue };
            let entry = match summary.stages.iter_mut().find(|s| s.stage == stage) {
                Some(entry) => entry,
                None => {
                    summary.stages.push(StageSummary {
                        stage,
                        ..StageSummary::default()
                    });
                    summary.stages.last_mut().unwrap()
                }
            };
            entry.flops += span.value;
            entry.bytes += span.bytes;
            match span.name.as_str() {
                names::STAGE_BUSY => {
                    entry.tasks += 1;
                    entry.busy += span.dur;
                }
                names::COMPUTE => entry.compute += span.dur,
                names::SCATTER => entry.scatter += span.dur,
                names::STITCH => entry.stitch += span.dur,
                _ => {}
            }
        }
        summary.stages.sort_by_key(|s| s.stage);
        for (name, tenant) in instants {
            match *name {
                n if n == names::SWAP_DRAINED => summary.swaps += 1,
                n if n == names::TASK_ADMITTED || n == names::TASK_REJECTED => {
                    let Some(tenant) = tenant else { continue };
                    let entry = match summary.tenants.iter_mut().find(|t| t.tenant == *tenant) {
                        Some(entry) => entry,
                        None => {
                            summary.tenants.push(TenantSummary {
                                tenant: *tenant,
                                ..TenantSummary::default()
                            });
                            summary.tenants.last_mut().unwrap()
                        }
                    };
                    if n == names::TASK_ADMITTED {
                        entry.admitted += 1;
                    } else {
                        entry.rejected += 1;
                    }
                }
                _ => {}
            }
        }
        summary.tenants.sort_by_key(|t| t.tenant);
        if latest > earliest {
            summary.window = latest - earliest;
        }
        for (name, value) in samples {
            let hist = match summary.samples.iter_mut().find(|(n, _)| n == name) {
                Some((_, hist)) => hist,
                None => {
                    summary.samples.push((name.to_string(), Histogram::new()));
                    &mut summary.samples.last_mut().unwrap().1
                }
            };
            hist.observe(*value);
        }
        summary
    }

    /// Total busy seconds per stage, indexed by stage — the derived
    /// view `RunReport::stage_stats` must reconcile with.
    pub fn stage_busy(&self) -> Vec<(u32, f64)> {
        self.stages.iter().map(|s| (s.stage, s.busy)).collect()
    }

    /// The stage with the largest total busy time — the measured
    /// bottleneck that sets the pipeline period.
    pub fn bottleneck_stage(&self) -> Option<u32> {
        self.stages
            .iter()
            .max_by(|a, b| a.busy.total_cmp(&b.busy))
            .map(|s| s.stage)
    }

    /// Mean busy seconds per task of the bottleneck stage — the
    /// measured pipeline period (Sec. III: period = max stage time).
    pub fn measured_period(&self) -> Option<f64> {
        self.stages
            .iter()
            .map(StageSummary::busy_per_task)
            .max_by(f64::total_cmp)
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace summary: {} stage(s), {} task(s), window {:.6} s",
            self.stages.len(),
            self.tasks_completed,
            self.window
        )?;
        if self.plan_time > 0.0 {
            writeln!(f, "planning: {:.6} s", self.plan_time)?;
        }
        if !self.stages.is_empty() {
            writeln!(
                f,
                "{:>5} {:>6} {:>10} {:>10} {:>10} {:>10} {:>12}  load",
                "stage", "tasks", "busy(s)", "compute(s)", "scatter(s)", "stitch(s)", "bytes"
            )?;
            let max_busy = self
                .stages
                .iter()
                .map(|s| s.busy)
                .max_by(f64::total_cmp)
                .unwrap_or(0.0);
            for s in &self.stages {
                let width = if max_busy > 0.0 {
                    ((s.busy / max_busy) * 20.0).round() as usize
                } else {
                    0
                };
                writeln!(
                    f,
                    "{:>5} {:>6} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>12}  {}",
                    s.stage,
                    s.tasks,
                    s.busy,
                    s.compute,
                    s.scatter,
                    s.stitch,
                    s.bytes,
                    "#".repeat(width)
                )?;
            }
            if let (Some(stage), Some(period)) = (self.bottleneck_stage(), self.measured_period()) {
                writeln!(
                    f,
                    "bottleneck: stage {stage} (measured period {period:.6} s/task)"
                )?;
            }
        }
        if !self.tenants.is_empty() {
            writeln!(f, "{:>6} {:>9} {:>9}", "tenant", "admitted", "rejected")?;
            for t in &self.tenants {
                writeln!(f, "{:>6} {:>9} {:>9}", t.tenant, t.admitted, t.rejected)?;
            }
        }
        if self.swaps > 0 {
            writeln!(f, "warm swaps drained: {}", self.swaps)?;
        }
        for (name, hist) in &self.samples {
            writeln!(
                f,
                "sample {name}: n={} mean={:.6} min={:.6} max={:.6} p95~{:.6}",
                hist.count(),
                hist.mean(),
                hist.min(),
                hist.max(),
                hist.quantile(0.95)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Ctx;
    use crate::recorder::Recorder;
    use crate::trace::{chrome_trace, parse_chrome_trace};

    fn record_two_stage_run(rec: &Recorder) {
        for task in 0..3 {
            let t0 = task as f64 * 0.010;
            rec.span_at(
                names::STAGE_BUSY,
                Ctx::stage(0).for_task(task),
                t0,
                t0 + 0.004,
                0.0,
                0,
            );
            rec.span_at(
                names::COMPUTE,
                Ctx::stage(0).on_device(0).for_task(task),
                t0 + 0.001,
                t0 + 0.003,
                1e6,
                256,
            );
            rec.span_at(
                names::STAGE_BUSY,
                Ctx::stage(1).for_task(task),
                t0 + 0.004,
                t0 + 0.010,
                0.0,
                0,
            );
            rec.count_at(names::TASKS_COMPLETED, Ctx::default(), t0 + 0.010, 1.0);
        }
        rec.observe_at(names::LAMBDA_ESTIMATE, Ctx::default(), 0.030, 100.0);
    }

    #[test]
    fn summarizes_stage_busy_and_bottleneck() {
        let rec = Recorder::in_memory();
        record_two_stage_run(&rec);
        let summary = TraceSummary::from_events(&rec.snapshot());
        assert_eq!(summary.stages.len(), 2);
        assert_eq!(summary.tasks_completed, 3.0);
        let busy = summary.stage_busy();
        assert!((busy[0].1 - 0.012).abs() < 1e-12);
        assert!((busy[1].1 - 0.018).abs() < 1e-12);
        assert_eq!(summary.bottleneck_stage(), Some(1));
        assert!((summary.measured_period().unwrap() - 0.006).abs() < 1e-12);
        assert_eq!(summary.stages[0].flops, 3e6);
        assert_eq!(summary.stages[0].bytes, 768);
        assert!((summary.stages[0].compute - 0.006).abs() < 1e-12);
        assert!((summary.window - 0.030).abs() < 1e-12);
    }

    #[test]
    fn file_and_live_summaries_agree() {
        let rec = Recorder::in_memory();
        record_two_stage_run(&rec);
        let events = rec.snapshot();
        let live = TraceSummary::from_events(&events);
        let parsed = parse_chrome_trace(&chrome_trace(&events)).expect("round trip");
        let from_file = TraceSummary::from_trace(&parsed);
        assert_eq!(live.stage_busy().len(), from_file.stage_busy().len());
        for ((s_live, b_live), (s_file, b_file)) in
            live.stage_busy().into_iter().zip(from_file.stage_busy())
        {
            assert_eq!(s_live, s_file);
            // File timestamps pass through µs conversion; allow only
            // that rounding, nothing structural.
            assert!((b_live - b_file).abs() < 1e-9, "{b_live} vs {b_file}");
        }
        assert_eq!(live.tasks_completed, from_file.tasks_completed);
        assert_eq!(live.bottleneck_stage(), from_file.bottleneck_stage());
        assert_eq!(live.samples.len(), from_file.samples.len());
    }

    #[test]
    fn display_renders_a_timeline() {
        let rec = Recorder::in_memory();
        record_two_stage_run(&rec);
        let text = TraceSummary::from_events(&rec.snapshot()).to_string();
        assert!(text.contains("trace summary: 2 stage(s)"));
        assert!(text.contains("bottleneck: stage 1"));
        assert!(text.contains("sample lambda_estimate"));
        assert!(text.contains('#'));
    }

    #[test]
    fn tenant_rows_and_swaps_from_serve_instants() {
        let rec = Recorder::in_memory();
        // Two tenants: tenant 0 admits 3 and loses 1 to admission
        // control, tenant 1 admits 1. One warm swap drains, and the
        // batcher closes batches of 1 and 3.
        for (i, t) in [0usize, 0, 1, 0].iter().enumerate() {
            rec.instant_at(
                names::TASK_ADMITTED,
                Ctx::tenant(*t).for_task(i),
                i as f64 * 0.01,
                1.0,
            );
        }
        rec.instant_at(names::TASK_REJECTED, Ctx::tenant(0), 0.05, 4.0);
        rec.observe_at(names::BATCH_FORMED, Ctx::default(), 0.06, 1.0);
        rec.observe_at(names::BATCH_FORMED, Ctx::default(), 0.07, 3.0);
        rec.instant_at(names::SWAP_DRAINED, Ctx::stage(0), 0.08, 4.0);
        let events = rec.snapshot();
        let live = TraceSummary::from_events(&events);
        assert_eq!(live.swaps, 1);
        assert_eq!(live.tenants.len(), 2);
        assert_eq!(live.tenants[0].tenant, 0);
        assert_eq!(live.tenants[0].admitted, 3);
        assert_eq!(live.tenants[0].rejected, 1);
        assert_eq!(live.tenants[1].admitted, 1);
        assert_eq!(live.tenants[1].rejected, 0);
        let batches = live
            .samples
            .iter()
            .find(|(n, _)| n == names::BATCH_FORMED)
            .map(|(_, h)| h)
            .expect("batch_formed histogram");
        assert!(batches.min() < batches.max(), "batch size adapted");
        // The same rows survive a trip through the trace file format.
        let parsed = parse_chrome_trace(&chrome_trace(&events)).expect("round trip");
        let from_file = TraceSummary::from_trace(&parsed);
        assert_eq!(from_file.tenants, live.tenants);
        assert_eq!(from_file.swaps, 1);
        let text = live.to_string();
        assert!(text.contains("tenant"), "{text}");
        assert!(text.contains("warm swaps drained: 1"), "{text}");
    }

    #[test]
    fn empty_summary_is_quiet() {
        let summary = TraceSummary::from_events(&[]);
        assert!(summary.stages.is_empty());
        assert_eq!(summary.bottleneck_stage(), None);
        assert_eq!(summary.measured_period(), None);
        assert_eq!(summary.window, 0.0);
    }
}
