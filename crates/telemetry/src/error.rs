use std::fmt;

/// Errors from telemetry export, parsing, and sinks.
#[derive(Debug)]
#[non_exhaustive]
pub enum TelemetryError {
    /// The JSONL sink could not be written.
    Io(std::io::Error),
    /// A trace document failed to parse; the payload says where.
    Parse {
        /// Byte offset the parser stopped at.
        offset: usize,
        /// What was wrong there.
        reason: String,
    },
    /// A parsed trace document is structurally not a Chrome trace
    /// (missing `traceEvents`, bad phase, unordered ts, ...).
    InvalidTrace(String),
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Io(e) => write!(f, "telemetry sink I/O error: {e}"),
            TelemetryError::Parse { offset, reason } => {
                write!(f, "trace JSON parse error at byte {offset}: {reason}")
            }
            TelemetryError::InvalidTrace(reason) => {
                write!(f, "not a valid Chrome trace: {reason}")
            }
        }
    }
}

impl std::error::Error for TelemetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TelemetryError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TelemetryError {
    fn from(e: std::io::Error) -> Self {
        TelemetryError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_location() {
        let e = TelemetryError::Parse {
            offset: 12,
            reason: "expected ':'".into(),
        };
        assert!(e.to_string().contains("byte 12"));
        assert!(TelemetryError::InvalidTrace("no traceEvents".into())
            .to_string()
            .contains("no traceEvents"));
    }
}
