//! Chrome trace-event export and round-tripping.
//!
//! [`chrome_trace`] serializes recorded events into the trace-event
//! JSON format that `chrome://tracing` and Perfetto load directly:
//! spans become `"X"` complete events, counters `"C"` events carrying a
//! running total, instants and samples `"i"` events. Output is
//! deterministic — fields in a fixed order, events sorted by timestamp
//! — so golden tests can compare strings. [`parse_chrome_trace`] reads
//! the same format back (strictly: unknown phases, unsorted timestamps,
//! or malformed events are errors), which is what `pico trace
//! validate`/`summarize` run on files from disk.

use std::collections::HashMap;

use crate::error::TelemetryError;
use crate::event::{Event, EventKind};
use crate::json::{self, Value};

/// One completed span, as recovered from an event stream or a trace
/// file. Times are in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span name.
    pub name: String,
    /// Stage index, if the span was located.
    pub stage: Option<u32>,
    /// Device id, if the span was located.
    pub device: Option<u32>,
    /// Task index, if the span was located.
    pub task: Option<u32>,
    /// Serving-layer tenant index, if the span was located.
    pub tenant: Option<u32>,
    /// Begin timestamp, seconds.
    pub begin: f64,
    /// Duration, seconds.
    pub dur: f64,
    /// FLOPs (or other value payload) attached at begin.
    pub value: f64,
    /// Bytes moved.
    pub bytes: u64,
}

/// A trace read back from Chrome trace JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedTrace {
    /// Completed spans.
    pub spans: Vec<TraceSpan>,
    /// `(name, value)` pairs from instant events carrying a value
    /// payload (histogram samples export this way).
    pub samples: Vec<(String, f64)>,
    /// Final running total per counter name, first-seen order.
    pub counter_totals: Vec<(String, f64)>,
    /// Number of counter events.
    pub counters: usize,
    /// Number of instant events (with or without a value).
    pub instants: usize,
    /// `(name, ts seconds)` for every instant event, in stream order —
    /// lets failover tests assert event ordering (`device_failed`
    /// before `plan_degraded`) from a re-parsed trace.
    pub instant_events: Vec<(String, f64)>,
    /// Every instant event with its full location and payload — what
    /// `instant_events` drops. Per-tenant serving summaries are built
    /// from these.
    pub instant_records: Vec<InstantRecord>,
}

/// One instant event as recovered from a trace file, location and
/// payload included.
#[derive(Debug, Clone, PartialEq)]
pub struct InstantRecord {
    /// Instant name.
    pub name: String,
    /// Timestamp, seconds.
    pub ts: f64,
    /// Stage index, if located.
    pub stage: Option<u32>,
    /// Device id, if located.
    pub device: Option<u32>,
    /// Task index, if located.
    pub task: Option<u32>,
    /// Serving-layer tenant index, if located.
    pub tenant: Option<u32>,
    /// Value payload (0.0 when absent).
    pub value: f64,
}

impl ParsedTrace {
    /// Total number of events parsed.
    pub fn len(&self) -> usize {
        self.spans.len() + self.counters + self.instants
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Pairs span begin/end events into completed [`TraceSpan`]s.
///
/// Pairing key is `(name, ctx)`; nested reopenings match LIFO. Ends
/// without a begin and begins without an end are dropped — the runtime
/// emits balanced pairs, so anything unbalanced means a truncated
/// stream, and partial spans have no meaningful duration.
pub fn pair_spans(events: &[Event]) -> Vec<TraceSpan> {
    type Key = (&'static str, crate::Id, crate::Id, crate::Id, crate::Id);
    let mut open: HashMap<Key, Vec<&Event>> = HashMap::new();
    let mut spans = Vec::new();
    for e in events {
        let key = (e.name, e.ctx.stage, e.ctx.device, e.ctx.task, e.ctx.tenant);
        match e.kind {
            EventKind::SpanBegin => open.entry(key).or_default().push(e),
            EventKind::SpanEnd => {
                if let Some(begin) = open.get_mut(&key).and_then(|stack| stack.pop()) {
                    spans.push(TraceSpan {
                        name: e.name.to_string(),
                        stage: e.ctx.stage.get(),
                        device: e.ctx.device.get(),
                        task: e.ctx.task.get(),
                        tenant: e.ctx.tenant.get(),
                        begin: begin.ts,
                        dur: e.ts - begin.ts,
                        value: begin.value,
                        bytes: begin.bytes,
                    });
                }
            }
            _ => {}
        }
    }
    spans.sort_by(|a, b| a.begin.total_cmp(&b.begin));
    spans
}

/// Serializes events to Chrome trace-event JSON.
///
/// Deterministic: events are sorted by timestamp (stable — recorded
/// order breaks ties), every object writes its fields in the same
/// order, and floats use one formatting routine. Timestamps convert
/// from seconds to the format's microseconds.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut records: Vec<(f64, String)> = Vec::new();
    let mut totals: HashMap<&'static str, f64> = HashMap::new();
    for span in pair_spans(events) {
        let mut args = String::new();
        push_arg_u32(&mut args, "stage", span.stage);
        push_arg_u32(&mut args, "device", span.device);
        push_arg_u32(&mut args, "task", span.task);
        push_arg_u32(&mut args, "tenant", span.tenant);
        if span.value != 0.0 {
            push_arg_raw(&mut args, "flops", &json::fmt_f64(span.value));
        }
        if span.bytes != 0 {
            push_arg_raw(&mut args, "bytes", &span.bytes.to_string());
        }
        let tid = span.device.or(span.stage).unwrap_or(0);
        records.push((
            span.begin,
            format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{{}}}}}",
                json::escape(&span.name),
                json::fmt_f64(span.begin * 1e6),
                json::fmt_f64(span.dur.max(0.0) * 1e6),
                tid,
                args
            ),
        ));
    }
    for e in events {
        match e.kind {
            EventKind::Counter => {
                let total = totals.entry(e.name).or_insert(0.0);
                *total += e.value;
                records.push((
                    e.ts,
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\"args\":{{\"value\":{}}}}}",
                        json::escape(e.name),
                        json::fmt_f64(e.ts * 1e6),
                        json::fmt_f64(*total)
                    ),
                ));
            }
            EventKind::Instant | EventKind::Sample => {
                let tid = e.ctx.device.get().or(e.ctx.stage.get()).unwrap_or(0);
                let mut args = String::new();
                push_arg_u32(&mut args, "stage", e.ctx.stage.get());
                push_arg_u32(&mut args, "device", e.ctx.device.get());
                push_arg_u32(&mut args, "task", e.ctx.task.get());
                push_arg_u32(&mut args, "tenant", e.ctx.tenant.get());
                if e.value != 0.0 || e.kind == EventKind::Sample {
                    push_arg_raw(&mut args, "value", &json::fmt_f64(e.value));
                }
                records.push((
                    e.ts,
                    format!(
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"g\",\"args\":{{{}}}}}",
                        json::escape(e.name),
                        json::fmt_f64(e.ts * 1e6),
                        tid,
                        args
                    ),
                ));
            }
            EventKind::SpanBegin | EventKind::SpanEnd => {}
        }
    }
    records.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut out = String::from("{\"traceEvents\":[");
    for (i, (_, rec)) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(rec);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn push_arg_u32(args: &mut String, key: &str, v: Option<u32>) {
    if let Some(v) = v {
        push_arg_raw(args, key, &v.to_string());
    }
}

fn push_arg_raw(args: &mut String, key: &str, raw: &str) {
    if !args.is_empty() {
        args.push(',');
    }
    args.push_str(&format!("\"{key}\":{raw}"));
}

/// Parses and validates Chrome trace-event JSON produced by
/// [`chrome_trace`] (or compatible tools).
///
/// Strict on structure: the document must be an object with a
/// `traceEvents` array; every event needs a string `name`, a phase in
/// `{"X","C","i"}`, and a finite non-negative `ts`; `"X"` events need a
/// finite non-negative `dur`; and timestamps must be non-decreasing.
pub fn parse_chrome_trace(text: &str) -> Result<ParsedTrace, TelemetryError> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| bad("missing traceEvents array"))?;
    let mut trace = ParsedTrace::default();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad(&format!("event {i}: missing string name")))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| bad(&format!("event {i}: missing phase")))?;
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| bad(&format!("event {i}: missing or negative ts")))?;
        if ts < last_ts {
            return Err(bad(&format!("event {i}: ts not sorted ascending")));
        }
        last_ts = ts;
        let arg_f64 = |key: &str| {
            e.get("args")
                .and_then(|a| a.get(key))
                .and_then(Value::as_f64)
        };
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Value::as_f64)
                    .filter(|d| d.is_finite() && *d >= 0.0)
                    .ok_or_else(|| bad(&format!("event {i}: X event without valid dur")))?;
                trace.spans.push(TraceSpan {
                    name: name.to_string(),
                    stage: arg_f64("stage").map(|v| v as u32),
                    device: arg_f64("device").map(|v| v as u32),
                    task: arg_f64("task").map(|v| v as u32),
                    tenant: arg_f64("tenant").map(|v| v as u32),
                    begin: ts / 1e6,
                    dur: dur / 1e6,
                    value: arg_f64("flops").unwrap_or(0.0),
                    bytes: arg_f64("bytes").unwrap_or(0.0) as u64,
                });
            }
            "C" => {
                trace.counters += 1;
                // Counter events carry a running total; the last one
                // seen for a name is its final value.
                if let Some(total) = arg_f64("value") {
                    match trace.counter_totals.iter_mut().find(|(n, _)| n == name) {
                        Some(entry) => entry.1 = total,
                        None => trace.counter_totals.push((name.to_string(), total)),
                    }
                }
            }
            "i" => {
                trace.instants += 1;
                trace.instant_events.push((name.to_string(), ts / 1e6));
                trace.instant_records.push(InstantRecord {
                    name: name.to_string(),
                    ts: ts / 1e6,
                    stage: arg_f64("stage").map(|v| v as u32),
                    device: arg_f64("device").map(|v| v as u32),
                    task: arg_f64("task").map(|v| v as u32),
                    tenant: arg_f64("tenant").map(|v| v as u32),
                    value: arg_f64("value").unwrap_or(0.0),
                });
                if let Some(v) = arg_f64("value") {
                    trace.samples.push((name.to_string(), v));
                }
            }
            other => {
                return Err(bad(&format!("event {i}: unsupported phase {other:?}")));
            }
        }
    }
    Ok(trace)
}

fn bad(reason: &str) -> TelemetryError {
    TelemetryError::InvalidTrace(reason.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Ctx;
    use crate::names;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::span_begin(0.0, names::STAGE_BUSY, Ctx::stage(0).for_task(0)),
            Event::span_begin(
                0.001,
                names::COMPUTE,
                Ctx::stage(0).on_device(1).for_task(0),
            )
            .with_value(2e6)
            .with_bytes(4096),
            Event::span_end(
                0.003,
                names::COMPUTE,
                Ctx::stage(0).on_device(1).for_task(0),
            ),
            Event::span_end(0.004, names::STAGE_BUSY, Ctx::stage(0).for_task(0)),
            Event {
                ts: 0.004,
                name: names::TASKS_COMPLETED,
                kind: EventKind::Counter,
                ctx: Ctx::default(),
                value: 1.0,
                bytes: 0,
            },
            Event {
                ts: 0.005,
                name: names::LAMBDA_ESTIMATE,
                kind: EventKind::Sample,
                ctx: Ctx::default(),
                value: 12.5,
                bytes: 0,
            },
        ]
    }

    #[test]
    fn golden_chrome_trace() {
        // Byte-for-byte golden: field order, µs conversion, sorting,
        // and trailing structure are all contractual — Perfetto loads
        // this exact shape and downstream diffs depend on stability.
        let expected = concat!(
            "{\"traceEvents\":[\n",
            "{\"name\":\"stage_busy\",\"ph\":\"X\",\"ts\":0,\"dur\":4000,\"pid\":0,\"tid\":0,",
            "\"args\":{\"stage\":0,\"task\":0}},\n",
            "{\"name\":\"compute\",\"ph\":\"X\",\"ts\":1000,\"dur\":2000,\"pid\":0,\"tid\":1,",
            "\"args\":{\"stage\":0,\"device\":1,\"task\":0,\"flops\":2000000,\"bytes\":4096}},\n",
            "{\"name\":\"tasks_completed\",\"ph\":\"C\",\"ts\":4000,\"pid\":0,",
            "\"args\":{\"value\":1}},\n",
            "{\"name\":\"lambda_estimate\",\"ph\":\"i\",\"ts\":5000,\"pid\":0,\"tid\":0,",
            "\"s\":\"g\",\"args\":{\"value\":12.5}}\n",
            "],\"displayTimeUnit\":\"ms\"}\n",
        );
        assert_eq!(chrome_trace(&sample_events()), expected);
    }

    #[test]
    fn export_round_trips_through_the_parser() {
        let json = chrome_trace(&sample_events());
        let trace = parse_chrome_trace(&json).expect("valid trace");
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.counters, 1);
        assert_eq!(trace.instants, 1);
        assert_eq!(trace.samples, vec![("lambda_estimate".to_string(), 12.5)]);
        assert_eq!(trace.instant_events.len(), 1);
        assert_eq!(trace.instant_events[0].0, names::LAMBDA_ESTIMATE);
        assert!((trace.instant_events[0].1 - 0.005).abs() < 1e-12);
        assert_eq!(
            trace.counter_totals,
            vec![("tasks_completed".to_string(), 1.0)]
        );
        let compute = trace
            .spans
            .iter()
            .find(|s| s.name == names::COMPUTE)
            .unwrap();
        assert_eq!(compute.device, Some(1));
        assert!((compute.begin - 0.001).abs() < 1e-12);
        assert!((compute.dur - 0.002).abs() < 1e-12);
        assert_eq!(compute.value, 2e6);
        assert_eq!(compute.bytes, 4096);
    }

    #[test]
    fn pairing_is_lifo_and_drops_unbalanced() {
        let ctx = Ctx::stage(0);
        let events = vec![
            Event::span_begin(0.0, names::PLAN, ctx),
            Event::span_begin(1.0, names::PLAN, ctx),
            Event::span_end(2.0, names::PLAN, ctx),
            // Outer PLAN never ends; a lone end with no begin:
            Event::span_end(3.0, names::SCATTER, ctx),
        ];
        let spans = pair_spans(&events);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].begin, 1.0);
        assert_eq!(spans[0].dur, 1.0);
    }

    #[test]
    fn validation_rejects_structural_problems() {
        for (doc, why) in [
            ("[]", "not an object"),
            ("{}", "no traceEvents"),
            (r#"{"traceEvents":[{"ph":"X","ts":0,"dur":1}]}"#, "no name"),
            (
                r#"{"traceEvents":[{"name":"a","ph":"B","ts":0}]}"#,
                "bad phase",
            ),
            (
                r#"{"traceEvents":[{"name":"a","ph":"X","ts":0}]}"#,
                "no dur",
            ),
            (
                r#"{"traceEvents":[{"name":"a","ph":"i","ts":5},{"name":"b","ph":"i","ts":1}]}"#,
                "unsorted ts",
            ),
        ] {
            assert!(
                matches!(
                    parse_chrome_trace(doc),
                    Err(TelemetryError::InvalidTrace(_))
                ),
                "{why}: {doc}"
            );
        }
    }
}
