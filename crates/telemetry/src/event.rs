/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A span opened at `ts`.
    SpanBegin,
    /// The matching span closed at `ts`.
    SpanEnd,
    /// A point-in-time marker.
    Instant,
    /// A counter incremented by `value`.
    Counter,
    /// One histogram sample of `value`.
    Sample,
}

impl EventKind {
    /// Stable lowercase label, used by the JSONL sink.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::SpanBegin => "span_begin",
            EventKind::SpanEnd => "span_end",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
            EventKind::Sample => "sample",
        }
    }
}

/// A compact optional index. `Option<u32>` has no niche, so three of
/// them would double [`Ctx`]'s size; `Id` reserves `u32::MAX` as the
/// "absent" sentinel and stays 4 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Id(u32);

impl Id {
    /// The absent id.
    pub const NONE: Id = Id(u32::MAX);

    /// Wraps an index (clamped just below the sentinel).
    pub fn some(index: usize) -> Id {
        Id((index as u32).min(u32::MAX - 1))
    }

    /// The index, or `None` when absent.
    pub fn get(self) -> Option<u32> {
        (self.0 != u32::MAX).then_some(self.0)
    }
}

impl Default for Id {
    fn default() -> Self {
        Id::NONE
    }
}

/// Where an event happened: the pipeline coordinates the paper's
/// analysis is phrased in. All fields are optional — a planner span has
/// none, a worker compute span has all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Ctx {
    /// Pipeline stage index (or candidate-plan index for scheduler
    /// events).
    pub stage: Id,
    /// Device id.
    pub device: Id,
    /// Task index (submission order).
    pub task: Id,
    /// Serving-layer tenant index (absent for runtime/planner events).
    pub tenant: Id,
}

impl Ctx {
    /// A context locating a stage.
    pub fn stage(stage: usize) -> Self {
        Ctx {
            stage: Id::some(stage),
            ..Ctx::default()
        }
    }

    /// Adds a device id.
    pub fn on_device(mut self, device: usize) -> Self {
        self.device = Id::some(device);
        self
    }

    /// Adds a task index.
    pub fn for_task(mut self, task: usize) -> Self {
        self.task = Id::some(task);
        self
    }

    /// A context locating a serving-layer tenant.
    pub fn tenant(tenant: usize) -> Self {
        Ctx {
            tenant: Id::some(tenant),
            ..Ctx::default()
        }
    }

    /// Adds a tenant index.
    pub fn for_tenant(mut self, tenant: usize) -> Self {
        self.tenant = Id::some(tenant);
        self
    }
}

/// One structured telemetry record.
///
/// `Event` is `Copy` — building one never allocates, which is what lets
/// the recorder make hard zero-cost promises on the `Noop` path. Names
/// are `&'static str` drawn from the [`names`](crate::names) registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Seconds since the recorder's epoch (wall clock) or since the
    /// simulation start (virtual time) — producers pick, consumers only
    /// need differences and ordering.
    pub ts: f64,
    /// Registered name (see [`names`](crate::names)).
    pub name: &'static str,
    /// What this record is.
    pub kind: EventKind,
    /// Stage/device/task location.
    pub ctx: Ctx,
    /// Payload: counter delta, histogram sample, or span FLOPs.
    pub value: f64,
    /// Bytes moved, for communication-carrying spans; 0 otherwise.
    pub bytes: u64,
}

impl Event {
    /// A span-begin event.
    pub fn span_begin(ts: f64, name: &'static str, ctx: Ctx) -> Self {
        Event {
            ts,
            name,
            kind: EventKind::SpanBegin,
            ctx,
            value: 0.0,
            bytes: 0,
        }
    }

    /// A span-end event.
    pub fn span_end(ts: f64, name: &'static str, ctx: Ctx) -> Self {
        Event {
            ts,
            name,
            kind: EventKind::SpanEnd,
            ctx,
            value: 0.0,
            bytes: 0,
        }
    }

    /// An instant event.
    pub fn instant(ts: f64, name: &'static str, ctx: Ctx) -> Self {
        Event {
            ts,
            name,
            kind: EventKind::Instant,
            ctx,
            value: 0.0,
            bytes: 0,
        }
    }

    /// Attaches a FLOPs/value payload.
    pub fn with_value(mut self, value: f64) -> Self {
        self.value = value;
        self
    }

    /// Attaches a bytes-moved payload.
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_is_copy_and_small() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Event>();
        // One cache line: the recorder passes these by value on every
        // hot-path call.
        assert!(std::mem::size_of::<Event>() <= 64);
    }

    #[test]
    fn ctx_builders_compose() {
        let c = Ctx::stage(2).on_device(7).for_task(31);
        assert_eq!(c.stage.get(), Some(2));
        assert_eq!(c.device.get(), Some(7));
        assert_eq!(c.task.get(), Some(31));
        assert_eq!(c.tenant.get(), None);
        let t = Ctx::tenant(3).for_task(5);
        assert_eq!(t.tenant.get(), Some(3));
        assert_eq!(t.stage.get(), None);
        assert_eq!(Ctx::default().stage.get(), None);
        assert_eq!(Id::NONE.get(), None);
        // The sentinel itself is never a valid index.
        assert_eq!(Id::some(u32::MAX as usize).get(), Some(u32::MAX - 1));
    }

    #[test]
    fn payload_builders() {
        let e = Event::span_begin(1.5, "x", Ctx::default())
            .with_value(2.0)
            .with_bytes(10);
        assert_eq!(e.value, 2.0);
        assert_eq!(e.bytes, 10);
        assert_eq!(e.kind.label(), "span_begin");
    }
}
