//! The span/counter name registry: every telemetry name in the
//! workspace is a `const` here, and `cargo xtask lint` (rule
//! `telemetry-name-registry`) rejects ad-hoc string literals at
//! recorder call sites, so traces from any crate always aggregate
//! under the same keys.

/// Per-stage scatter: the coordinator slices the input map and sends
/// tiles to workers. `ctx`: stage, task; `bytes`: tile bytes sent.
pub const SCATTER: &str = "scatter";

/// One worker's inference over its share. `ctx`: stage, device, task;
/// `value`: FLOPs; `bytes`: input + output tile bytes.
pub const COMPUTE: &str = "compute";

/// Redundant halo rows shipped to overlapping workers of a stage
/// (instant, per task). `bytes`: halo bytes beyond the exact cover.
pub const HALO_EXCHANGE: &str = "halo_exchange";

/// Per-stage stitch: gathered tiles assembled into the output map.
/// `ctx`: stage, task.
pub const STITCH: &str = "stitch";

/// A stage's whole busy window for one task (scatter through stitch).
/// `RunReport::stage_stats` is the per-stage sum of these spans.
pub const STAGE_BUSY: &str = "stage_busy";

/// A planner computing a plan (span). No ctx.
pub const PLAN: &str = "plan";

/// The adaptive scheduler switched candidate plans (instant).
/// `ctx.stage`: the chosen candidate index; `value`: the λ estimate
/// that drove the choice.
pub const PLAN_SWITCH: &str = "plan_switch";

/// One Eq. 15 EWMA workload estimate (sample). `value`: λ in tasks/s.
pub const LAMBDA_ESTIMATE: &str = "lambda_estimate";

/// Theorem 2 (M/D/1) predicted queueing delay for the scheme in charge
/// at an arrival (sample). `value`: seconds of predicted wait.
pub const QUEUE_DELAY_PREDICTED: &str = "queue_delay_predicted";

/// Realized wait between a task's arrival and its first stage starting
/// (sample). `value`: seconds.
pub const QUEUE_DELAY_OBSERVED: &str = "queue_delay_observed";

/// A simulated stage serving a task (span, virtual time). `ctx`:
/// stage, task.
pub const SIM_SERVICE: &str = "sim_service";

/// Tasks completed (counter).
pub const TASKS_COMPLETED: &str = "tasks_completed";

/// Bytes moved between devices (counter).
pub const BYTES_MOVED: &str = "bytes_moved";

/// A worker device was classified dead (instant): it returned an
/// explicit error or missed the per-task response timeout. `ctx`:
/// stage, device, task (the task that exposed the failure).
pub const DEVICE_FAILED: &str = "device_failed";

/// A dead worker's shard was re-routed to a surviving device of the
/// same stage (instant). `ctx`: stage, device (the survivor), task.
pub const TASK_RETRIED: &str = "task_retried";

/// A stage lost all redundancy and the coordinator installed a
/// degraded plan excluding the failed devices (instant). `ctx.task`:
/// first task executed under the new plan.
pub const PLAN_DEGRADED: &str = "plan_degraded";

/// The serving front-end admitted a task into a tenant queue
/// (instant). `ctx`: tenant, task (the serve-layer sequence number);
/// `value`: the tenant's queue depth after the admit.
pub const TASK_ADMITTED: &str = "task_admitted";

/// The serving front-end rejected a task with a typed error (instant).
/// `ctx`: tenant; `value`: the tenant's queue depth at rejection.
pub const TASK_REJECTED: &str = "task_rejected";

/// The adaptive micro-batcher closed a batch (sample). `value`: batch
/// size in tasks — summarized as a histogram, so a trace shows the
/// size adapting to the arrival rate.
pub const BATCH_FORMED: &str = "batch_formed";

/// A warm swap finished draining the outgoing plan (instant).
/// `ctx.stage`: the plan epoch being retired; `value`: tasks completed
/// under the drained plan.
pub const SWAP_DRAINED: &str = "swap_drained";

/// The fleet plan cache served a frontier without rebuilding
/// (counter). One increment per hit.
pub const PLAN_CACHE_HIT: &str = "plan_cache_hit";

/// The fleet plan cache had to build (or rebuild) a frontier
/// (counter). One increment per miss.
pub const PLAN_CACHE_MISS: &str = "plan_cache_miss";

/// The re-planning controller committed a plan switch (instant).
/// `ctx.stage`: the frontier index installed; `value`: the λ estimate
/// that drove the decision.
pub const REPLAN_TRIGGERED: &str = "replan_triggered";

/// The re-planning hysteresis saw λ outside the current plan's band
/// but withheld the switch (instant). `value`: the λ estimate.
pub const REPLAN_SUPPRESSED: &str = "replan_suppressed";

/// A departed device was re-admitted at a churn epoch boundary
/// (instant). `ctx.device`: the rejoined device; `ctx.task`: the global
/// task index the new epoch starts at.
pub const DEVICE_REJOINED: &str = "device_rejoined";

/// The fleet plan cache dropped entries whose cluster signature no
/// longer matches the live membership (counter). `value`: entries
/// dropped in one invalidation sweep.
pub const PLAN_CACHE_INVALIDATED: &str = "plan_cache_invalidated";

/// Every registered name, in registry order.
pub const ALL: [&str; 26] = [
    SCATTER,
    COMPUTE,
    HALO_EXCHANGE,
    STITCH,
    STAGE_BUSY,
    PLAN,
    PLAN_SWITCH,
    LAMBDA_ESTIMATE,
    QUEUE_DELAY_PREDICTED,
    QUEUE_DELAY_OBSERVED,
    SIM_SERVICE,
    TASKS_COMPLETED,
    BYTES_MOVED,
    DEVICE_FAILED,
    TASK_RETRIED,
    PLAN_DEGRADED,
    TASK_ADMITTED,
    TASK_REJECTED,
    BATCH_FORMED,
    SWAP_DRAINED,
    PLAN_CACHE_HIT,
    PLAN_CACHE_MISS,
    REPLAN_TRIGGERED,
    REPLAN_SUPPRESSED,
    DEVICE_REJOINED,
    PLAN_CACHE_INVALIDATED,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for name in ALL {
            assert!(seen.insert(name), "duplicate registered name {name}");
            assert!(
                name.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "{name} is not snake_case"
            );
        }
    }
}
