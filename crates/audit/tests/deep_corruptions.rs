//! Every deep (PA3xx) diagnostic is exercised by corrupting a
//! known-good plan or configuration and asserting the *exact* code and
//! severity, the deterministic report order is byte-stable, and the
//! static Theorem 2 utilization prediction is cross-validated against
//! the discrete-event simulator on the model zoo.

use pico_audit::{AuditConfig, AuditReport, Auditor, Code, Severity, WorkloadBand};
use pico_model::{zoo, Model, Rows, Segment};
use pico_partition::{
    Assignment, Cluster, CostParams, ExecutionMode, GridFused, OptimalFused, PicoPlanner, Plan,
    PlanRequest, Planner, Scheme, Stage,
};
use pico_sim::{mdone, Arrivals, Simulation};
use proptest::prelude::*;

fn base_model() -> Model {
    zoo::toy(4)
}

fn base_cluster() -> Cluster {
    Cluster::pi_cluster(4, 1.0)
}

/// A known-good two-stage pipelined strip plan (cut at unit 2).
fn base_plan(m: &Model) -> Plan {
    let h0 = m.unit_output_shape(1).height;
    let h1 = m.unit_output_shape(3).height;
    Plan::new(
        Scheme::Pico,
        ExecutionMode::Pipelined,
        vec![
            Stage::new(
                Segment::new(0, 2),
                vec![
                    Assignment::new(0, Rows::new(0, h0 / 2)),
                    Assignment::new(1, Rows::new(h0 / 2, h0)),
                ],
            ),
            Stage::new(
                Segment::new(2, 4),
                vec![
                    Assignment::new(2, Rows::new(0, h1 / 2)),
                    Assignment::new(3, Rows::new(h1 / 2, h1)),
                ],
            ),
        ],
    )
}

/// A known-good 2x2 grid plan (grid stage + solo tail).
fn grid_plan(m: &Model, c: &Cluster) -> Plan {
    GridFused::new()
        .with_grid(2, 2)
        .with_fused_units(3)
        .plan(&PlanRequest::new(m, c, &CostParams::default()))
        .expect("grid plan on 4 devices")
}

/// The critical rate λ* of a plan's bottleneck station — the quantity
/// the PA303 pass certifies the band against.
fn lambda_star(m: &Model, c: &Cluster, plan: &Plan) -> f64 {
    let sim = Simulation::new(m, c, &CostParams::default());
    let period = sim
        .station_profiles(plan)
        .iter()
        .map(|s| s.service)
        .fold(0.0, f64::max);
    mdone::max_stable_rate(period)
}

fn deep_audit(m: &Model, c: &Cluster, plan: &Plan, config: AuditConfig) -> AuditReport {
    Auditor::new(m, c).with_config(config).audit_deep(plan)
}

/// Every diagnostic carrying `code` must be at `severity`, and at
/// least one must exist.
fn assert_code(report: &AuditReport, code: Code, severity: Severity) {
    assert!(report.has_code(code), "expected {code}, got: {report}");
    for d in &report.diagnostics {
        if d.code == code {
            assert_eq!(d.severity, severity, "{d}");
        }
    }
}

#[test]
fn clean_plans_pass_every_deep_pass() {
    let m = base_model();
    let c = base_cluster();
    for plan in [base_plan(&m), grid_plan(&m, &c)] {
        let ls = lambda_star(&m, &c, &plan);
        let config = AuditConfig::default()
            .with_workload_band(WorkloadBand::new(0.1 * ls, 0.8 * ls))
            .with_deep_memory_budget(1 << 30);
        let report = deep_audit(&m, &c, &plan, config);
        assert!(report.is_executable(), "{report}");
    }
}

#[test]
fn pa301_escaped_tile_hides_from_the_structural_pass() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = grid_plan(&m, &c);
    // Slide the bottom-right tile past the output rectangle's lower
    // edge: the tile keeps its area and stays disjoint from its
    // neighbours, so the structural area-sum check (PA008) still
    // balances — only the symbolic dataflow pass can see that demanded
    // cells went uncovered while the tile hangs out of bounds.
    let a = &mut plan.stages[0].assignments[3];
    let r = a.rows;
    let shift = r.len();
    a.rows = Rows::new(r.start + shift, r.end + shift);
    let structural = Auditor::new(&m, &c).audit(&plan);
    assert!(
        structural.is_executable(),
        "corruption must be invisible to the structural tier: {structural}"
    );
    let report = deep_audit(&m, &c, &plan, AuditConfig::default());
    assert_code(&report, Code::HaloMismatch, Severity::Error);
    // Both findings surface: the escape (at the device) and the
    // coverage shortfall (at the stage).
    let halo: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::HaloMismatch)
        .collect();
    assert!(halo.iter().any(|d| d.device.is_some()), "{report}");
    assert!(halo.iter().all(|d| d.stage == Some(0)), "{report}");
}

#[test]
fn pa302_certified_bound_over_tiny_budget() {
    let m = base_model();
    let c = base_cluster();
    let plan = base_plan(&m);
    let report = deep_audit(
        &m,
        &c,
        &plan,
        AuditConfig::default().with_deep_memory_budget(1),
    );
    assert_code(&report, Code::ScratchOverrun, Severity::Error);
    // Every working device overruns a one-byte budget.
    assert_eq!(
        report
            .errors()
            .filter(|d| d.code == Code::ScratchOverrun)
            .count(),
        4,
        "{report}"
    );
}

#[test]
fn pa303_band_reaching_lambda_star() {
    let m = base_model();
    let c = base_cluster();
    let plan = base_plan(&m);
    let ls = lambda_star(&m, &c, &plan);
    let config = AuditConfig::default().with_workload_band(WorkloadBand::new(0.1 * ls, 2.0 * ls));
    let report = deep_audit(&m, &c, &plan, config);
    assert_code(&report, Code::QueueUnstable, Severity::Error);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::QueueUnstable)
        .unwrap();
    assert!(d.stage.is_some(), "pinpoints the saturating station: {d}");
    assert!(d.device.is_some(), "pinpoints the saturating device: {d}");
    assert!(d.message.contains("λ*"), "names the critical rate: {d}");
}

#[test]
fn pa304_band_on_the_steep_flank() {
    let m = base_model();
    let c = base_cluster();
    let plan = base_plan(&m);
    let ls = lambda_star(&m, &c, &plan);
    let config = AuditConfig::default()
        .with_workload_band(WorkloadBand::new(0.1 * ls, 0.95 * ls))
        .with_saturation_margin(0.9);
    let report = deep_audit(&m, &c, &plan, config);
    assert!(report.is_executable(), "{report}");
    assert_code(&report, Code::NearSaturation, Severity::Warning);
}

/// A three-stage strip plan whose interior cuts {1, 3} cross the base
/// plan's {2}: neither set contains the other.
fn crossing_cut_plan(m: &Model) -> Plan {
    let heights = [
        m.unit_output_shape(0).height,
        m.unit_output_shape(2).height,
        m.unit_output_shape(3).height,
    ];
    Plan::new(
        Scheme::Pico,
        ExecutionMode::Pipelined,
        vec![
            Stage::new(
                Segment::new(0, 1),
                vec![Assignment::new(0, Rows::new(0, heights[0]))],
            ),
            Stage::new(
                Segment::new(1, 3),
                vec![Assignment::new(1, Rows::new(0, heights[1]))],
            ),
            Stage::new(
                Segment::new(3, 4),
                vec![Assignment::new(2, Rows::new(0, heights[2]))],
            ),
        ],
    )
}

#[test]
fn pa305_crossing_interior_cuts() {
    let m = base_model();
    let c = base_cluster();
    let a = base_plan(&m);
    let b = crossing_cut_plan(&m);
    assert!(
        b.validate(&m, &c).is_ok(),
        "corrupt pair must be two valid plans"
    );
    let report = Auditor::new(&m, &c).audit_switch_pair(&a, &b);
    assert_code(&report, Code::SwitchBoundaryIncompatible, Severity::Error);
}

#[test]
fn sequential_plans_are_boundary_compatible_with_any_pipeline() {
    // The paper's canonical APICO pair: the PICO pipeline and the fused
    // one-stage OFL plan. OFL has no interior cuts, so the pair has a
    // common handoff point by construction.
    let m = base_model();
    let c = base_cluster();
    let params = CostParams::default();
    let pico = PicoPlanner::new()
        .plan(&PlanRequest::new(&m, &c, &params))
        .unwrap();
    let ofl = OptimalFused::new()
        .plan(&PlanRequest::new(&m, &c, &params))
        .unwrap();
    let report = Auditor::new(&m, &c)
        .with_params(params)
        .audit_switch_pair(&pico, &ofl);
    assert!(report.is_executable(), "{report}");
}

#[test]
fn pa306_swap_footprint_over_tiny_budget() {
    let m = base_model();
    let c = base_cluster();
    let params = CostParams::default();
    let a = base_plan(&m);
    let b = OptimalFused::new()
        .plan(&PlanRequest::new(&m, &c, &params))
        .unwrap();
    let shared: Vec<usize> = a
        .used_devices()
        .into_iter()
        .filter(|d| b.used_devices().contains(d))
        .collect();
    assert!(!shared.is_empty(), "pair must share a device to overlap");
    let report = Auditor::new(&m, &c)
        .with_config(AuditConfig::default().with_swap_budget(1))
        .audit_switch_pair(&a, &b);
    assert_code(&report, Code::SwapMemoryOverlap, Severity::Error);
    let flagged: Vec<usize> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::SwapMemoryOverlap)
        .filter_map(|d| d.device)
        .collect();
    assert_eq!(flagged, shared, "{report}");
}

/// Two single-worker two-stage pipelines with the device order
/// reversed: under bounded channels their union wait-for graph is the
/// cycle 0 -> 1 -> 0.
fn reversed_device_pair(m: &Model) -> (Plan, Plan) {
    let h0 = m.unit_output_shape(1).height;
    let h1 = m.unit_output_shape(3).height;
    let two_stage = |first: usize, second: usize| {
        Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![
                Stage::new(
                    Segment::new(0, 2),
                    vec![Assignment::new(first, Rows::new(0, h0))],
                ),
                Stage::new(
                    Segment::new(2, 4),
                    vec![Assignment::new(second, Rows::new(0, h1))],
                ),
            ],
        )
    };
    (two_stage(0, 1), two_stage(1, 0))
}

#[test]
fn pa307_bounded_reversed_pair_deadlocks_and_unbounded_does_not() {
    let m = base_model();
    let c = base_cluster();
    let (a, b) = reversed_device_pair(&m);
    assert!(a.validate(&m, &c).is_ok() && b.validate(&m, &c).is_ok());
    let bounded = Auditor::new(&m, &c)
        .with_config(AuditConfig::default().with_channel_capacity(1))
        .audit_switch_pair(&a, &b);
    assert_code(&bounded, Code::ChannelDeadlock, Severity::Error);
    // Unbounded senders never block, so the same pair is clean.
    let unbounded = Auditor::new(&m, &c).audit_switch_pair(&a, &b);
    assert!(unbounded.is_executable(), "{unbounded}");
    // And a same-order pair cannot close a cycle even when bounded.
    let same_order = Auditor::new(&m, &c)
        .with_config(AuditConfig::default().with_channel_capacity(1))
        .audit_switch_pair(&a, &a.clone());
    assert!(same_order.is_executable(), "{same_order}");
}

#[test]
fn deep_reports_render_byte_identically() {
    // Determinism regression: two independently constructed auditors
    // over a finding-rich configuration must render (and serialize)
    // byte-identical reports.
    let m = base_model();
    let c = base_cluster();
    let plan = base_plan(&m);
    let ls = lambda_star(&m, &c, &plan);
    let config = AuditConfig::default()
        .with_workload_band(WorkloadBand::new(0.1 * ls, 2.0 * ls))
        .with_deep_memory_budget(1)
        .with_memory_budget(1);
    let one = deep_audit(&m, &c, &plan, config.clone());
    let two = deep_audit(&m, &c, &plan, config);
    assert!(!one.diagnostics.is_empty());
    assert_eq!(one, two);
    assert_eq!(one.to_string(), two.to_string());
    let entries = vec![("toy".to_string(), one)];
    let json = pico_audit::json::reports_to_json(&entries);
    assert_eq!(json, pico_audit::json::reports_to_json(&entries));
    assert_eq!(pico_audit::json::reports_from_json(&json).unwrap(), entries);
}

#[test]
fn static_utilization_matches_the_des_within_five_percent() {
    // Theorem 2 cross-validation: the closed-form per-device ρ the
    // PA303 pass certifies must agree with what the discrete-event
    // simulator actually measures at a stable rate.
    let params = CostParams::wifi_50mbps();
    let models = [zoo::vgg16().features(), zoo::mnist_toy()];
    let clusters = [Cluster::pi_cluster(8, 1.0), Cluster::paper_heterogeneous()];
    let planners: Vec<Box<dyn Planner>> =
        vec![Box::new(PicoPlanner::new()), Box::new(OptimalFused::new())];
    for m in &models {
        for c in &clusters {
            for planner in &planners {
                let Ok(plan) = planner.plan(&PlanRequest::new(m, c, &params)) else {
                    continue;
                };
                let sim = Simulation::new(m, c, &params);
                let period = sim
                    .station_profiles(&plan)
                    .iter()
                    .map(|s| s.service)
                    .fold(0.0, f64::max);
                let lambda = 0.5 * mdone::max_stable_rate(period);
                // A long horizon so the post-arrival drain tail is
                // negligible against total elapsed time.
                let horizon = 4000.0 * period;
                let report = sim.run(&plan, &Arrivals::poisson(lambda, horizon, 7));
                let predicted = sim.predicted_device_utilization(&plan, lambda);
                for stat in report.device_stats.iter().filter(|s| s.busy > 0.0) {
                    let rho = predicted
                        .iter()
                        .find(|(d, _)| *d == stat.device)
                        .map(|(_, r)| *r)
                        .unwrap_or(0.0);
                    assert!(
                        (rho - stat.utilization).abs() <= 0.05,
                        "{} on {}: device {} static rho {rho:.3} vs DES {:.3}",
                        planner.name(),
                        m.name(),
                        stat.device,
                        stat.utilization
                    );
                }
            }
        }
    }
}

/// Seeded deep corruptions: whichever is drawn, the deep audit must
/// flag it with the exact PA3xx code at its registered severity — and
/// the structural tier must still consider the plan executable (that
/// blindness is what the deep tier exists to cover).
#[derive(Debug, Clone, Copy)]
enum DeepCorruption {
    EscapedTile,
    TinyCertifiedBudget,
    SaturatedBand,
    NearSaturatedBand,
}

impl DeepCorruption {
    fn expected(&self) -> (Code, Severity) {
        match self {
            DeepCorruption::EscapedTile => (Code::HaloMismatch, Severity::Error),
            DeepCorruption::TinyCertifiedBudget => (Code::ScratchOverrun, Severity::Error),
            DeepCorruption::SaturatedBand => (Code::QueueUnstable, Severity::Error),
            DeepCorruption::NearSaturatedBand => (Code::NearSaturation, Severity::Warning),
        }
    }
}

fn arb_deep_corruption() -> impl Strategy<Value = DeepCorruption> {
    prop_oneof![
        Just(DeepCorruption::EscapedTile),
        Just(DeepCorruption::TinyCertifiedBudget),
        Just(DeepCorruption::SaturatedBand),
        Just(DeepCorruption::NearSaturatedBand),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_deep_corruption_is_caught_with_its_exact_code(
        corruption in arb_deep_corruption(),
        shift_scale in 1usize..4,
        band_hi in 1.05f64..4.0,
    ) {
        let m = base_model();
        let c = base_cluster();
        let mut plan = grid_plan(&m, &c);
        let mut config = AuditConfig::default();
        match corruption {
            DeepCorruption::EscapedTile => {
                let a = &mut plan.stages[0].assignments[3];
                let r = a.rows;
                let shift = r.len() * shift_scale;
                a.rows = Rows::new(r.start + shift, r.end + shift);
            }
            DeepCorruption::TinyCertifiedBudget => {
                config = config.with_deep_memory_budget(shift_scale);
            }
            DeepCorruption::SaturatedBand => {
                let ls = lambda_star(&m, &c, &plan);
                config = config.with_workload_band(WorkloadBand::new(0.0, band_hi * ls));
            }
            DeepCorruption::NearSaturatedBand => {
                let ls = lambda_star(&m, &c, &plan);
                config = config
                    .with_workload_band(WorkloadBand::new(0.0, 0.95 * ls))
                    .with_saturation_margin(0.9);
            }
        }
        let structural = Auditor::new(&m, &c).audit(&plan);
        prop_assert!(structural.is_executable(), "{structural}");
        let report = deep_audit(&m, &c, &plan, config);
        let (code, severity) = corruption.expected();
        prop_assert!(report.has_code(code), "expected {code}, got: {report}");
        for d in report.diagnostics.iter().filter(|d| d.code == code) {
            prop_assert_eq!(d.severity, severity);
        }
        // The canonical order puts the most severe finding first.
        if severity == Severity::Error {
            prop_assert_eq!(report.diagnostics[0].severity, Severity::Error);
        }
    }
}
