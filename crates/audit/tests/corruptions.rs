//! Every diagnostic code is exercised by corrupting a known-good plan
//! and asserting the *exact* code and severity the auditor emits.

use pico_audit::{AuditConfig, AuditReport, Auditor, Code, Severity};
use pico_model::{zoo, Model, Region2, Rows, Segment};
use pico_partition::{
    Assignment, Cluster, CostParams, ExecutionMode, GridFused, PicoPlanner, Plan, PlanRequest,
    Planner, Scheme, Stage,
};
use proptest::prelude::*;

/// A known-good two-stage pipelined strip plan on `toy(4)` over four
/// devices: units 0..2 split across devices 0/1, units 2..4 across 2/3.
fn base_model() -> Model {
    zoo::toy(4)
}

fn base_cluster() -> Cluster {
    Cluster::pi_cluster(4, 1.0)
}

fn base_plan(m: &Model) -> Plan {
    let h0 = m.unit_output_shape(1).height;
    let h1 = m.unit_output_shape(3).height;
    Plan::new(
        Scheme::Pico,
        ExecutionMode::Pipelined,
        vec![
            Stage::new(
                Segment::new(0, 2),
                vec![
                    Assignment::new(0, Rows::new(0, h0 / 2)),
                    Assignment::new(1, Rows::new(h0 / 2, h0)),
                ],
            ),
            Stage::new(
                Segment::new(2, 4),
                vec![
                    Assignment::new(2, Rows::new(0, h1 / 2)),
                    Assignment::new(3, Rows::new(h1 / 2, h1)),
                ],
            ),
        ],
    )
}

fn audit(m: &Model, c: &Cluster, plan: &Plan) -> AuditReport {
    Auditor::new(m, c).audit(plan)
}

fn audit_with(m: &Model, c: &Cluster, plan: &Plan, config: AuditConfig) -> AuditReport {
    Auditor::new(m, c).with_config(config).audit(plan)
}

/// The one code of `severity` this report must contain.
fn assert_code(report: &AuditReport, code: Code, severity: Severity) {
    assert!(report.has_code(code), "expected {code}, got: {report}");
    for d in &report.diagnostics {
        if d.code == code {
            assert_eq!(d.severity, severity, "{d}");
        }
    }
}

#[test]
fn base_plan_is_error_free() {
    let m = base_model();
    let c = base_cluster();
    let report = audit(&m, &c, &base_plan(&m));
    assert!(report.is_executable(), "{report}");
}

#[test]
fn pa001_empty_plan() {
    let m = base_model();
    let c = base_cluster();
    let plan = Plan::new(Scheme::Pico, ExecutionMode::Pipelined, vec![]);
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::EmptyPlan, Severity::Error);
    assert_eq!(report.diagnostics.len(), 1);
}

#[test]
fn pa002_gap_between_stages() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = base_plan(&m);
    plan.stages[1].segment = Segment::new(3, 4);
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::NonContiguousStages, Severity::Error);
}

#[test]
fn pa003_truncated_coverage() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = base_plan(&m);
    plan.stages.pop();
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::IncompleteCoverage, Severity::Error);
}

#[test]
fn pa004_stage_with_no_workers() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = base_plan(&m);
    for a in &mut plan.stages[1].assignments {
        a.rows = Rows::empty();
    }
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::EmptyStage, Severity::Error);
}

#[test]
fn pa005_unknown_device() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = base_plan(&m);
    plan.stages[0].assignments[0].device = 99;
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::UnknownDevice, Severity::Error);
}

#[test]
fn pa006_device_duplicated_across_stages() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = base_plan(&m);
    plan.stages[1].assignments[0].device = 0;
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::DeviceReuse, Severity::Error);
}

#[test]
fn pa006_device_duplicated_within_stage() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = base_plan(&m);
    plan.stages[0].assignments[1].device = 0;
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::DeviceReuse, Severity::Error);
}

#[test]
fn pa007_shuffled_shares() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = base_plan(&m);
    plan.stages[0].assignments.swap(0, 1);
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::BadStripCover, Severity::Error);
}

#[test]
fn pa007_share_shrunk_leaves_gap() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = base_plan(&m);
    let r = plan.stages[0].assignments[0].rows;
    plan.stages[0].assignments[0].rows = Rows::new(r.start, r.end - 1);
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::BadStripCover, Severity::Error);
}

/// A known-good 2x2 grid plan over four devices (grid stage + solo
/// tail), used by the tile-corruption tests.
fn grid_plan(m: &Model, c: &Cluster) -> Plan {
    GridFused::new()
        .with_grid(2, 2)
        .with_fused_units(3)
        .plan(&PlanRequest::new(m, c, &CostParams::default()))
        .expect("grid plan on 4 devices")
}

#[test]
fn pa008_dropped_tile() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = grid_plan(&m, &c);
    plan.stages[0].assignments.remove(3);
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::BadTileCover, Severity::Error);
}

#[test]
fn pa008_overlapping_tiles() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = grid_plan(&m, &c);
    // Stretch tile 0 over tile 1's columns: same covered area twice.
    let t1 = plan.stages[0].assignments[1];
    plan.stages[0].assignments[0].cols = t1.cols;
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::BadTileCover, Severity::Error);
}

#[test]
fn pa009_segment_past_model_end() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = base_plan(&m);
    plan.stages[1].segment = Segment::new(2, m.len() + 1);
    let report = audit(&m, &c, &plan);
    assert_code(&report, Code::SegmentOutOfBounds, Severity::Error);
    assert_code(&report, Code::IncompleteCoverage, Severity::Error);
}

#[test]
fn pa101_memory_budget_overrun() {
    let m = base_model();
    let c = base_cluster();
    let plan = base_plan(&m);
    let report = audit_with(&m, &c, &plan, AuditConfig::default().with_memory_budget(1));
    assert!(report.is_executable());
    assert_code(&report, Code::MemoryOverrun, Severity::Warning);
    // Every worker overruns a one-byte budget.
    assert_eq!(
        report
            .warnings()
            .filter(|d| d.code == Code::MemoryOverrun)
            .count(),
        4
    );
}

#[test]
fn pa102_share_shrunk_below_its_halo() {
    // Device 0 keeps one output row of a six-conv fused segment: the
    // receptive field back-propagates to seven input rows, so nearly
    // half of device 0's intermediate work is recomputed by device 1.
    let m = zoo::toy(6);
    let c = base_cluster();
    let h = m.output_shape().height;
    let plan = Plan::new(
        Scheme::Pico,
        ExecutionMode::Pipelined,
        vec![Stage::new(
            m.full_segment(),
            vec![
                Assignment::new(0, Rows::new(0, 1)),
                Assignment::new(1, Rows::new(1, h)),
            ],
        )],
    );
    let config = AuditConfig {
        degenerate_share_ratio: 0.3,
        ..AuditConfig::default()
    };
    let report = audit_with(&m, &c, &plan, config);
    assert!(report.is_executable());
    assert_code(&report, Code::DegenerateShare, Severity::Warning);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::DegenerateShare)
        .unwrap();
    assert_eq!(d.device, Some(0));
    assert_eq!(d.stage, Some(0));
}

#[test]
fn pa103_plan_redundancy_above_threshold() {
    let m = base_model();
    let c = base_cluster();
    let plan = base_plan(&m);
    // Two-worker fused conv stages always duplicate some halo rows, so
    // a zero threshold must fire.
    let report = audit_with(
        &m,
        &c,
        &plan,
        AuditConfig::default().with_redundancy_threshold(0.0),
    );
    assert_code(&report, Code::ExcessRedundancy, Severity::Warning);
}

#[test]
fn pa104_wrong_claimed_metrics() {
    let m = base_model();
    let c = base_cluster();
    let params = CostParams::default();
    let plan = PicoPlanner::new()
        .plan(&PlanRequest::new(&m, &c, &params))
        .unwrap();
    let metrics = params.cost_model(&m).evaluate(&plan, &c);
    let report = Auditor::new(&m, &c)
        .with_params(params)
        .with_config(
            AuditConfig::default()
                .with_claimed_metrics(metrics.period * 2.0, metrics.latency * 2.0),
        )
        .audit(&plan);
    assert_code(&report, Code::CostMismatch, Severity::Warning);
    assert_eq!(
        report
            .warnings()
            .filter(|d| d.code == Code::CostMismatch)
            .count(),
        2
    );
}

#[test]
fn pa105_pathological_tile_aspect() {
    let m = base_model();
    let c = base_cluster();
    let h = m.output_shape().height;
    let w = m.output_shape().width;
    // One 1-row full-width sliver tile plus the rest: covers exactly,
    // but the sliver's aspect ratio is w:1.
    let plan = Plan::new(
        Scheme::GridFused,
        ExecutionMode::Sequential,
        vec![Stage::new(
            Segment::new(0, m.len()),
            vec![
                Assignment::tile(0, Region2::new(Rows::new(0, 1), Rows::new(0, w))),
                Assignment::tile(1, Region2::new(Rows::new(1, h), Rows::new(0, w))),
            ],
        )],
    );
    let report = audit(&m, &c, &plan);
    assert!(report.is_executable(), "{report}");
    assert_code(&report, Code::GridAspect, Severity::Warning);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::GridAspect)
        .unwrap();
    assert_eq!(d.device, Some(0));
}

#[test]
fn pa201_idle_device() {
    let m = base_model();
    let c = Cluster::pi_cluster(5, 1.0);
    let plan = base_plan(&m); // uses devices 0..4 of 5
    let report = audit(&m, &c, &plan);
    assert!(report.is_executable());
    assert_code(&report, Code::IdleDevice, Severity::Info);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::IdleDevice)
        .unwrap();
    assert_eq!(d.device, Some(4));
}

#[test]
fn pa202_empty_assignment() {
    let m = base_model();
    let c = base_cluster();
    let mut plan = base_plan(&m);
    plan.stages[0]
        .assignments
        .push(Assignment::new(3, Rows::empty()));
    let report = audit(&m, &c, &plan);
    assert!(report.is_executable());
    assert_code(&report, Code::EmptyAssignment, Severity::Info);
}

/// Randomized corruption: whichever mutation is drawn, the auditor must
/// flag the plan with the exact expected code at Error severity, and
/// `Plan::validate` must agree that the plan is invalid.
#[derive(Debug, Clone, Copy)]
enum Corruption {
    Gap,
    Truncate,
    UnknownDevice,
    DuplicateDevice,
    ShuffleShares,
    ShrinkShare,
}

impl Corruption {
    fn expected_code(&self) -> Code {
        match self {
            Corruption::Gap => Code::NonContiguousStages,
            Corruption::Truncate => Code::IncompleteCoverage,
            Corruption::UnknownDevice => Code::UnknownDevice,
            Corruption::DuplicateDevice => Code::DeviceReuse,
            Corruption::ShuffleShares | Corruption::ShrinkShare => Code::BadStripCover,
        }
    }

    fn apply(&self, plan: &mut Plan) {
        match self {
            Corruption::Gap => {
                let seg = plan.stages[1].segment;
                plan.stages[1].segment = Segment::new(seg.start + 1, seg.end);
            }
            Corruption::Truncate => {
                plan.stages.pop();
            }
            Corruption::UnknownDevice => plan.stages[0].assignments[0].device = 1000,
            Corruption::DuplicateDevice => {
                plan.stages[1].assignments[1].device = plan.stages[0].assignments[0].device;
            }
            Corruption::ShuffleShares => plan.stages[1].assignments.swap(0, 1),
            Corruption::ShrinkShare => {
                let r = plan.stages[1].assignments[1].rows;
                plan.stages[1].assignments[1].rows = Rows::new(r.start + 1, r.end);
            }
        }
    }
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        Just(Corruption::Gap),
        Just(Corruption::Truncate),
        Just(Corruption::UnknownDevice),
        Just(Corruption::DuplicateDevice),
        Just(Corruption::ShuffleShares),
        Just(Corruption::ShrinkShare),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_corruption_is_caught_with_its_exact_code(
        corruption in arb_corruption(),
        layers in 3usize..6,
    ) {
        let m = zoo::toy(layers);
        let c = base_cluster();
        // Re-derive the two-stage base plan for this depth. The second
        // stage always has >= 2 units so the Gap corruption can shift
        // its start without emptying the segment.
        let split = layers / 2;
        let h0 = m.unit_output_shape(split - 1).height;
        let h1 = m.unit_output_shape(layers - 1).height;
        let mut plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![
                Stage::new(
                    Segment::new(0, split),
                    vec![
                        Assignment::new(0, Rows::new(0, h0 / 2)),
                        Assignment::new(1, Rows::new(h0 / 2, h0)),
                    ],
                ),
                Stage::new(
                    Segment::new(split, layers),
                    vec![
                        Assignment::new(2, Rows::new(0, h1 / 2)),
                        Assignment::new(3, Rows::new(h1 / 2, h1)),
                    ],
                ),
            ],
        );
        prop_assert!(plan.validate(&m, &c).is_ok());

        corruption.apply(&mut plan);
        let report = Auditor::new(&m, &c).audit(&plan);
        prop_assert!(!report.is_executable(), "{report}");
        prop_assert!(
            report.has_code(corruption.expected_code()),
            "{corruption:?} expected {}, got: {report}",
            corruption.expected_code()
        );
        prop_assert!(plan.validate(&m, &c).is_err());
        // validate()'s single error is always the auditor's first finding.
        let first = &report.diagnostics[0];
        prop_assert_eq!(first.severity, Severity::Error);
    }
}
