//! Acceptance gate: every shipped planner produces zero Error-level
//! diagnostics on the model zoo — under both the structural audit and
//! the deep PA3xx verification passes. Warnings are allowed (redundancy
//! is a fact of fused-layer life); structural defects are not.

use pico_audit::{AuditConfig, Auditor, WorkloadBand};
use pico_model::{zoo, Model};
use pico_partition::{
    BfsOptimal, Cluster, CostParams, EarlyFused, GridFused, Interleaved, LayerWise, OptimalFused,
    PicoPlanner, PlanRequest, Planner,
};
use pico_sim::{mdone, Simulation};

fn planners() -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(LayerWise::new()),
        Box::new(EarlyFused::new()),
        Box::new(OptimalFused::new()),
        Box::new(PicoPlanner::new()),
        Box::new(GridFused::new()),
        Box::new(Interleaved),
    ]
}

fn assert_error_free(model: &Model, cluster: &Cluster, planner: &dyn Planner) {
    let params = CostParams::wifi_50mbps();
    let plan = match planner.plan(&PlanRequest::new(model, cluster, &params)) {
        Ok(plan) => plan,
        // A planner may decline a (model, cluster) pair (e.g. a grid
        // needing more devices); declining is not a diagnostic.
        Err(_) => return,
    };
    let report = Auditor::new(model, cluster)
        .with_params(params)
        .audit(&plan);
    assert!(
        report.is_executable(),
        "{} on {}: {report}",
        planner.name(),
        model.name()
    );
    // The deep passes must certify the same clean plan: dataflow (halo
    // demand satisfiable, regions in bounds) and Theorem 2 stability
    // over a band comfortably inside the plan's own critical rate.
    let sim = Simulation::new(model, cluster, &params);
    let period = sim
        .station_profiles(&plan)
        .iter()
        .map(|s| s.service)
        .fold(0.0, f64::max);
    let lambda_star = mdone::max_stable_rate(period);
    let config = AuditConfig::default()
        .with_workload_band(WorkloadBand::new(0.1 * lambda_star, 0.8 * lambda_star));
    let deep = Auditor::new(model, cluster)
        .with_params(params)
        .with_config(config)
        .audit_deep(&plan);
    assert!(
        deep.is_executable(),
        "deep: {} on {}: {deep}",
        planner.name(),
        model.name()
    );
}

#[test]
fn all_planners_are_error_free_on_the_zoo() {
    let models = [
        zoo::vgg16().features(),
        zoo::yolov2(),
        zoo::resnet34().features(),
        zoo::mobilenet_v1().features(),
        zoo::mnist_toy(),
    ];
    let clusters = [Cluster::pi_cluster(8, 1.0), Cluster::paper_heterogeneous()];
    for model in &models {
        for cluster in &clusters {
            for planner in planners() {
                assert_error_free(model, cluster, planner.as_ref());
            }
        }
    }
}

#[test]
fn bfs_optimal_is_error_free_on_the_toy_model() {
    // The exhaustive search is only tractable on toy instances
    // (Table II), so it gets its own small gate.
    let model = zoo::toy(4);
    let cluster = Cluster::pi_cluster(3, 1.0);
    assert_error_free(&model, &cluster, &BfsOptimal::new());
}

#[test]
fn layer_wise_full_models_are_error_free() {
    // LW is the only planner that handles FC tails; audit it on the
    // un-truncated models too.
    let cluster = Cluster::paper_heterogeneous_6();
    for model in [zoo::vgg16(), zoo::alexnet()] {
        assert_error_free(&model, &cluster, &LayerWise::new());
    }
}
