//! `pico-audit`: a multi-pass static analyzer over the plan IR
//! (`Plan` × `Model` × `Cluster`).
//!
//! Where [`Plan::validate`](pico_partition::Plan::validate) answers
//! "is this plan executable?" with the first error it finds, the
//! [`Auditor`] answers "what is *everything* wrong, suspicious, or
//! merely notable about this plan?" — as a complete list of
//! [`Diagnostic`]s, each with a stable code (`PA001`…), a
//! [`Severity`], and a location (stage / device / layer).
//!
//! Passes, in three tiers:
//!
//! * **Error (`PA0xx`)** — the structural invariants `Plan::validate`
//!   enforces, shared verbatim through
//!   [`pico_partition::diag::structural_diagnostics`] so the two can
//!   never disagree: contiguous segments, exact row/tile cover, device
//!   disjointness under pipelining, known devices.
//! * **Warning (`PA1xx`)** — the plan executes but wastes resources:
//!   per-device memory-budget overruns (via `pico_partition::memory`),
//!   degenerate shares that are mostly halo, plan-wide redundancy above
//!   a threshold (Eq. 4), claimed period/latency disagreeing with the
//!   cost model's recomputation (Eqs. 5–11), and pathological grid tile
//!   aspect ratios.
//! * **Info (`PA2xx`)** — idle devices and empty assignments.
//! * **Deep (`PA3xx`)** — [`Auditor::audit_deep`] adds the static
//!   verification passes of DESIGN.md §14: symbolic dataflow
//!   ([`absint`]: halo consistency PA301, certified memory PA302),
//!   queue stability (Theorem 2 over a workload band: PA303/PA304),
//!   and — via [`Auditor::audit_switch_pair`] — switch safety over
//!   pairs of plans (boundaries PA305, swap memory PA306, channel
//!   deadlock PA307).
//!
//! Warning/Info/deep passes run only when the plan is structurally
//! clean — the cost, memory, redundancy, and region analyses all
//! assume well-formed geometry and known devices.
//!
//! Reports are deterministic: diagnostics are sorted by (severity,
//! code, stage, device, unit, message) and exact duplicates are
//! removed, so two audits of the same plan render byte-identically.
//!
//! The full code registry with suggested fixes lives in DESIGN.md
//! ("Plan diagnostics registry"); `cargo xtask lint` keeps the two in
//! sync.
//!
//! # Example
//!
//! ```
//! use pico_audit::Auditor;
//! use pico_model::zoo;
//! use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};
//!
//! let model = zoo::vgg16().features();
//! let cluster = Cluster::pi_cluster(8, 1.0);
//! let params = CostParams::wifi_50mbps();
//! let plan = PicoPlanner::new().plan(&PlanRequest::new(&model, &cluster, &params))?;
//! let report = Auditor::new(&model, &cluster).with_params(params).audit(&plan);
//! assert!(report.is_executable()); // zero Error-level diagnostics
//! # Ok::<(), pico_partition::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use pico_model::Model;
use pico_partition::diag::structural_diagnostics;
use pico_partition::{
    memory, redundancy, ChurnError, ChurnMembership, Cluster, ClusterSchedule, CostParams, Plan,
};

pub mod absint;
pub mod json;
mod stability;
mod switch;

pub use pico_partition::diag::{Code, Diagnostic, Severity};
pub use pico_sim::WorkloadBand;

/// Thresholds and optional claims the Warning/Info passes check
/// against.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditConfig {
    /// Per-device resident-byte budget (weights + peak activations).
    /// `None` disables the PA101 pass.
    pub memory_budget_bytes: Option<usize>,
    /// Plan-wide redundancy ratio (Eq. 4) above which PA103 fires.
    pub redundancy_threshold: f64,
    /// Per-device, per-stage redundancy ratio above which a share is
    /// considered degenerate (PA102): more halo than useful work.
    pub degenerate_share_ratio: f64,
    /// Grid tile height/width ratio (either way) above which PA105
    /// fires.
    pub aspect_ratio_limit: f64,
    /// Period the plan is claimed to achieve (e.g. from a frontier
    /// sweep); checked against the cost model by PA104 when set.
    pub claimed_period: Option<f64>,
    /// Latency the plan is claimed to achieve; checked by PA104.
    pub claimed_latency: Option<f64>,
    /// Relative tolerance for the PA104 claimed-vs-recomputed check.
    pub rel_tol: f64,
    /// Measured per-stage busy seconds (ascending stage index), e.g.
    /// from a runtime `RunReport`'s `stage_stats` or a telemetry trace
    /// summary's per-stage `stage_busy` totals. When set and the
    /// measured bottleneck stage differs from the cost model's, PA106
    /// fires.
    pub observed_stage_busy: Option<Vec<f64>>,
    /// Devices declared failed/excluded (e.g. the exclusion list a
    /// degraded `PlanRequest` was built with). Any assignment to one of
    /// them raises PA203.
    pub excluded_devices: Vec<usize>,
    /// Workload band `[λ_lo, λ_hi]` the deployment must stay stable
    /// over. `None` disables the deep PA303/PA304 stability pass.
    pub workload_band: Option<WorkloadBand>,
    /// Utilization ρ at `λ_hi` above which PA304 warns (still < 1).
    pub saturation_margin: f64,
    /// Per-device budget for the *certified* resident bound (weights +
    /// activation peak + im2col scratch peak). `None` disables the deep
    /// PA302 pass; the looser PA101 estimate keeps its own budget.
    pub deep_memory_budget_bytes: Option<usize>,
    /// Per-device budget for the combined footprint of a switch pair
    /// during a warm swap. `None` disables PA306.
    pub swap_budget_bytes: Option<usize>,
    /// Inter-stage channel capacity the runtime will be built with.
    /// `None` (unbounded, the default) makes the PA307 deadlock pass
    /// vacuous — unbounded senders never block.
    pub channel_capacity: Option<usize>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            memory_budget_bytes: None,
            redundancy_threshold: 0.5,
            degenerate_share_ratio: 0.5,
            aspect_ratio_limit: 8.0,
            claimed_period: None,
            claimed_latency: None,
            rel_tol: 1e-6,
            observed_stage_busy: None,
            excluded_devices: Vec::new(),
            workload_band: None,
            saturation_margin: 0.9,
            deep_memory_budget_bytes: None,
            swap_budget_bytes: None,
            channel_capacity: None,
        }
    }
}

impl AuditConfig {
    /// Sets the per-device memory budget in bytes (enables PA101).
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    /// Sets the plan-wide redundancy threshold for PA103.
    pub fn with_redundancy_threshold(mut self, ratio: f64) -> Self {
        self.redundancy_threshold = ratio;
        self
    }

    /// Sets the claimed (period, latency) pair checked by PA104.
    pub fn with_claimed_metrics(mut self, period: f64, latency: f64) -> Self {
        self.claimed_period = Some(period);
        self.claimed_latency = Some(latency);
        self
    }

    /// Sets measured per-stage busy seconds (enables PA106): feed it a
    /// run's `stage_stats` busy values or a trace summary's per-stage
    /// `stage_busy` totals.
    pub fn with_observed_stage_busy(mut self, busy: Vec<f64>) -> Self {
        self.observed_stage_busy = Some(busy);
        self
    }

    /// Declares devices failed/excluded (enables PA203): a degraded
    /// plan assigning work to any of them is flagged.
    pub fn with_excluded_devices(mut self, devices: &[usize]) -> Self {
        self.excluded_devices = devices.to_vec();
        self
    }

    /// Sets the workload band for the deep PA303/PA304 stability pass.
    pub fn with_workload_band(mut self, band: WorkloadBand) -> Self {
        self.workload_band = Some(band);
        self
    }

    /// Sets the ρ safety margin for PA304 (default 0.9).
    pub fn with_saturation_margin(mut self, margin: f64) -> Self {
        self.saturation_margin = margin;
        self
    }

    /// Sets the certified-bound budget in bytes (enables deep PA302).
    pub fn with_deep_memory_budget(mut self, bytes: usize) -> Self {
        self.deep_memory_budget_bytes = Some(bytes);
        self
    }

    /// Sets the warm-swap combined budget in bytes (enables PA306).
    pub fn with_swap_budget(mut self, bytes: usize) -> Self {
        self.swap_budget_bytes = Some(bytes);
        self
    }

    /// Declares the inter-stage channel capacity the runtime will use,
    /// making the PA307 deadlock pass meaningful.
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.channel_capacity = Some(capacity);
        self
    }
}

/// The analyzer: holds the model, cluster, cost parameters, and
/// thresholds; [`Auditor::audit`] runs every pass over a plan.
#[derive(Debug, Clone)]
pub struct Auditor<'a> {
    model: &'a Model,
    cluster: &'a Cluster,
    params: CostParams,
    config: AuditConfig,
}

impl<'a> Auditor<'a> {
    /// Creates an auditor with default cost parameters (the paper's
    /// 50 Mbps WiFi) and default thresholds.
    pub fn new(model: &'a Model, cluster: &'a Cluster) -> Self {
        Auditor {
            model,
            cluster,
            params: CostParams::default(),
            config: AuditConfig::default(),
        }
    }

    /// Uses these cost parameters for the PA104 recomputation.
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Uses these thresholds and claims.
    pub fn with_config(mut self, config: AuditConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs every pass over `plan` and returns the complete report.
    ///
    /// Structural (Error) passes always run; analysis (Warning/Info)
    /// passes run only when no structural error was found, because
    /// they assume well-formed geometry and known devices.
    pub fn audit(&self, plan: &Plan) -> AuditReport {
        let mut diagnostics = structural_diagnostics(plan, self.model, self.cluster);
        if diagnostics.is_empty() {
            self.memory_pass(plan, &mut diagnostics);
            self.degenerate_share_pass(plan, &mut diagnostics);
            self.redundancy_pass(plan, &mut diagnostics);
            self.cost_consistency_pass(plan, &mut diagnostics);
            self.bottleneck_pass(plan, &mut diagnostics);
            self.aspect_ratio_pass(plan, &mut diagnostics);
            self.idle_device_pass(plan, &mut diagnostics);
            self.empty_assignment_pass(plan, &mut diagnostics);
            self.excluded_device_pass(plan, &mut diagnostics);
        }
        AuditReport::normalized(diagnostics)
    }

    /// Runs [`audit`](Auditor::audit) plus the deep verification
    /// passes (DESIGN.md §14): symbolic dataflow (PA301, and PA302
    /// against the deep memory budget when configured) and — when a
    /// workload band is configured — static Theorem 2 queue stability
    /// (PA303/PA304). Deep passes, like the Warning/Info ones, run
    /// only on structurally clean plans.
    pub fn audit_deep(&self, plan: &Plan) -> AuditReport {
        let base = self.audit(plan);
        if !base.is_executable() {
            return base;
        }
        let mut diagnostics = base.diagnostics;
        absint::dataflow_pass(self.model, plan, &mut diagnostics);
        if let Some(budget) = self.config.deep_memory_budget_bytes {
            absint::certified_memory_pass(self.model, plan, budget, &mut diagnostics);
        }
        if let Some(band) = self.config.workload_band {
            stability::stability_pass(
                self.model,
                self.cluster,
                self.params,
                band,
                self.config.saturation_margin,
                plan,
                &mut diagnostics,
            );
        }
        AuditReport::normalized(diagnostics)
    }

    /// Audits a *switch pair* (two plans APICO may warm-swap between):
    /// boundary compatibility (PA305), combined warm-swap memory
    /// against the swap budget when configured (PA306), and deadlock
    /// freedom of the combined channel topology under the configured
    /// channel capacity (PA307). Structural errors in either plan are
    /// returned instead — pair analysis assumes both plans are sound.
    pub fn audit_switch_pair(&self, a: &Plan, b: &Plan) -> AuditReport {
        let mut diagnostics = structural_diagnostics(a, self.model, self.cluster);
        diagnostics.extend(structural_diagnostics(b, self.model, self.cluster));
        if diagnostics.is_empty() {
            switch::boundary_pass(a, b, &mut diagnostics);
            if let Some(budget) = self.config.swap_budget_bytes {
                switch::swap_memory_pass(self.model, a, b, budget, &mut diagnostics);
            }
            switch::deadlock_pass(a, b, self.config.channel_capacity, &mut diagnostics);
        }
        AuditReport::normalized(diagnostics)
    }

    /// Audits a churn schedule (PA501–PA503) against this auditor's
    /// cluster *before* any event is applied: every event is replayed
    /// through a [`ChurnMembership`], and each illegal transition —
    /// unknown device (PA501), leave/rejoin/recapacity against the
    /// wrong membership state (PA502), a `join` reusing a live id
    /// (PA503) — becomes an Error diagnostic. Illegal events are
    /// skipped and the replay continues, so one bad line surfaces
    /// every downstream inconsistency it causes, mirroring how the
    /// structural passes report all violations at once.
    pub fn audit_churn(&self, schedule: &ClusterSchedule) -> AuditReport {
        let mut membership = ChurnMembership::new(self.cluster);
        let mut diagnostics = Vec::new();
        for event in schedule.events() {
            if let Err(e) = membership.apply(event) {
                let code = match e {
                    ChurnError::UnknownDevice { .. } => Code::ChurnUnknownDevice,
                    ChurnError::DuplicateJoin { .. } => Code::ChurnDuplicateJoin,
                    _ => Code::ChurnInvalidTransition,
                };
                diagnostics.push(
                    Diagnostic::new(code, format!("churn event `{event}` rejected: {e}"))
                        .at_device(event.device),
                );
            }
        }
        AuditReport::normalized(diagnostics)
    }

    /// PA101: per-device footprint (weights + peak activations) against
    /// the configured budget.
    fn memory_pass(&self, plan: &Plan, out: &mut Vec<Diagnostic>) {
        let Some(budget) = self.config.memory_budget_bytes else {
            return;
        };
        for dm in memory::plan_memory(self.model, plan) {
            if dm.total_bytes() > budget {
                out.push(
                    Diagnostic::new(
                        Code::MemoryOverrun,
                        format!(
                            "device {} needs {:.1} MB ({:.1} MB weights + {:.1} MB activations), budget is {:.1} MB",
                            dm.device,
                            dm.total_bytes() as f64 / 1e6,
                            dm.weights_bytes as f64 / 1e6,
                            dm.peak_activation_bytes as f64 / 1e6,
                            budget as f64 / 1e6
                        ),
                    )
                    .at_device(dm.device),
                );
            }
        }
    }

    /// PA102: shares whose work is mostly recomputed by neighbours — a
    /// strip shorter than its halo does nothing but duplicate.
    fn degenerate_share_pass(&self, plan: &Plan, out: &mut Vec<Diagnostic>) {
        for (idx, stage) in plan.stages.iter().enumerate() {
            if stage.worker_count() < 2 {
                continue;
            }
            for w in redundancy::stage_work(self.model, stage) {
                if w.redundancy_ratio() >= self.config.degenerate_share_ratio {
                    out.push(
                        Diagnostic::new(
                            Code::DegenerateShare,
                            format!(
                                "device {}'s share in stage {idx} is {:.0}% redundant (threshold {:.0}%): mostly halo recompute",
                                w.device,
                                100.0 * w.redundancy_ratio(),
                                100.0 * self.config.degenerate_share_ratio
                            ),
                        )
                        .at_stage(idx)
                        .at_device(w.device),
                    );
                }
            }
        }
    }

    /// PA103: plan-wide redundancy ratio (Eq. 4) above the threshold.
    fn redundancy_pass(&self, plan: &Plan, out: &mut Vec<Diagnostic>) {
        let work = redundancy::plan_work(self.model, plan);
        let ratio = redundancy::redundancy_ratio(&work);
        if ratio > self.config.redundancy_threshold {
            out.push(Diagnostic::new(
                Code::ExcessRedundancy,
                format!(
                    "{:.0}% of all computed FLOPs are duplicated halo work (threshold {:.0}%)",
                    100.0 * ratio,
                    100.0 * self.config.redundancy_threshold
                ),
            ));
        }
    }

    /// PA104: claimed period/latency vs the cost model's recomputation.
    fn cost_consistency_pass(&self, plan: &Plan, out: &mut Vec<Diagnostic>) {
        if self.config.claimed_period.is_none() && self.config.claimed_latency.is_none() {
            return;
        }
        let metrics = self
            .params
            .cost_model(self.model)
            .evaluate(plan, self.cluster);
        let checks = [
            ("period", self.config.claimed_period, metrics.period),
            ("latency", self.config.claimed_latency, metrics.latency),
        ];
        for (what, claimed, actual) in checks {
            let Some(claimed) = claimed else { continue };
            let scale = claimed.abs().max(actual.abs()).max(f64::MIN_POSITIVE);
            if (claimed - actual).abs() / scale > self.config.rel_tol {
                out.push(Diagnostic::new(
                    Code::CostMismatch,
                    format!(
                        "claimed {what} {claimed:.6}s but the cost model computes {actual:.6}s"
                    ),
                ));
            }
        }
    }

    /// PA106: the measured bottleneck stage (from a run or trace)
    /// differs from the stage the cost model says should dominate — the
    /// plan was optimized against a model that does not match reality.
    fn bottleneck_pass(&self, plan: &Plan, out: &mut Vec<Diagnostic>) {
        let Some(observed) = &self.config.observed_stage_busy else {
            return;
        };
        if observed.len() != plan.stage_count() || plan.stage_count() < 2 {
            return;
        }
        let argmax = |it: &mut dyn Iterator<Item = f64>| {
            it.enumerate()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(i, _)| i)
        };
        let measured = argmax(&mut observed.iter().copied());
        let cm = self.params.cost_model(self.model);
        let analytic = argmax(
            &mut plan
                .stages
                .iter()
                .map(|s| cm.stage_cost(s, self.cluster).total()),
        );
        if let (Some(m), Some(a)) = (measured, analytic) {
            if m != a {
                out.push(
                    Diagnostic::new(
                        Code::BottleneckMismatch,
                        format!(
                            "measured bottleneck is stage {m} ({:.4}s busy) but the cost model \
                             predicts stage {a}: the plan optimizes the wrong stage",
                            observed[m]
                        ),
                    )
                    .at_stage(m),
                );
            }
        }
    }

    /// PA105: grid tiles far from square duplicate more halo than the
    /// best factorization would.
    fn aspect_ratio_pass(&self, plan: &Plan, out: &mut Vec<Diagnostic>) {
        for (idx, stage) in plan.stages.iter().enumerate() {
            for a in stage.assignments.iter().filter(|a| !a.is_empty()) {
                let Some(cols) = a.cols else { continue };
                let (h, w) = (a.rows.len() as f64, cols.len() as f64);
                let aspect = (h / w).max(w / h);
                if aspect > self.config.aspect_ratio_limit {
                    out.push(
                        Diagnostic::new(
                            Code::GridAspect,
                            format!(
                                "device {}'s tile in stage {idx} is {}x{} (aspect {aspect:.1}, limit {:.1})",
                                a.device,
                                a.rows.len(),
                                cols.len(),
                                self.config.aspect_ratio_limit
                            ),
                        )
                        .at_stage(idx)
                        .at_device(a.device),
                    );
                }
            }
        }
    }

    /// PA201: cluster devices that never work under this plan.
    fn idle_device_pass(&self, plan: &Plan, out: &mut Vec<Diagnostic>) {
        let used = plan.used_devices();
        for d in self.cluster.devices() {
            if !used.contains(&d.id) {
                out.push(
                    Diagnostic::new(
                        Code::IdleDevice,
                        format!("device {} ({}) does no work in this plan", d.id, d.name),
                    )
                    .at_device(d.id),
                );
            }
        }
    }

    /// PA203: degraded plans must not route work onto devices the
    /// request excluded as failed.
    fn excluded_device_pass(&self, plan: &Plan, out: &mut Vec<Diagnostic>) {
        if self.config.excluded_devices.is_empty() {
            return;
        }
        for (idx, stage) in plan.stages.iter().enumerate() {
            for a in stage.assignments.iter().filter(|a| !a.is_empty()) {
                if self.config.excluded_devices.contains(&a.device) {
                    out.push(
                        Diagnostic::new(
                            Code::ExcludedDeviceUsed,
                            format!(
                                "stage {idx} assigns rows to device {}, which the request \
                                 excluded as failed",
                                a.device
                            ),
                        )
                        .at_stage(idx)
                        .at_device(a.device),
                    );
                }
            }
        }
    }

    /// PA202: zero-area assignments clutter plans and confuse readers.
    fn empty_assignment_pass(&self, plan: &Plan, out: &mut Vec<Diagnostic>) {
        for (idx, stage) in plan.stages.iter().enumerate() {
            for a in stage.assignments.iter().filter(|a| a.is_empty()) {
                out.push(
                    Diagnostic::new(
                        Code::EmptyAssignment,
                        format!(
                            "stage {idx} carries an empty assignment for device {}",
                            a.device
                        ),
                    )
                    .at_stage(idx)
                    .at_device(a.device),
                );
            }
        }
    }
}

/// The complete result of one audit: every diagnostic from every pass
/// in the canonical deterministic order — Errors first, then Warnings,
/// then Infos, each tier sorted by (code, stage, device, unit,
/// message) with exact duplicates removed. Two audits of the same plan
/// therefore render byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// All diagnostics emitted.
    pub diagnostics: Vec<Diagnostic>,
}

impl AuditReport {
    /// Builds a report in the canonical order: stable-sorted by
    /// descending severity then (code, stage, device, unit, message),
    /// with exact duplicates (e.g. the same per-worker finding reached
    /// through two passes) deduplicated.
    pub fn normalized(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.code.id().cmp(b.code.id()))
                .then_with(|| a.stage.cmp(&b.stage))
                .then_with(|| a.device.cmp(&b.device))
                .then_with(|| a.unit.cmp(&b.unit))
                .then_with(|| a.message.cmp(&b.message))
        });
        diagnostics.dedup();
        AuditReport { diagnostics }
    }

    /// Error-level diagnostics (structural defects).
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.by_severity(Severity::Error)
    }

    /// Warning-level diagnostics (efficiency hazards).
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.by_severity(Severity::Warning)
    }

    /// Info-level diagnostics.
    pub fn infos(&self) -> impl Iterator<Item = &Diagnostic> {
        self.by_severity(Severity::Info)
    }

    fn by_severity(&self, s: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == s)
    }

    /// Whether the plan is structurally valid (no Error diagnostics) —
    /// exactly when `Plan::validate` returns `Ok`.
    pub fn is_executable(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Whether the audit found nothing at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any diagnostic carries `code`.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// `(errors, warnings, infos)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.errors().count(),
            self.warnings().count(),
            self.infos().count(),
        )
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (e, w, i) = self.counts();
        writeln!(f, "{e} error(s), {w} warning(s), {i} info(s)")?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;
    use pico_model::Rows;
    use pico_partition::{
        Assignment, ExecutionMode, PicoPlanner, PlanRequest, Planner, Scheme, Stage,
    };

    #[test]
    fn pico_plan_is_executable_and_report_renders() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let params = CostParams::wifi_50mbps();
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let report = Auditor::new(&m, &c).with_params(params).audit(&plan);
        assert!(report.is_executable());
        let text = report.to_string();
        assert!(text.contains("0 error(s)"), "{text}");
    }

    #[test]
    fn structural_errors_suppress_analysis_passes() {
        // A broken plan on an oversized cluster: the idle-device pass
        // must NOT run (analysis assumes structural validity).
        let m = zoo::toy(2);
        let c = Cluster::pi_cluster(4, 1.0);
        let h = m.output_shape().height;
        let plan = Plan::new(
            Scheme::Pico,
            ExecutionMode::Pipelined,
            vec![Stage::new(
                pico_model::Segment::new(0, 1),
                vec![Assignment::new(0, Rows::full(h))],
            )],
        );
        let report = Auditor::new(&m, &c).audit(&plan);
        assert!(!report.is_executable());
        assert!(!report.has_code(Code::IdleDevice));
    }

    #[test]
    fn bottleneck_mismatch_fires_only_on_disagreement() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let params = CostParams::wifi_50mbps();
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        if plan.stage_count() < 2 {
            return;
        }
        let cm = params.cost_model(&m);
        let costs: Vec<f64> = plan
            .stages
            .iter()
            .map(|s| cm.stage_cost(s, &c).total())
            .collect();
        // Agreement: feeding back the analytic costs stays clean.
        let agree = Auditor::new(&m, &c)
            .with_params(params)
            .with_config(AuditConfig::default().with_observed_stage_busy(costs.clone()))
            .audit(&plan);
        assert!(!agree.has_code(Code::BottleneckMismatch), "{agree}");
        // Disagreement: a measurement dominated by a different stage.
        let analytic_max = costs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let mut skewed = costs;
        let other = (analytic_max + 1) % skewed.len();
        skewed[other] = skewed[analytic_max] * 10.0;
        let disagree = Auditor::new(&m, &c)
            .with_params(params)
            .with_config(AuditConfig::default().with_observed_stage_busy(skewed))
            .audit(&plan);
        assert!(disagree.has_code(Code::BottleneckMismatch), "{disagree}");
        assert!(disagree.is_executable());
    }

    #[test]
    fn excluded_device_pass_flags_only_real_violations() {
        use pico_partition::PlanRequest;
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(4, 1.0);
        let params = CostParams::default();
        let failed = [1usize];

        // A properly degraded plan routes around the failure: no PA203.
        let req = PlanRequest::new(&m, &c, &params)
            .with_excluded_devices(&failed)
            .unwrap();
        let degraded = PicoPlanner::new().plan(&req).unwrap();
        let config = AuditConfig::default().with_excluded_devices(&failed);
        let clean = Auditor::new(&m, &c)
            .with_params(params)
            .with_config(config.clone())
            .audit(&degraded);
        assert!(clean.is_executable(), "{clean}");
        assert!(!clean.has_code(Code::ExcludedDeviceUsed), "{clean}");

        // A plan that still uses the failed device is flagged at Info.
        let stale = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let uses_failed = stale
            .stages
            .iter()
            .any(|s| s.assignments.iter().any(|a| a.device == 1 && !a.is_empty()));
        if uses_failed {
            let flagged = Auditor::new(&m, &c)
                .with_params(params)
                .with_config(config)
                .audit(&stale);
            assert!(flagged.has_code(Code::ExcludedDeviceUsed), "{flagged}");
            assert!(flagged.is_executable(), "PA203 is Info, not Error");
        }
    }

    #[test]
    fn clean_churn_schedule_audits_empty() {
        let m = zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let schedule = ClusterSchedule::new()
            .leave(3, 2)
            .rejoin(3, 5)
            .leave(3, 8)
            .rejoin(3, 11);
        let report = Auditor::new(&m, &c).audit_churn(&schedule);
        assert!(report.is_executable(), "{report}");
        assert!(report.diagnostics.is_empty(), "{report}");
    }

    #[test]
    fn illegal_churn_events_map_to_pa5xx_codes() {
        let m = zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let schedule = ClusterSchedule::new()
            .leave(9, 1) // unknown device -> PA501
            .rejoin(2, 3) // never left -> PA502
            .join(0, 4, 1.0); // id 0 already live -> PA503
        let report = Auditor::new(&m, &c).audit_churn(&schedule);
        assert!(!report.is_executable());
        assert!(report.has_code(Code::ChurnUnknownDevice), "{report}");
        assert!(report.has_code(Code::ChurnInvalidTransition), "{report}");
        assert!(report.has_code(Code::ChurnDuplicateJoin), "{report}");
        assert_eq!(report.counts().0, 3, "{report}");
    }

    #[test]
    fn claimed_metrics_within_tolerance_are_clean() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(2, 1.0);
        let params = CostParams::default();
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        let metrics = params.cost_model(&m).evaluate(&plan, &c);
        let config = AuditConfig::default().with_claimed_metrics(metrics.period, metrics.latency);
        let report = Auditor::new(&m, &c)
            .with_params(params)
            .with_config(config)
            .audit(&plan);
        assert!(!report.has_code(Code::CostMismatch), "{report}");
    }
}
