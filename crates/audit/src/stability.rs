//! Static queue-stability certification: Theorem 2 without running the
//! DES (PA303, PA304).
//!
//! The paper models each pipeline as an M/D/1 queue whose service time
//! is the pipeline period `p` (the bottleneck station); the queue is
//! stable iff `ρ = p·λ < 1`, with average latency diverging as λ
//! approaches the critical rate `λ* = 1/p` (Theorem 2). APICO observes
//! this at runtime through the EWMA estimator; this pass *proves* it
//! for a whole workload band `[λ_lo, λ_hi]` before deployment, using
//! the same station profiles the DES executes
//! ([`Simulation::station_profiles`]) so the static verdict and the
//! simulation can never disagree about service times. Because ρ is
//! monotone in λ, certifying the top of the band certifies the band.

use pico_model::Model;
use pico_partition::diag::{Code, Diagnostic};
use pico_partition::{Cluster, CostParams, Plan};
use pico_sim::{mdone, Simulation, WorkloadBand};

/// PA303/PA304: certify `ρ < 1` across the band or pinpoint the
/// saturating station, its slowest device, and λ*.
pub(crate) fn stability_pass(
    model: &Model,
    cluster: &Cluster,
    params: CostParams,
    band: WorkloadBand,
    margin: f64,
    plan: &Plan,
    out: &mut Vec<Diagnostic>,
) {
    let sim = Simulation::new(model, cluster, &params);
    let profiles = sim.station_profiles(plan);
    let Some(bottleneck) = profiles
        .iter()
        .max_by(|a, b| a.service.total_cmp(&b.service))
    else {
        return;
    };
    let period = bottleneck.service;
    if period <= 0.0 || !period.is_finite() {
        return;
    }
    let lambda_star = mdone::max_stable_rate(period);
    // The station's slowest device is the one whose queue grows first.
    let device = bottleneck
        .busy_per_task
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(d, _)| *d);
    let rho_hi = mdone::utilization(period, band.hi);
    if band.hi >= lambda_star {
        let mut d = Diagnostic::new(
            Code::QueueUnstable,
            format!(
                "workload band {band} reaches λ* = {lambda_star:.3} tasks/s: the bottleneck \
                 station (period {period:.4}s{}) saturates at ρ = {rho_hi:.2}",
                match bottleneck.stage {
                    Some(s) => format!(", stage {s}"),
                    None => ", sequential plan".to_string(),
                }
            ),
        );
        if let Some(s) = bottleneck.stage {
            d = d.at_stage(s);
        }
        if let Some(dev) = device {
            d = d.at_device(dev);
        }
        out.push(d);
    } else if rho_hi >= margin {
        let mut d = Diagnostic::new(
            Code::NearSaturation,
            format!(
                "ρ = {rho_hi:.2} at λ_hi = {:.3} tasks/s exceeds the {margin:.2} safety margin \
                 (λ* = {lambda_star:.3}): latency is on Theorem 2's steep flank",
                band.hi
            ),
        );
        if let Some(s) = bottleneck.stage {
            d = d.at_stage(s);
        }
        out.push(d);
    }
}
