//! Switch-safety analysis over pairs of plans — APICO's switch set
//! (PA305, PA306, PA307).
//!
//! APICO keeps several plans warm and swaps between them as the EWMA
//! workload estimate crosses thresholds. A swap is only safe if the
//! pair agrees statically on three contracts:
//!
//! * **Boundary compatibility** (PA305) — drain-then-switch hands the
//!   stream over at stage boundaries, so one plan's interior cut set
//!   must contain the other's (a sequential one-stage plan has no
//!   interior cuts and is compatible with any pipeline — the paper's
//!   canonical PICO ↔ OFL pair).
//! * **Memory envelopes** (PA306) — during the swap both plans' weights
//!   and buffers are resident; per shared device the *certified* bounds
//!   (dataflow pass) must fit the swap budget together.
//! * **Deadlock freedom** (PA307) — with bounded channels, a device
//!   still draining plan A while producing for plan B can close a wait
//!   cycle in the union of the two channel topologies; the combined
//!   device wait-for graph must be acyclic.

use pico_model::Model;
use pico_partition::diag::{Code, Diagnostic};
use pico_partition::{symbolic, Plan};
use pico_runtime::{channel_topology, ChannelKind};

/// PA305: nested interior cut sets.
pub(crate) fn boundary_pass(a: &Plan, b: &Plan, out: &mut Vec<Diagnostic>) {
    let cuts_a = symbolic::interior_cuts(a);
    let cuts_b = symbolic::interior_cuts(b);
    let subset = |x: &[usize], y: &[usize]| x.iter().all(|c| y.contains(c));
    if !subset(&cuts_a, &cuts_b) && !subset(&cuts_b, &cuts_a) {
        out.push(Diagnostic::new(
            Code::SwitchBoundaryIncompatible,
            format!(
                "{} cuts at units {cuts_a:?} but {} cuts at {cuts_b:?}: neither set contains \
                 the other, so a drained swap has no common handoff point",
                a.scheme, b.scheme
            ),
        ));
    }
}

/// PA306: combined certified footprint on shared devices vs the swap
/// budget. Devices used by only one plan are the per-plan PA302 pass's
/// business; the overlap is what a warm swap adds.
pub(crate) fn swap_memory_pass(
    model: &Model,
    a: &Plan,
    b: &Plan,
    budget: usize,
    out: &mut Vec<Diagnostic>,
) {
    let mem_b: std::collections::BTreeMap<usize, usize> = symbolic::certified_plan_memory(model, b)
        .into_iter()
        .map(|m| (m.device, m.total_bytes()))
        .collect();
    for m in symbolic::certified_plan_memory(model, a) {
        let Some(&other) = mem_b.get(&m.device) else {
            continue;
        };
        let combined = m.total_bytes() + other;
        if combined > budget {
            out.push(
                Diagnostic::new(
                    Code::SwapMemoryOverlap,
                    format!(
                        "device {} holds {:.1} MB for {} plus {:.1} MB for {} during the swap \
                         ({:.1} MB combined), swap budget is {:.1} MB",
                        m.device,
                        m.total_bytes() as f64 / 1e6,
                        a.scheme,
                        other as f64 / 1e6,
                        b.scheme,
                        combined as f64 / 1e6,
                        budget as f64 / 1e6
                    ),
                )
                .at_device(m.device),
            );
        }
    }
}

/// PA307: the union of the two plans' blocking inter-stage channel
/// edges must not close a device wait-for cycle. Worker channels are
/// coordinator-internal to one stage (scatter matched to gather) and
/// cannot cross plans, so only inter-stage edges contribute.
pub(crate) fn deadlock_pass(
    a: &Plan,
    b: &Plan,
    capacity: Option<usize>,
    out: &mut Vec<Diagnostic>,
) {
    let mut waits: std::collections::BTreeMap<usize, std::collections::BTreeSet<usize>> =
        std::collections::BTreeMap::new();
    for plan in [a, b] {
        let topo = channel_topology(plan, capacity);
        for edge in topo.blocking_edges() {
            if edge.kind != ChannelKind::InterStage {
                continue;
            }
            // A bounded queue's sender stalls until its receivers
            // drain: sender waits-for receiver.
            for &s in &edge.senders {
                for &r in &edge.receivers {
                    waits.entry(s).or_default().insert(r);
                }
            }
        }
    }
    if let Some(cycle) = find_cycle(&waits) {
        out.push(
            Diagnostic::new(
                Code::ChannelDeadlock,
                format!(
                    "bounded channels (capacity {}) close a wait-for cycle across the \
                     {} ↔ {} switch pair: devices {cycle:?}",
                    capacity.unwrap_or(0),
                    a.scheme,
                    b.scheme
                ),
            )
            .at_device(cycle[0]),
        );
    }
}

/// Iterative three-color DFS; returns one cycle's devices when found.
fn find_cycle(
    waits: &std::collections::BTreeMap<usize, std::collections::BTreeSet<usize>>,
) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: std::collections::BTreeMap<usize, Color> =
        waits.keys().map(|&k| (k, Color::White)).collect();
    for (&n, targets) in waits {
        for &t in targets {
            color.entry(t).or_insert(Color::White);
        }
        color.entry(n).or_insert(Color::White);
    }
    let nodes: Vec<usize> = color.keys().copied().collect();
    for &root in &nodes {
        if color[&root] != Color::White {
            continue;
        }
        // Stack of (node, iterator position) pairs emulating recursion.
        let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        color.insert(root, Color::Gray);
        let succ = |n: usize| -> Vec<usize> {
            waits
                .get(&n)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default()
        };
        stack.push((root, succ(root), 0));
        while let Some((node, targets, idx)) = stack.last().cloned() {
            if idx >= targets.len() {
                color.insert(node, Color::Black);
                stack.pop();
                continue;
            }
            stack.last_mut().unwrap().2 += 1;
            let t = targets[idx];
            match color[&t] {
                Color::Gray => {
                    // Cycle: the gray path from t to the top of stack.
                    let mut cycle: Vec<usize> = stack.iter().map(|(n, _, _)| *n).collect();
                    if let Some(pos) = cycle.iter().position(|&n| n == t) {
                        cycle.drain(..pos);
                    }
                    return Some(cycle);
                }
                Color::White => {
                    color.insert(t, Color::Gray);
                    stack.push((t, succ(t), 0));
                }
                Color::Black => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(
        edges: &[(usize, usize)],
    ) -> std::collections::BTreeMap<usize, std::collections::BTreeSet<usize>> {
        let mut g: std::collections::BTreeMap<usize, std::collections::BTreeSet<usize>> =
            std::collections::BTreeMap::new();
        for &(a, b) in edges {
            g.entry(a).or_default().insert(b);
        }
        g
    }

    #[test]
    fn chains_are_acyclic_and_loops_are_found() {
        assert!(find_cycle(&graph(&[(0, 1), (1, 2), (2, 3)])).is_none());
        assert!(find_cycle(&graph(&[(0, 1), (1, 2), (0, 2)])).is_none());
        let cycle = find_cycle(&graph(&[(0, 1), (1, 2), (2, 0)])).unwrap();
        assert_eq!(cycle.len(), 3);
        // Self-wait (a device feeding itself through a bounded queue).
        assert!(find_cycle(&graph(&[(5, 5)])).is_some());
    }
}
