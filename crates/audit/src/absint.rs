//! Symbolic dataflow over the plan IR: halo-exchange consistency and
//! certified per-device memory (PA301, PA302).
//!
//! The structural passes prove a plan's *shape* is sound; this pass
//! proves its *dataflow* is. A small fixed-point framework
//! ([`Dataflow`]) propagates the demanded output region backwards
//! through the stage chain (the model's receptive-field arithmetic,
//! Eq. 3); each stage must then (a) keep every worker region inside its
//! output rectangle and (b) cover the demanded region exactly with its
//! workers' disjoint outputs. The area check the structural PA008 pass
//! performs cannot see a tile that drifted out of bounds while another
//! shrank to compensate — the clipped-coverage check here can.
//!
//! The same symbolic regions yield a *certified* per-device resident
//! bound (weights + activation peak + im2col scratch peak) via
//! [`pico_partition::symbolic::certified_plan_memory`]; exceeding the
//! deep budget is PA302, an Error where the estimate-based PA101 is
//! only a Warning.

use pico_model::{Model, Region2};
use pico_partition::diag::{Code, Diagnostic};
use pico_partition::{symbolic, Plan};

/// A minimal fixed-point dataflow solver over a fixed node set.
///
/// Facts live in a vector indexed by node; [`Dataflow::solve`]
/// repeatedly recomputes the fact of each node on the worklist from
/// the current fact vector and re-enqueues a node's dependents when
/// its fact changes, until quiescence. For the (acyclic) stage chain
/// this converges in one sweep, but the solver is deliberately
/// general: it terminates for any monotone flow on a finite lattice.
#[derive(Debug, Clone)]
pub struct Dataflow<F> {
    facts: Vec<F>,
    /// `dependents[n]` = nodes whose fact reads node `n`'s fact.
    dependents: Vec<Vec<usize>>,
}

impl<F: Clone + PartialEq> Dataflow<F> {
    /// Creates a solver from initial facts and the dependency edges
    /// (`dependents[n]` lists the nodes to revisit when `n` changes).
    pub fn new(init: Vec<F>, dependents: Vec<Vec<usize>>) -> Self {
        assert_eq!(init.len(), dependents.len(), "one dependent list per node");
        Dataflow {
            facts: init,
            dependents,
        }
    }

    /// Runs `flow(node, facts)` to a fixed point and returns the facts.
    pub fn solve(mut self, mut flow: impl FnMut(usize, &[F]) -> F) -> Vec<F> {
        let n = self.facts.len();
        let mut queued = vec![true; n];
        let mut worklist: std::collections::VecDeque<usize> = (0..n).collect();
        // Any monotone flow on a finite lattice converges well before
        // this; the cap turns a non-monotone flow bug into a panic
        // instead of a hang.
        let mut budget = n.saturating_mul(n).saturating_add(64);
        while let Some(node) = worklist.pop_front() {
            queued[node] = false;
            assert!(
                budget > 0,
                "dataflow failed to converge: non-monotone flow?"
            );
            budget -= 1;
            let next = flow(node, &self.facts);
            if next != self.facts[node] {
                self.facts[node] = next;
                for &d in &self.dependents[node] {
                    if !queued[d] {
                        queued[d] = true;
                        worklist.push_back(d);
                    }
                }
            }
        }
        self.facts
    }
}

/// PA301: halo-exchange consistency via backward region propagation.
pub(crate) fn dataflow_pass(model: &Model, plan: &Plan, out: &mut Vec<Diagnostic>) {
    let regions = symbolic::stage_regions(model, plan);
    if regions.is_empty() {
        return;
    }
    let n = regions.len();

    // Every worker's output region must stay inside its stage's output
    // rectangle — the paper's halo exchange only ever ships rows that
    // exist.
    for sr in &regions {
        let rect = sr.output_rect();
        for w in &sr.workers {
            if !rect.contains(w.output) {
                out.push(
                    Diagnostic::new(
                        Code::HaloMismatch,
                        format!(
                            "device {}'s region {} escapes stage {}'s {}x{} output",
                            w.device, w.output, sr.stage, sr.out_height, sr.out_width
                        ),
                    )
                    .at_stage(sr.stage)
                    .at_device(w.device),
                );
            }
        }
    }

    // Backward demand: the consumer needs the whole model output; each
    // earlier stage must produce whatever the next stage's segment
    // reads of it. `dependents[s] = {s-1}`: when stage s's demand
    // changes, stage s-1 must be recomputed.
    let last_rect = regions[n - 1].output_rect();
    let dependents: Vec<Vec<usize>> = (0..n)
        .map(|s| if s > 0 { vec![s - 1] } else { Vec::new() })
        .collect();
    let init = vec![Region2::full(0, 0); n];
    let demands = Dataflow::new(init, dependents).solve(|s, facts| {
        if s == n - 1 {
            last_rect
        } else {
            let next = &regions[s + 1];
            let seg = plan.stages[next.stage].segment;
            model.segment_input_region(seg, facts[s + 1])
        }
    });

    // Coverage: the workers' disjoint outputs, clipped to the demanded
    // region, must tile it exactly. A tile that escaped the rectangle
    // loses area when clipped, so the sum falls short even though the
    // structural area check balanced.
    for (sr, demand) in regions.iter().zip(&demands) {
        if demand.is_empty() {
            continue;
        }
        let covered: usize = sr
            .workers
            .iter()
            .map(|w| w.output.rows.overlap(demand.rows) * w.output.cols.overlap(demand.cols))
            .sum();
        if covered < demand.area() {
            out.push(
                Diagnostic::new(
                    Code::HaloMismatch,
                    format!(
                        "stage {} workers cover {covered} of {} demanded cells: the \
                         downstream halo demand {demand} is unsatisfiable",
                        sr.stage,
                        demand.area()
                    ),
                )
                .at_stage(sr.stage),
            );
        }
    }
}

/// PA302: certified per-device resident bound vs the deep budget.
pub(crate) fn certified_memory_pass(
    model: &Model,
    plan: &Plan,
    budget: usize,
    out: &mut Vec<Diagnostic>,
) {
    for cm in symbolic::certified_plan_memory(model, plan) {
        if cm.total_bytes() > budget {
            out.push(
                Diagnostic::new(
                    Code::ScratchOverrun,
                    format!(
                        "device {}'s certified bound is {:.1} MB ({:.1} MB weights + {:.1} MB \
                         activations + {:.1} MB im2col scratch), deep budget is {:.1} MB",
                        cm.device,
                        cm.total_bytes() as f64 / 1e6,
                        cm.weights_bytes as f64 / 1e6,
                        cm.peak_activation_bytes as f64 / 1e6,
                        cm.scratch_bytes as f64 / 1e6,
                        budget as f64 / 1e6
                    ),
                )
                .at_device(cm.device),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_reaches_the_chain_fixpoint_in_any_order() {
        // max-propagation down a chain: fact[i] = max(fact[i], fact[i-1]).
        let deps: Vec<Vec<usize>> = (0..5)
            .map(|i| if i < 4 { vec![i + 1] } else { vec![] })
            .collect();
        let facts = Dataflow::new(vec![3u32, 0, 7, 0, 0], deps).solve(|i, f| {
            if i == 0 {
                f[0]
            } else {
                f[i].max(f[i - 1])
            }
        });
        assert_eq!(facts, vec![3, 3, 7, 7, 7]);
    }

    #[test]
    #[should_panic(expected = "non-monotone")]
    fn solver_rejects_oscillation() {
        let _ = Dataflow::new(vec![0u32, 0], vec![vec![1], vec![0]])
            .solve(|i, f| f[1 - i].wrapping_add(1));
    }
}
