//! Machine-readable audit reports: strict JSON via
//! [`pico_telemetry::json`], with a lossless parse-back so the CLI can
//! self-check what it wrote (the `pico bench --json` discipline).
//!
//! The document shape is stable and deterministic — reports are
//! normalized before serialization, so two audits of the same plan
//! produce byte-identical files:
//!
//! ```json
//! {"audits":[{"name":"pico","errors":0,"warnings":1,"infos":2,
//!   "diagnostics":[{"code":"PA101","severity":"warning","stage":null,
//!                   "device":3,"unit":null,"message":"..."}]}]}
//! ```

use pico_partition::diag::{Code, Diagnostic};
use pico_telemetry::json::{escape, fmt_f64, parse, Value};

use crate::AuditReport;

/// Serializes named audit reports (e.g. one per scheme, plus switch
/// pairs) as one strict-JSON document.
pub fn reports_to_json(entries: &[(String, AuditReport)]) -> String {
    let mut out = String::from("{\"audits\":[");
    for (i, (name, report)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (e, w, inf) = report.counts();
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            escape(name),
            fmt_f64(e as f64),
            fmt_f64(w as f64),
            fmt_f64(inf as f64)
        ));
        for (j, d) in report.diagnostics.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&diagnostic_to_json(d));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn diagnostic_to_json(d: &Diagnostic) -> String {
    let opt = |v: Option<usize>| match v {
        Some(n) => fmt_f64(n as f64),
        None => "null".to_string(),
    };
    format!(
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"stage\":{},\"device\":{},\"unit\":{},\"message\":\"{}\"}}",
        d.code.id(),
        d.severity,
        opt(d.stage),
        opt(d.device),
        opt(d.unit),
        escape(&d.message)
    )
}

/// Parses a document produced by [`reports_to_json`] back into named
/// reports.
///
/// # Errors
///
/// Returns a description of the first structural problem: malformed
/// JSON, a missing field, or an unknown diagnostic code.
pub fn reports_from_json(text: &str) -> Result<Vec<(String, AuditReport)>, String> {
    let doc = parse(text).map_err(|e| e.to_string())?;
    let audits = doc
        .get("audits")
        .and_then(Value::as_arr)
        .ok_or("missing \"audits\" array")?;
    let mut out = Vec::with_capacity(audits.len());
    for entry in audits {
        let name = entry
            .get("name")
            .and_then(Value::as_str)
            .ok_or("audit entry missing \"name\"")?
            .to_string();
        let diags = entry
            .get("diagnostics")
            .and_then(Value::as_arr)
            .ok_or("audit entry missing \"diagnostics\"")?;
        let mut diagnostics = Vec::with_capacity(diags.len());
        for d in diags {
            diagnostics.push(diagnostic_from_json(d)?);
        }
        let report = AuditReport { diagnostics };
        let counts = report.counts();
        let claimed = |key: &str| -> Result<usize, String> {
            entry
                .get(key)
                .and_then(Value::as_f64)
                .map(|v| v as usize)
                .ok_or_else(|| format!("audit entry missing \"{key}\""))
        };
        if (claimed("errors")?, claimed("warnings")?, claimed("infos")?) != counts {
            return Err(format!(
                "audit \"{name}\" count fields disagree with its diagnostics"
            ));
        }
        out.push((name, report));
    }
    Ok(out)
}

fn diagnostic_from_json(v: &Value) -> Result<Diagnostic, String> {
    let code_id = v
        .get("code")
        .and_then(Value::as_str)
        .ok_or("diagnostic missing \"code\"")?;
    let code = Code::from_id(code_id).ok_or_else(|| format!("unknown code {code_id:?}"))?;
    let severity = v
        .get("severity")
        .and_then(Value::as_str)
        .ok_or("diagnostic missing \"severity\"")?;
    if severity != code.severity().to_string() {
        return Err(format!(
            "diagnostic {code_id} claims severity {severity:?}, registry says {}",
            code.severity()
        ));
    }
    let message = v
        .get("message")
        .and_then(Value::as_str)
        .ok_or("diagnostic missing \"message\"")?
        .to_string();
    let opt = |key: &str| -> Result<Option<usize>, String> {
        match v.get(key) {
            Some(Value::Null) => Ok(None),
            Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as usize)),
            Some(_) => Err(format!(
                "diagnostic field \"{key}\" must be null or an index"
            )),
            None => Err(format!("diagnostic missing \"{key}\"")),
        }
    };
    let mut d = Diagnostic::new(code, message);
    d.stage = opt("stage")?;
    d.device = opt("device")?;
    d.unit = opt("unit")?;
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<(String, AuditReport)> {
        let d1 =
            Diagnostic::new(Code::MemoryOverrun, "needs 12.0 MB, budget is 8.0 MB").at_device(3);
        let d2 = Diagnostic::new(Code::IdleDevice, "device 7 (\"pi-7\") does no work").at_device(7);
        let d3 = Diagnostic::new(Code::QueueUnstable, "band reaches λ*")
            .at_stage(1)
            .at_device(2);
        vec![
            (
                "pico".to_string(),
                AuditReport {
                    diagnostics: vec![d3, d1],
                },
            ),
            (
                "ofl".to_string(),
                AuditReport {
                    diagnostics: vec![d2],
                },
            ),
            (
                "empty".to_string(),
                AuditReport {
                    diagnostics: vec![],
                },
            ),
        ]
    }

    #[test]
    fn reports_round_trip_losslessly() {
        let entries = sample();
        let text = reports_to_json(&entries);
        let back = reports_from_json(&text).unwrap();
        assert_eq!(entries, back);
        // And the re-serialization is byte-identical.
        assert_eq!(text, reports_to_json(&back));
    }

    #[test]
    fn corrupted_documents_are_rejected() {
        let text = reports_to_json(&sample());
        let unknown = format!("PA{}", 999);
        for bad in [
            text.replace("PA303", &unknown),
            text.replace("\"errors\":1", "\"errors\":5"),
            text.replace("\"severity\":\"error\"", "\"severity\":\"info\""),
            text.replace("{\"audits\":[", "{\"audits\":"),
        ] {
            assert!(reports_from_json(&bad).is_err(), "{bad}");
        }
    }
}
