//! Property-based tests for the queueing simulation: conservation laws
//! that must hold for any plan and arrival stream.

use pico_model::zoo;
use pico_partition::{
    Cluster, CostParams, EarlyFused, OptimalFused, PicoPlanner, PlanRequest, Planner,
};
use pico_sim::{mdone, Arrivals, Simulation};
use proptest::prelude::*;

fn setup() -> (pico_model::Model, Cluster, CostParams) {
    (
        zoo::toy(6),
        Cluster::paper_heterogeneous_6(),
        CostParams::wifi_50mbps(),
    )
}

fn planners() -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(EarlyFused::new()),
        Box::new(OptimalFused::new()),
        Box::new(PicoPlanner::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Per-task latency is bounded below by the plan's service latency,
    /// and the simulation completes every arrival.
    #[test]
    fn latency_never_below_service_time(rate_scale in 0.1f64..2.0, seed in 0u64..1000) {
        let (model, cluster, params) = setup();
        let sim = Simulation::new(&model, &cluster, &params);
        for planner in planners() {
            let plan = planner.plan(&PlanRequest::new(&model, &cluster, &params)).expect("plans");
            let metrics = params.cost_model(&model).evaluate(&plan, &cluster);
            let lambda = rate_scale / metrics.period;
            let arrivals = Arrivals::poisson(lambda, 60.0 * metrics.period, seed);
            let n = arrivals.times().map(|t| t.len()).unwrap_or(0);
            prop_assume!(n > 0);
            let report = sim.run(&plan, &arrivals);
            prop_assert_eq!(report.completed, n);
            // avg >= service latency; every latency >= service latency.
            prop_assert!(report.avg_latency >= metrics.latency - 1e-9,
                "{}: avg {} < service {}", planner.name(), report.avg_latency, metrics.latency);
            prop_assert!(report.p50_latency <= report.p95_latency + 1e-12);
            prop_assert!(report.p95_latency <= report.max_latency + 1e-12);
        }
    }

    /// Throughput never exceeds the analytic capacity `1 / period`.
    #[test]
    fn throughput_bounded_by_capacity(count in 2usize..200) {
        let (model, cluster, params) = setup();
        let sim = Simulation::new(&model, &cluster, &params);
        for planner in planners() {
            let plan = planner.plan(&PlanRequest::new(&model, &cluster, &params)).expect("plans");
            let metrics = params.cost_model(&model).evaluate(&plan, &cluster);
            let report = sim.run(&plan, &Arrivals::closed_loop(count));
            prop_assert!(report.throughput <= 1.0 / metrics.period + 1e-9,
                "{}: {} > {}", planner.name(), report.throughput, 1.0 / metrics.period);
        }
    }

    /// Stability dichotomy: below capacity the queue stays bounded
    /// (max latency within a constant of the mean); above capacity the
    /// backlog grows with the horizon.
    #[test]
    fn stability_dichotomy(seed in 0u64..100) {
        let (model, cluster, params) = setup();
        let sim = Simulation::new(&model, &cluster, &params);
        let plan = OptimalFused::new().plan(&PlanRequest::new(&model, &cluster, &params)).expect("plans");
        let metrics = params.cost_model(&model).evaluate(&plan, &cluster);

        let stable = Arrivals::poisson(0.5 / metrics.period, 400.0 * metrics.period, seed);
        let r_stable = sim.run(&plan, &stable);
        prop_assert!(r_stable.max_latency < 30.0 * metrics.latency,
            "stable queue blew up: {}", r_stable.max_latency);

        let unstable = Arrivals::poisson(2.0 / metrics.period, 400.0 * metrics.period, seed);
        let r_unstable = sim.run(&plan, &unstable);
        prop_assert!(r_unstable.max_latency > r_stable.max_latency,
            "overload did not hurt: {} vs {}", r_unstable.max_latency, r_stable.max_latency);
    }

    /// The M/D/1 closed form (Theorem 2) tracks the simulated mean for
    /// one-stage schemes within a constant factor at moderate load.
    #[test]
    fn mdone_tracks_simulation(load in 0.2f64..0.8) {
        let (model, cluster, params) = setup();
        let sim = Simulation::new(&model, &cluster, &params);
        let plan = EarlyFused::new().plan(&PlanRequest::new(&model, &cluster, &params)).expect("plans");
        let metrics = params.cost_model(&model).evaluate(&plan, &cluster);
        let lambda = load / metrics.period;
        let arrivals = Arrivals::poisson(lambda, 3000.0 * metrics.period, 7);
        let report = sim.run(&plan, &arrivals);
        let analytic = mdone::avg_latency(metrics.period, metrics.latency, lambda);
        // Theorem 2 over-counts one service period; allow [0.5, 1.2].
        let ratio = report.avg_latency / analytic;
        prop_assert!((0.5..1.2).contains(&ratio), "ratio {ratio}");
    }

    /// Device busy time equals completed tasks times per-task compute.
    #[test]
    fn busy_time_conservation(count in 1usize..100) {
        let (model, cluster, params) = setup();
        let sim = Simulation::new(&model, &cluster, &params);
        let plan = PicoPlanner::new().plan(&PlanRequest::new(&model, &cluster, &params)).expect("plans");
        let cm = params.cost_model(&model);
        let report = sim.run(&plan, &Arrivals::closed_loop(count));
        for stage in &plan.stages {
            for a in stage.assignments.iter().filter(|a| !a.rows.is_empty()) {
                let device = cluster.device(a.device).expect("device exists");
                let per_task = cm.assignment_comp_time(device, stage.segment, a.rows);
                let stat = report
                    .device_stats
                    .iter()
                    .find(|d| d.device == a.device)
                    .expect("device reported");
                prop_assert!((stat.busy - per_task * count as f64).abs() < 1e-6 * stat.busy.max(1.0));
            }
        }
    }
}
