//! The shared workload-estimation module: every λ estimate in the
//! workspace is produced here.
//!
//! Two consumers used to carry their own copies of the Eq. 15 smoothing
//! state: the serving layer's adaptive micro-batcher (EWMA over
//! inter-arrival *gaps*) and the APICO scheduler's windowed arrival
//! counter. Both now compose the same primitives from this module, so
//! the live front-end, the deterministic replayer, and the DES mirrors
//! cannot drift apart:
//!
//! * [`Ewma`] — the bare Eq. 15 update `λ_t = β·λ̂ + (1 − β)·λ_{t−1}`;
//! * [`InterArrivalEstimator`] — EWMA over observed inter-arrival gaps,
//!   with the reciprocal read back as a λ estimate (the serve-layer
//!   signal the fleet re-planner consumes);
//! * [`WorkloadEstimator`] — the paper's windowed arrival-count
//!   estimator used by the APICO DES scheduler.

/// The Eq. 15 exponentially-weighted moving-average estimator:
/// `λ_t = β·λ̂ + (1 − β)·λ_{t−1}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    beta: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an estimator with smoothing factor `beta` (the impact of
    /// the newest measurement).
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `(0, 1]`.
    pub fn new(beta: f64) -> Self {
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        Ewma { beta, value: None }
    }

    /// Feeds a new measurement `λ̂` and returns the updated estimate.
    pub fn update(&mut self, measured: f64) -> f64 {
        let next = match self.value {
            // The first measurement seeds the estimate.
            None => measured,
            Some(prev) => self.beta * measured + (1.0 - self.beta) * prev,
        };
        self.value = Some(next);
        next
    }

    /// The current estimate (`None` before the first measurement).
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// EWMA over observed inter-arrival gaps — the serving layer's λ
/// signal.
///
/// Feed every *admitted* arrival's timestamp through
/// [`observe_arrival`](Self::observe_arrival); the smoothed gap (and
/// its reciprocal, the arrival rate) update once two arrivals have been
/// seen. Timestamps are caller-supplied virtual times, so replays are
/// bit-reproducible. This is the estimator the adaptive micro-batcher
/// sizes batches from and the fleet re-planning controller reads λ
/// from — one state, one update rule, shared bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterArrivalEstimator {
    gap: Ewma,
    last_arrival: Option<f64>,
}

impl InterArrivalEstimator {
    /// Creates an estimator with gap-smoothing factor `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `(0, 1]`.
    pub fn new(beta: f64) -> Self {
        InterArrivalEstimator {
            gap: Ewma::new(beta),
            last_arrival: None,
        }
    }

    /// Records an admitted arrival at absolute time `t` (non-decreasing
    /// across calls) and folds the inter-arrival gap into the EWMA.
    pub fn observe_arrival(&mut self, t: f64) {
        if let Some(prev) = self.last_arrival {
            self.gap.update((t - prev).max(0.0));
        }
        self.last_arrival = Some(t);
    }

    /// The smoothed inter-arrival gap in seconds, if one exists yet.
    pub fn smoothed_gap(&self) -> Option<f64> {
        self.gap.value()
    }

    /// The smoothed arrival rate `λ = 1 / gap` in tasks/s (`None`
    /// before two arrivals; `+∞` for a collapsed zero gap).
    pub fn lambda(&self) -> Option<f64> {
        self.gap
            .value()
            .map(|g| if g > 0.0 { 1.0 / g } else { f64::INFINITY })
    }

    /// The newest observed arrival time, if any.
    pub fn last_arrival(&self) -> Option<f64> {
        self.last_arrival
    }
}

/// Estimates the cluster workload λ from observed task arrivals, the way
/// the paper does: count arrivals per measurement window, then smooth
/// with [`Ewma`] ("it is hard for the edge cluster to capture the
/// realtime workload directly, thus we use a moving average method").
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEstimator {
    window: f64,
    ewma: Ewma,
    window_start: f64,
    window_count: usize,
}

impl WorkloadEstimator {
    /// Creates an estimator with the given measurement `window`
    /// (seconds) and smoothing factor `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not strictly positive or `beta` is outside
    /// `(0, 1]`.
    pub fn new(window: f64, beta: f64) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive"
        );
        WorkloadEstimator {
            window,
            ewma: Ewma::new(beta),
            window_start: 0.0,
            window_count: 0,
        }
    }

    /// Records a task arrival at absolute time `t` (non-decreasing
    /// across calls), closing and smoothing any windows that have
    /// elapsed. Returns the current λ estimate.
    pub fn observe_arrival(&mut self, t: f64) -> f64 {
        self.roll_to(t);
        self.window_count += 1;
        self.ewma
            .value()
            .unwrap_or(self.window_count as f64 / self.window)
    }

    /// Advances time to `t` without an arrival (closing elapsed
    /// windows) and returns the current λ estimate.
    pub fn estimate_at(&mut self, t: f64) -> f64 {
        self.roll_to(t);
        self.ewma.value().unwrap_or(0.0)
    }

    fn roll_to(&mut self, t: f64) {
        while t >= self.window_start + self.window {
            let measured = self.window_count as f64 / self.window;
            self.ewma.update(measured);
            self.window_start += self.window;
            self.window_count = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_seeds() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
    }

    #[test]
    fn update_follows_eq15() {
        let mut e = Ewma::new(0.25);
        e.update(8.0);
        let v = e.update(4.0);
        assert!((v - (0.25 * 4.0 + 0.75 * 8.0)).abs() < 1e-12);
    }

    #[test]
    fn beta_one_tracks_instantly() {
        let mut e = Ewma::new(1.0);
        e.update(5.0);
        assert_eq!(e.update(9.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_rejected() {
        Ewma::new(0.0);
    }

    #[test]
    fn gap_estimator_matches_hand_rolled_ewma() {
        // Regression for the dedup: the shared estimator must reproduce
        // the exact update sequence the micro-batcher used to compute
        // inline (gap = (t − prev).max(0), first gap seeds).
        let times = [0.0, 0.4, 0.55, 0.55, 1.3, 1.31, 2.0];
        let mut est = InterArrivalEstimator::new(0.4);
        let mut reference = Ewma::new(0.4);
        let mut prev: Option<f64> = None;
        for &t in &times {
            est.observe_arrival(t);
            if let Some(p) = prev {
                reference.update((t - p).max(0.0));
            }
            prev = Some(t);
            assert_eq!(est.smoothed_gap(), reference.value());
        }
        let gap = est.smoothed_gap().unwrap();
        assert_eq!(est.lambda(), Some(1.0 / gap));
        assert_eq!(est.last_arrival(), Some(2.0));
    }

    #[test]
    fn gap_estimator_rate_is_reciprocal_and_handles_collapse() {
        let mut est = InterArrivalEstimator::new(1.0);
        assert_eq!(est.lambda(), None);
        est.observe_arrival(1.0);
        assert_eq!(est.lambda(), None);
        est.observe_arrival(1.5);
        assert_eq!(est.lambda(), Some(2.0));
        // A zero gap collapses the estimate to +inf, not a panic.
        est.observe_arrival(1.5);
        assert_eq!(est.lambda(), Some(f64::INFINITY));
    }

    #[test]
    fn estimator_converges_to_steady_rate() {
        let mut est = WorkloadEstimator::new(1.0, 0.5);
        // 4 arrivals per second for 20 seconds.
        let mut lambda = 0.0;
        for i in 0..80 {
            lambda = est.observe_arrival(i as f64 * 0.25);
        }
        assert!((lambda - 4.0).abs() < 0.8, "estimate {lambda}");
    }

    #[test]
    fn estimator_decays_when_idle() {
        let mut est = WorkloadEstimator::new(1.0, 0.5);
        for i in 0..40 {
            est.observe_arrival(i as f64 * 0.25);
        }
        let busy = est.estimate_at(10.0);
        let idle = est.estimate_at(30.0);
        assert!(idle < busy / 4.0, "busy {busy} idle {idle}");
    }

    #[test]
    fn estimator_reacts_to_load_change() {
        let mut est = WorkloadEstimator::new(1.0, 0.5);
        for i in 0..20 {
            est.observe_arrival(i as f64); // 1/s
        }
        let low = est.estimate_at(20.0);
        for i in 0..100 {
            est.observe_arrival(20.0 + i as f64 * 0.1); // 10/s
        }
        let high = est.estimate_at(30.0);
        assert!(high > low * 3.0, "low {low} high {high}");
    }
}
