use rand::{rngs::StdRng, Rng, SeedableRng};

/// How inference tasks arrive at the cluster (Sec. V-A).
#[derive(Debug, Clone, PartialEq)]
pub enum Arrivals {
    /// Tasks arrive "following a Poisson distribution" at `rate` tasks
    /// per second until `horizon` seconds; deterministic given `seed`.
    Poisson {
        /// Mean arrival rate λ (tasks/s).
        rate: f64,
        /// Stream length in seconds.
        horizon: f64,
        /// RNG seed.
        seed: u64,
    },
    /// "Each task arrives immediately once the last task was complete"
    /// — the saturation stream used to measure maximum throughput.
    ClosedLoop {
        /// Number of tasks to push through.
        count: usize,
    },
    /// Explicit arrival times (seconds, non-decreasing).
    Trace(Vec<f64>),
}

impl Arrivals {
    /// A Poisson stream (Figs. 10/11 workloads).
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `horizon` is not strictly positive.
    pub fn poisson(rate: f64, horizon: f64, seed: u64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(
            horizon > 0.0 && horizon.is_finite(),
            "horizon must be positive"
        );
        Arrivals::Poisson {
            rate,
            horizon,
            seed,
        }
    }

    /// A saturation stream of `count` tasks (Figs. 8/9 capacity runs).
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn closed_loop(count: usize) -> Self {
        assert!(count > 0, "need at least one task");
        Arrivals::ClosedLoop { count }
    }

    /// An explicit arrival-time trace.
    ///
    /// # Panics
    ///
    /// Panics if the times are not non-decreasing and non-negative.
    pub fn trace(times: Vec<f64>) -> Self {
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "trace times must be non-decreasing"
        );
        assert!(
            times.first().is_none_or(|t| *t >= 0.0),
            "times must be non-negative"
        );
        Arrivals::Trace(times)
    }

    /// Materializes open-loop arrival times. Closed-loop streams have no
    /// fixed times (the simulator admits tasks as the pipeline frees),
    /// so this returns `None` for them.
    pub fn times(&self) -> Option<Vec<f64>> {
        match self {
            Arrivals::Poisson {
                rate,
                horizon,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut t = 0.0;
                let mut out = Vec::new();
                loop {
                    // Exponential inter-arrival gaps.
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -u.ln() / rate;
                    if t > *horizon {
                        break;
                    }
                    out.push(t);
                }
                Some(out)
            }
            Arrivals::ClosedLoop { .. } => None,
            Arrivals::Trace(times) => Some(times.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let times = Arrivals::poisson(5.0, 2000.0, 1).times().unwrap();
        let rate = times.len() as f64 / 2000.0;
        assert!((rate - 5.0).abs() < 0.3, "empirical rate {rate}");
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn poisson_is_deterministic() {
        let a = Arrivals::poisson(3.0, 50.0, 7).times().unwrap();
        let b = Arrivals::poisson(3.0, 50.0, 7).times().unwrap();
        let c = Arrivals::poisson(3.0, 50.0, 8).times().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_interarrivals_look_exponential() {
        let times = Arrivals::poisson(10.0, 5000.0, 3).times().unwrap();
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var: f64 = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        // Exponential: std ≈ mean.
        assert!(
            (var.sqrt() / mean - 1.0).abs() < 0.1,
            "cv {}",
            var.sqrt() / mean
        );
    }

    #[test]
    fn closed_loop_has_no_times() {
        assert_eq!(Arrivals::closed_loop(5).times(), None);
    }

    #[test]
    fn trace_roundtrips() {
        let t = Arrivals::trace(vec![0.0, 0.5, 2.0]);
        assert_eq!(t.times().unwrap(), vec![0.0, 0.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn trace_rejects_unsorted() {
        Arrivals::trace(vec![1.0, 0.5]);
    }
}
