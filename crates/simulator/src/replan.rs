//! The fleet re-planning policy kernel and its discrete-event mirror.
//!
//! APICO's adaptive claim is that the cluster should *change plans* as
//! the workload λ drifts (Sec. IV-C). The serving layer estimates λ
//! from admitted inter-arrival gaps ([`InterArrivalEstimator`]); this
//! module turns that estimate into switch decisions:
//!
//! * [`ReplanKernel`] — the hysteresis state machine. The *same* kernel
//!   value drives the live `pico-serve` controller, the deterministic
//!   replayer, and [`FleetSim`], so all three produce bit-identical
//!   switch schedules from the same admitted-arrival sequence.
//! * [`FleetSim`] — a [`ServeSim`]-shaped batch-server simulation with
//!   the kernel wired in, for exploring controller behavior in virtual
//!   time without touching an engine.
//!
//! The kernel deliberately knows nothing about plans or audits: it sees
//! candidates as `(ServiceProfile, WorkloadBand)` rows plus a
//! precomputed reachability matrix. `pico-fleet` builds those rows from
//! its Pareto frontier and fills the matrix from `PA305`–`PA307`
//! switch-pair audits, which is how the simulator mirror reproduces the
//! audit gate's verdicts without depending on the audit crate.

use std::collections::VecDeque;

use crate::serve_policy::{
    AdaptiveBatcher, AdmissionLedger, BatchPolicy, ServeSimReport, ServiceProfile, TenantPolicy,
    TenantServeStat,
};
use crate::{InterArrivalEstimator, WorkloadBand};

/// Knobs for the re-planning hysteresis rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanPolicy {
    /// EWMA smoothing factor for the inter-arrival gap, in `(0, 1]`.
    pub beta: f64,
    /// Hysteresis margin `m` in `[0, 1)`: a window only counts as a
    /// strike when the preferred plan differs from the current one at
    /// *both* `λ̂·(1 − m)` and `λ̂·(1 + m)` — i.e. λ has left the current
    /// plan's optimality band by at least the margin.
    pub margin: f64,
    /// Consecutive striking windows required before a switch fires
    /// (≥ 1). `K − 1` windows emit [`ReplanVerdict::Suppressed`].
    pub consecutive: usize,
    /// Evaluation window length in seconds (> 0). λ̂ is re-examined at
    /// each window boundary of virtual time.
    pub window: f64,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy {
            beta: 0.4,
            margin: 0.25,
            consecutive: 2,
            window: 1.0,
        }
    }
}

impl ReplanPolicy {
    /// Every way this policy is malformed, as human-readable sentences
    /// (empty when valid).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            v.push(format!("beta ({}) must be in (0, 1]", self.beta));
        }
        if !(self.margin >= 0.0 && self.margin < 1.0) {
            v.push(format!("margin ({}) must be in [0, 1)", self.margin));
        }
        if self.consecutive == 0 {
            v.push("consecutive must be at least 1".to_owned());
        }
        if !(self.window > 0.0 && self.window.is_finite()) {
            v.push(format!(
                "window ({}) must be positive and finite",
                self.window
            ));
        }
        v
    }
}

/// One switchable plan as the kernel sees it: its serving price and the
/// λ band it can sustain (`PA303` stability precomputed as `band.hi`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanCandidate {
    /// Batch pricing for this plan (Eq. 10 period, Eq. 11 latency).
    pub profile: ServiceProfile,
    /// Sustainable workload band `[0, λ*·margin]` for this plan.
    pub band: WorkloadBand,
}

/// What the kernel concluded at the latest evaluated window boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplanVerdict {
    /// λ̂ still prefers the current plan (or no estimate exists yet).
    Hold,
    /// λ̂ has left the current plan's band, but hysteresis is still
    /// counting (`strikes < consecutive`).
    Suppressed {
        /// The λ estimate at the window boundary.
        lambda: f64,
        /// Striking windows so far (`< consecutive`).
        strikes: usize,
    },
    /// Hysteresis expired: the controller should switch plans. The
    /// kernel holds this decision pending until the caller reports
    /// [`committed`](ReplanKernel::committed) or
    /// [`rejected`](ReplanKernel::rejected).
    Switch {
        /// Candidate index being abandoned.
        from: usize,
        /// Candidate index to install.
        to: usize,
        /// The λ estimate that drove the decision.
        lambda: f64,
        /// Virtual time of the deciding window boundary.
        at: f64,
    },
}

/// One committed plan switch, for schedules and reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchRecord {
    /// Virtual time of the deciding window boundary.
    pub at: f64,
    /// Candidate index abandoned.
    pub from: usize,
    /// Candidate index installed.
    pub to: usize,
    /// The λ estimate that drove the decision.
    pub lambda: f64,
}

/// The hysteresis state machine shared by every re-planning controller.
///
/// Feed each *admitted* arrival timestamp through
/// [`observe_arrival`](Self::observe_arrival); at every elapsed window
/// boundary the kernel compares the cheapest stable-and-reachable
/// candidate at `λ̂·(1 ± margin)` against the current plan and counts
/// strikes. After `consecutive` striking windows it emits
/// [`ReplanVerdict::Switch`] and goes *pending*: further windows hold
/// until the caller confirms the swap with
/// [`committed`](Self::committed) (audit passed, plan installed) or
/// [`rejected`](Self::rejected) (audit refused). Timestamps are
/// caller-supplied virtual times, so decisions are bit-reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanKernel {
    policy: ReplanPolicy,
    candidates: Vec<ReplanCandidate>,
    switchable: Vec<Vec<bool>>,
    current: usize,
    estimator: InterArrivalEstimator,
    strikes: usize,
    next_window: f64,
    pending: Option<usize>,
}

impl ReplanKernel {
    /// Creates a kernel over `candidates`, starting on plan `initial`.
    ///
    /// `switchable[i][j]` must hold the precomputed verdict of the
    /// `PA305`–`PA307` switch-pair audit from plan `i` to plan `j` —
    /// the kernel never proposes a switch the audit gate would refuse.
    ///
    /// # Panics
    ///
    /// Panics when `candidates` is empty, `switchable` is not an
    /// `N × N` matrix, `initial` is out of range, or `policy` has
    /// [`violations`](ReplanPolicy::violations).
    pub fn new(
        candidates: Vec<ReplanCandidate>,
        switchable: Vec<Vec<bool>>,
        initial: usize,
        policy: ReplanPolicy,
    ) -> Self {
        let violations = policy.violations();
        assert!(
            violations.is_empty(),
            "invalid ReplanPolicy: {violations:?}"
        );
        assert!(!candidates.is_empty(), "need at least one candidate");
        assert!(initial < candidates.len(), "initial plan out of range");
        assert!(
            switchable.len() == candidates.len()
                && switchable.iter().all(|row| row.len() == candidates.len()),
            "switchable must be an N x N matrix"
        );
        ReplanKernel {
            policy,
            candidates,
            switchable,
            current: initial,
            estimator: InterArrivalEstimator::new(policy.beta),
            strikes: 0,
            next_window: policy.window,
            pending: None,
        }
    }

    /// The policy this kernel was built from.
    pub fn policy(&self) -> ReplanPolicy {
        self.policy
    }

    /// The candidate table, indexed by the indices in verdicts.
    pub fn candidates(&self) -> &[ReplanCandidate] {
        &self.candidates
    }

    /// Index of the plan the kernel believes is installed.
    pub fn current(&self) -> usize {
        self.current
    }

    /// The switch decision awaiting [`committed`](Self::committed) /
    /// [`rejected`](Self::rejected), if any.
    pub fn pending(&self) -> Option<usize> {
        self.pending
    }

    /// The current λ estimate (`None` before two admitted arrivals).
    pub fn lambda(&self) -> Option<f64> {
        self.estimator.lambda()
    }

    /// The cheapest stable plan reachable from the current one at rate
    /// `lambda`: among candidates that are the current plan or pass the
    /// switch audit from it *and* sustain `lambda` (`λ ≤ band.hi`,
    /// PA303), the minimum by `(latency, period, index)`. When nothing
    /// reachable sustains `lambda` (overload), falls back to the
    /// reachable candidate with the largest sustainable band.
    pub fn select(&self, lambda: f64) -> usize {
        let reachable = |i: usize| i == self.current || self.switchable[self.current][i];
        let mut best: Option<usize> = None;
        for i in 0..self.candidates.len() {
            if !reachable(i) || lambda > self.candidates[i].band.hi {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let (ci, cb) = (self.candidates[i].profile, self.candidates[b].profile);
                    (ci.latency, ci.period) < (cb.latency, cb.period)
                }
            };
            if better {
                best = Some(i);
            }
        }
        if let Some(i) = best {
            return i;
        }
        // Overload: no reachable plan sustains λ — take the widest band.
        let mut widest = self.current;
        for i in 0..self.candidates.len() {
            if reachable(i) && self.candidates[i].band.hi > self.candidates[widest].band.hi {
                widest = i;
            }
        }
        widest
    }

    /// Records an admitted arrival at absolute time `t` (non-decreasing
    /// across calls), evaluates any elapsed window boundaries, and
    /// returns the verdict of the latest one.
    pub fn observe_arrival(&mut self, t: f64) -> ReplanVerdict {
        self.estimator.observe_arrival(t);
        let mut verdict = ReplanVerdict::Hold;
        while t >= self.next_window {
            let at = self.next_window;
            self.next_window += self.policy.window;
            if self.pending.is_some() {
                // A decision is already in flight; hold until the
                // caller commits or rejects it.
                continue;
            }
            let Some(lambda) = self.estimator.lambda() else {
                self.strikes = 0;
                continue;
            };
            let low = self.select(lambda * (1.0 - self.policy.margin));
            let high = self.select(lambda * (1.0 + self.policy.margin));
            if low == self.current || high == self.current {
                self.strikes = 0;
                verdict = ReplanVerdict::Hold;
                continue;
            }
            self.strikes += 1;
            if self.strikes < self.policy.consecutive {
                verdict = ReplanVerdict::Suppressed {
                    lambda,
                    strikes: self.strikes,
                };
                continue;
            }
            self.strikes = 0;
            let to = self.select(lambda);
            if to == self.current {
                verdict = ReplanVerdict::Hold;
                continue;
            }
            self.pending = Some(to);
            verdict = ReplanVerdict::Switch {
                from: self.current,
                to,
                lambda,
                at,
            };
            break;
        }
        verdict
    }

    /// Proposes an *event-driven* switch to candidate `to` at virtual
    /// time `at` — the churn re-admission path: membership changed, a
    /// fresh plan was built for the new cluster, and the controller
    /// asks the kernel to stage it through the same
    /// pending → [`committed`](Self::committed) /
    /// [`rejected`](Self::rejected) protocol the λ-driven path uses, so
    /// every install stays behind the `PA305`–`PA307` audit gate.
    ///
    /// Returns [`ReplanVerdict::Hold`] when a decision is already in
    /// flight, `to` is the current plan, or the precomputed switch
    /// audit refuses the pair; otherwise goes pending and returns
    /// [`ReplanVerdict::Switch`].
    ///
    /// # Panics
    ///
    /// Panics when `to` is out of range.
    pub fn propose(&mut self, to: usize, at: f64) -> ReplanVerdict {
        assert!(to < self.candidates.len(), "candidate out of range");
        if self.pending.is_some() || to == self.current || !self.switchable[self.current][to] {
            return ReplanVerdict::Hold;
        }
        self.strikes = 0;
        self.pending = Some(to);
        ReplanVerdict::Switch {
            from: self.current,
            to,
            lambda: self.estimator.lambda().unwrap_or(0.0),
            at,
        }
    }

    /// Reports that the pending switch was audit-approved and the new
    /// plan is installed.
    ///
    /// # Panics
    ///
    /// Panics when no switch is pending.
    pub fn committed(&mut self) -> usize {
        let to = self.pending.take().expect("no switch pending");
        self.current = to;
        self.strikes = 0;
        to
    }

    /// Reports that the pending switch was refused (audit gate said
    /// no); the kernel stays on the current plan and restarts its
    /// strike count.
    pub fn rejected(&mut self) {
        self.pending = None;
        self.strikes = 0;
    }
}

/// Deterministic discrete-event mirror of the *adaptive* serving
/// front-end: [`ServeSim`](crate::ServeSim)'s batch-server loop with a
/// [`ReplanKernel`] wired into admission, switching service pricing at
/// exactly the checkpoints where the live path drains and warm-swaps.
///
/// Given the same admitted-arrival sequence and the same kernel value,
/// this mirror and the live/replay controllers produce identical
/// [`SwitchRecord`] schedules in virtual time.
#[derive(Debug, Clone)]
pub struct FleetSim {
    batch: BatchPolicy,
    tenants: Vec<TenantPolicy>,
}

impl FleetSim {
    /// Creates a mirror over the given serving policies.
    ///
    /// # Panics
    ///
    /// Panics when any policy has violations or `tenants` is empty.
    pub fn new(batch: BatchPolicy, tenants: Vec<TenantPolicy>) -> Self {
        let violations = batch.violations();
        assert!(violations.is_empty(), "invalid BatchPolicy: {violations:?}");
        let _ = AdmissionLedger::new(tenants.clone());
        FleetSim { batch, tenants }
    }

    /// Runs the mirror over `arrivals` — `(time, tenant)` pairs sorted
    /// by time — starting on `kernel.current()`'s profile. The kernel
    /// observes every admitted arrival; a pending switch is applied
    /// (and committed) when the next batch forms, mirroring the live
    /// drain-then-swap. Returns the serve report and the committed
    /// switch schedule.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is unsorted or names an unknown tenant.
    pub fn run(
        &self,
        arrivals: &[(f64, usize)],
        mut kernel: ReplanKernel,
    ) -> (ServeSimReport, Vec<SwitchRecord>) {
        assert!(
            arrivals.windows(2).all(|w| w[0].0 <= w[1].0),
            "arrivals must be sorted by time"
        );
        let mut ledger = AdmissionLedger::new(self.tenants.clone());
        let mut batcher = AdaptiveBatcher::new(self.batch);
        let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); self.tenants.len()];
        let mut rr_next = 0usize;

        let mut i = 0usize;
        let mut free_at = 0.0f64;
        let mut active = kernel.candidates()[kernel.current()].profile;
        let mut swaps = 0u64;
        let mut switches: Vec<SwitchRecord> = Vec::new();
        let mut batch_sizes = Vec::new();
        let mut sojourn_sum = 0.0f64;
        let mut sojourn_count = 0u64;
        let mut makespan = 0.0f64;

        let admit = |t: f64,
                     tenant: usize,
                     ledger: &mut AdmissionLedger,
                     batcher: &mut AdaptiveBatcher,
                     kernel: &mut ReplanKernel,
                     switches: &mut Vec<SwitchRecord>,
                     queues: &mut Vec<VecDeque<f64>>| {
            if ledger.offer(tenant).is_ok() {
                queues[tenant].push_back(t);
                batcher.observe_arrival(t);
                if let ReplanVerdict::Switch {
                    from,
                    to,
                    lambda,
                    at,
                } = kernel.observe_arrival(t)
                {
                    switches.push(SwitchRecord {
                        at,
                        from,
                        to,
                        lambda,
                    });
                }
            }
        };

        while i < arrivals.len() || ledger.total_queued() > 0 {
            if ledger.total_queued() == 0 {
                let (t, tenant) = arrivals[i];
                i += 1;
                if free_at < t {
                    free_at = t;
                }
                admit(
                    t,
                    tenant,
                    &mut ledger,
                    &mut batcher,
                    &mut kernel,
                    &mut switches,
                    &mut queues,
                );
                continue;
            }
            let start = free_at;
            while i < arrivals.len() && arrivals[i].0 <= start {
                let (t, tenant) = arrivals[i];
                i += 1;
                admit(
                    t,
                    tenant,
                    &mut ledger,
                    &mut batcher,
                    &mut kernel,
                    &mut switches,
                    &mut queues,
                );
            }
            // The batch-formation checkpoint: the same place the live
            // path drains the in-service batch and installs the audited
            // next plan.
            if kernel.pending().is_some() {
                let to = kernel.committed();
                active = kernel.candidates()[to].profile;
                swaps += 1;
            }
            let want = batcher.target().min(ledger.total_queued());
            let mut picks: Vec<usize> = vec![0; self.tenants.len()];
            let mut picked = 0usize;
            while picked < want {
                let tenant = rr_next % self.tenants.len();
                rr_next += 1;
                let available = ledger.queued(tenant) - picks[tenant];
                if available > 0 {
                    picks[tenant] += 1;
                    picked += 1;
                }
            }
            let done_at = start + active.batch_time(want);
            for (tenant, &n) in picks.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                ledger.take(tenant, n);
                ledger.complete(tenant, n);
                for _ in 0..n {
                    let arrived = queues[tenant].pop_front().expect("queued arrival time");
                    sojourn_sum += done_at - arrived;
                    sojourn_count += 1;
                }
            }
            batch_sizes.push(want);
            free_at = done_at;
            makespan = done_at;
        }

        let per_tenant = (0..self.tenants.len())
            .map(|t| TenantServeStat {
                admitted: ledger.admitted(t),
                rejected: ledger.rejected(t),
                completed: ledger.completed(t),
            })
            .collect();
        (
            ServeSimReport {
                per_tenant,
                batch_sizes,
                mean_sojourn: if sojourn_count == 0 {
                    0.0
                } else {
                    sojourn_sum / sojourn_count as f64
                },
                makespan,
                swaps,
            },
            switches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-plan fleet: a fused-style plan (cheap latency, narrow band)
    /// and a pipelined plan (deep latency, wide band), both switchable.
    fn two_plan_kernel(policy: ReplanPolicy) -> ReplanKernel {
        let fused = ReplanCandidate {
            profile: ServiceProfile {
                latency: 0.1,
                period: 0.1,
            },
            band: WorkloadBand::new(0.0, 8.0),
        };
        let pico = ReplanCandidate {
            profile: ServiceProfile {
                latency: 0.3,
                period: 0.02,
            },
            band: WorkloadBand::new(0.0, 45.0),
        };
        ReplanKernel::new(
            vec![fused, pico],
            vec![vec![true, true], vec![true, true]],
            0,
            policy,
        )
    }

    fn policy() -> ReplanPolicy {
        ReplanPolicy {
            beta: 0.5,
            margin: 0.2,
            consecutive: 2,
            window: 1.0,
        }
    }

    #[test]
    fn policy_violations_are_reported() {
        assert!(ReplanPolicy::default().violations().is_empty());
        let bad = ReplanPolicy {
            beta: 0.0,
            margin: 1.0,
            consecutive: 0,
            window: 0.0,
        };
        assert_eq!(bad.violations().len(), 4);
    }

    #[test]
    fn select_prefers_cheapest_stable_and_falls_back_under_overload() {
        let k = two_plan_kernel(policy());
        assert_eq!(k.select(2.0), 0); // both stable, fused is cheaper
        assert_eq!(k.select(20.0), 1); // only pico sustains 20/s
        assert_eq!(k.select(1000.0), 1); // overload: widest band
    }

    #[test]
    fn select_honors_reachability() {
        let mut k = two_plan_kernel(policy());
        k.switchable = vec![vec![true, false], vec![true, true]];
        // Pico is unreachable from fused, so even λ = 20 stays put.
        assert_eq!(k.select(20.0), 0);
    }

    #[test]
    fn steady_in_band_load_holds() {
        let mut k = two_plan_kernel(policy());
        for i in 0..40 {
            // 2 tasks/s: fused (current) remains optimal.
            assert_eq!(k.observe_arrival(i as f64 * 0.5), ReplanVerdict::Hold);
        }
        assert_eq!(k.current(), 0);
        assert_eq!(k.pending(), None);
    }

    #[test]
    fn ramp_is_suppressed_then_switches() {
        let mut k = two_plan_kernel(policy());
        // Settle in band first.
        for i in 0..8 {
            k.observe_arrival(i as f64 * 0.5);
        }
        // Burst at 20 tasks/s: the gap EWMA collapses toward 0.05 s.
        let mut suppressed = 0;
        let mut switch = None;
        let mut t = 4.0;
        for _ in 0..200 {
            t += 0.05;
            match k.observe_arrival(t) {
                ReplanVerdict::Suppressed { strikes, .. } => {
                    suppressed += 1;
                    assert!(strikes < k.policy().consecutive);
                }
                ReplanVerdict::Switch { from, to, at, .. } => {
                    switch = Some((from, to, at));
                    break;
                }
                ReplanVerdict::Hold => {}
            }
        }
        let (from, to, at) = switch.expect("ramp must trigger a switch");
        assert_eq!((from, to), (0, 1));
        assert_eq!(suppressed, 1, "K = 2 means exactly one suppressed window");
        // The decision lands on a window boundary.
        assert!((at / k.policy().window).fract().abs() < 1e-9, "at {at}");
        // Pending until the controller commits.
        assert_eq!(k.current(), 0);
        assert_eq!(k.pending(), Some(1));
        assert_eq!(k.committed(), 1);
        assert_eq!(k.current(), 1);
    }

    #[test]
    fn rejected_switch_restarts_hysteresis() {
        let mut k = two_plan_kernel(ReplanPolicy {
            consecutive: 1,
            ..policy()
        });
        for i in 0..4 {
            k.observe_arrival(i as f64 * 0.5);
        }
        let mut t = 2.0;
        loop {
            t += 0.05;
            if let ReplanVerdict::Switch { .. } = k.observe_arrival(t) {
                break;
            }
            assert!(t < 50.0, "no switch proposed");
        }
        k.rejected();
        assert_eq!(k.pending(), None);
        assert_eq!(k.current(), 0);
        // The kernel proposes again at a later boundary rather than
        // looping forever inside one window.
        let mut again = false;
        for _ in 0..100 {
            t += 0.05;
            if let ReplanVerdict::Switch { .. } = k.observe_arrival(t) {
                again = true;
                break;
            }
        }
        assert!(again, "kernel must re-propose after rejection");
    }

    #[test]
    fn margin_suppresses_boundary_flapping() {
        // λ hovering just above fused's band edge (8/s): with a 20%
        // margin, select(λ·0.8) still lands on fused, so no strike.
        let mut k = two_plan_kernel(policy());
        let mut t = 0.0;
        for _ in 0..300 {
            t += 1.0 / 9.0; // 9 tasks/s, inside 8/0.8 = 10
            assert_eq!(k.observe_arrival(t), ReplanVerdict::Hold);
        }
        assert_eq!(k.current(), 0);
    }

    #[test]
    fn fleet_sim_switches_on_ramp_and_is_deterministic() {
        // Batches must grow deep enough under the burst for the
        // pipelined plan to sustain 20/s: a batch of 10 costs
        // 0.3 + 9·0.02 = 0.48 s → 20.8 tasks/s.
        let batch = BatchPolicy {
            min_batch: 1,
            max_batch: 16,
            target_delay: 0.5,
            beta: 0.5,
        };
        let tenants = vec![TenantPolicy {
            queue_capacity: 64,
            in_flight_budget: 128,
        }];
        // Quiet phase at 2/s, then a sustained 20/s ramp.
        let mut arrivals: Vec<(f64, usize)> = (0..10).map(|k| (k as f64 * 0.5, 0)).collect();
        arrivals.extend((0..200).map(|k| (5.0 + k as f64 * 0.05, 0)));
        let sim = FleetSim::new(batch, tenants);
        let (report, switches) = sim.run(&arrivals, two_plan_kernel(policy()));
        assert_eq!(report.rejected(), 0, "per-tenant {:?}", report.per_tenant);
        assert_eq!(report.completed(), arrivals.len() as u64);
        assert_eq!(switches.len(), 1, "switches {switches:?}");
        assert_eq!((switches[0].from, switches[0].to), (0, 1));
        assert_eq!(report.swaps, 1);
        // Bit-identical on re-run.
        let (report2, switches2) = sim.run(&arrivals, two_plan_kernel(policy()));
        assert_eq!(report, report2);
        assert_eq!(switches, switches2);
    }

    #[test]
    fn propose_stages_an_event_driven_switch_through_the_commit_path() {
        let mut k = two_plan_kernel(policy());
        // A churn boundary asks for plan 1 directly, no λ ramp needed.
        let v = k.propose(1, 3.0);
        assert_eq!(
            v,
            ReplanVerdict::Switch {
                from: 0,
                to: 1,
                lambda: 0.0,
                at: 3.0
            }
        );
        assert_eq!(k.pending(), Some(1));
        assert_eq!(k.current(), 0, "not installed until committed");
        // A second proposal while one is in flight holds.
        assert_eq!(k.propose(1, 3.5), ReplanVerdict::Hold);
        assert_eq!(k.committed(), 1);
        assert_eq!(k.current(), 1);
        // Proposing the current plan is a no-op.
        assert_eq!(k.propose(1, 4.0), ReplanVerdict::Hold);
    }

    #[test]
    fn propose_respects_the_switch_audit_matrix() {
        let mut k = two_plan_kernel(policy());
        k.switchable = vec![vec![true, false], vec![true, true]];
        assert_eq!(k.propose(1, 1.0), ReplanVerdict::Hold);
        assert_eq!(k.pending(), None);
    }

    #[test]
    fn rejected_proposal_leaves_the_kernel_on_the_current_plan() {
        let mut k = two_plan_kernel(policy());
        assert!(matches!(k.propose(1, 2.0), ReplanVerdict::Switch { .. }));
        k.rejected();
        assert_eq!(k.pending(), None);
        assert_eq!(k.current(), 0);
        // The kernel can propose again after a rejection.
        assert!(matches!(k.propose(1, 2.5), ReplanVerdict::Switch { .. }));
    }

    #[test]
    fn fleet_sim_without_pressure_never_switches() {
        let sim = FleetSim::new(BatchPolicy::default(), vec![TenantPolicy::default()]);
        let arrivals: Vec<(f64, usize)> = (0..30).map(|k| (k as f64 * 0.5, 0)).collect();
        let (report, switches) = sim.run(&arrivals, two_plan_kernel(policy()));
        assert!(switches.is_empty());
        assert_eq!(report.swaps, 0);
        assert_eq!(report.completed(), 30);
    }
}
