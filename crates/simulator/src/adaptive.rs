use pico_partition::{Plan, PlanMetrics};
use pico_telemetry::{names, Ctx, Event};

use crate::{mdone, Arrivals, SimReport, Simulation, WorkloadEstimator};

/// One scheme switch made by the adaptive scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerDecision {
    /// Simulated time of the switch.
    pub time: f64,
    /// Index of the plan chosen (into the candidate list).
    pub plan_index: usize,
    /// The workload estimate that drove the choice.
    pub lambda: f64,
}

/// APICO's adaptive parallel-scheme switching (Sec. IV-C): estimate the
/// workload λ with an EWMA ([`WorkloadEstimator`], Eq. 15), predict each
/// candidate scheme's average inference latency with Theorem 2
/// ([`mdone::avg_latency`]), and run whichever is lowest. Under light
/// load that is a one-stage fused scheme (all devices on one task);
/// under heavy load, the PICO pipeline.
///
/// Switches happen only when the current pipeline has drained — a
/// running stage set is never reconfigured mid-task.
#[derive(Debug, Clone)]
pub struct AdaptiveScheduler {
    candidates: Vec<(Plan, PlanMetrics)>,
    estimator: WorkloadEstimator,
}

impl AdaptiveScheduler {
    /// Creates a scheduler over candidate plans. Metrics are evaluated
    /// with `sim`'s cost model.
    ///
    /// # Panics
    ///
    /// Panics if `plans` is empty.
    pub fn new(sim: &Simulation<'_>, plans: Vec<Plan>, window: f64, beta: f64) -> Self {
        assert!(!plans.is_empty(), "need at least one candidate plan");
        let cm = sim.params().cost_model(sim.model());
        let candidates = plans
            .into_iter()
            .map(|p| {
                let m = cm.evaluate(&p, sim.cluster());
                (p, m)
            })
            .collect();
        AdaptiveScheduler {
            candidates,
            estimator: WorkloadEstimator::new(window, beta),
        }
    }

    /// The candidate plans and their analytic metrics.
    pub fn candidates(&self) -> impl Iterator<Item = (&Plan, &PlanMetrics)> {
        self.candidates.iter().map(|(p, m)| (p, m))
    }

    /// Index of the candidate with the lowest Theorem 2 latency at
    /// workload `lambda`. Ties and universally-unstable workloads fall
    /// back to the lowest-period candidate.
    pub fn choose(&self, lambda: f64) -> usize {
        let mut best = 0;
        let mut best_lat = f64::INFINITY;
        for (i, (_, m)) in self.candidates.iter().enumerate() {
            let lat = mdone::avg_latency(m.period, m.latency, lambda);
            if lat < best_lat {
                best_lat = lat;
                best = i;
            }
        }
        if best_lat.is_infinite() {
            // Every scheme is saturated: take the highest-throughput one.
            let mut idx = 0;
            let mut p = f64::INFINITY;
            for (i, (_, m)) in self.candidates.iter().enumerate() {
                if m.period < p {
                    p = m.period;
                    idx = i;
                }
            }
            return idx;
        }
        best
    }

    /// Runs the adaptive policy over an open-loop arrival stream,
    /// returning the combined report and the switch history (always
    /// starting with the initial choice at time 0).
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is closed-loop (adaptive switching responds
    /// to workload, which a saturation stream does not have).
    pub fn run(
        &mut self,
        sim: &Simulation<'_>,
        arrivals: &Arrivals,
    ) -> (SimReport, Vec<SchedulerDecision>) {
        let times = arrivals
            .times()
            .expect("adaptive scheduling requires an open-loop arrival stream");
        let stations: Vec<_> = self
            .candidates
            .iter()
            .map(|(p, _)| sim.stations(p))
            .collect();
        let redundancy: Vec<std::collections::BTreeMap<usize, f64>> = self
            .candidates
            .iter()
            .map(|(p, _)| sim.redundancy_by_device(p))
            .collect();

        let mut busy: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        let mut red_weighted: std::collections::BTreeMap<usize, f64> =
            std::collections::BTreeMap::new();
        for d in sim.cluster().devices() {
            busy.insert(d.id, 0.0);
            red_weighted.insert(d.id, 0.0);
        }

        let rec = sim.recorder();
        let enabled = rec.is_enabled();
        let lambda0 = self.estimator.estimate_at(0.0);
        let mut current = self.choose(lambda0);
        let mut decisions = vec![SchedulerDecision {
            time: 0.0,
            plan_index: current,
            lambda: 0.0,
        }];
        if enabled {
            // ctx.stage carries the chosen candidate index; value the λ
            // estimate that drove the choice.
            rec.record(
                Event::instant(0.0, names::PLAN_SWITCH, Ctx::stage(current)).with_value(0.0),
            );
        }
        let mut free = vec![0.0f64; stations[current].len()];
        let mut latencies = Vec::new();
        let mut last_completion: f64 = 0.0;

        for (task, a) in times.into_iter().enumerate() {
            let lambda = self.estimator.observe_arrival(a);
            let desired = self.choose(lambda);
            if enabled {
                rec.observe_at(names::LAMBDA_ESTIMATE, Ctx::default(), a, lambda);
            }
            if desired != current {
                // Drain-then-switch: in-flight tasks finish under the old
                // configuration before the new stage set starts.
                let drain = free.iter().fold(a, |acc, f| acc.max(*f));
                current = desired;
                free = vec![drain; stations[current].len()];
                decisions.push(SchedulerDecision {
                    time: a,
                    plan_index: current,
                    lambda,
                });
                if enabled {
                    rec.record(
                        Event::instant(a, names::PLAN_SWITCH, Ctx::stage(current))
                            .with_value(lambda),
                    );
                }
            }
            let service_total: f64 = stations[current].iter().map(|s| s.service).sum();
            let mut t = a;
            for (s, station) in stations[current].iter().enumerate() {
                let start = t.max(free[s]);
                let done = start + station.service;
                free[s] = done;
                t = done;
                for (d, dt) in &station.busy_per_task {
                    *busy.get_mut(d).expect("device pre-registered") += dt;
                    let r = redundancy[current].get(d).copied().unwrap_or(0.0);
                    *red_weighted.get_mut(d).expect("device pre-registered") += dt * r;
                }
            }
            if enabled {
                // Theorem 2's predicted waiting time vs what this task
                // actually waited — side-by-side in the trace so the
                // M/D/1 approximation's error is inspectable.
                let m = &self.candidates[current].1;
                let predicted = mdone::avg_latency(m.period, m.latency, lambda) - m.latency;
                if predicted.is_finite() {
                    rec.observe_at(
                        names::QUEUE_DELAY_PREDICTED,
                        Ctx::default().for_task(task),
                        a,
                        predicted,
                    );
                }
                rec.observe_at(
                    names::QUEUE_DELAY_OBSERVED,
                    Ctx::default().for_task(task),
                    t,
                    (t - a) - service_total,
                );
            }
            latencies.push(t - a);
            last_completion = last_completion.max(t);
        }

        let raw: Vec<(usize, f64, f64)> = busy
            .into_iter()
            .map(|(d, b)| {
                let r = if b > 0.0 { red_weighted[&d] / b } else { 0.0 };
                (d, b, r)
            })
            .collect();
        (
            SimReport::from_raw(&latencies, last_completion, &raw),
            decisions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;
    use pico_partition::{Cluster, CostParams, OptimalFused, PicoPlanner, PlanRequest, Planner};

    fn setup() -> (pico_model::Model, Cluster, CostParams) {
        (
            zoo::vgg16().features(),
            Cluster::pi_cluster(8, 1.0),
            CostParams::wifi_50mbps(),
        )
    }

    fn scheduler<'a>(sim: &Simulation<'a>) -> AdaptiveScheduler {
        let pico = PicoPlanner
            .plan(&PlanRequest::new(sim.model(), sim.cluster(), &sim.params()))
            .unwrap();
        let ofl = OptimalFused
            .plan(&PlanRequest::new(sim.model(), sim.cluster(), &sim.params()))
            .unwrap();
        AdaptiveScheduler::new(sim, vec![pico, ofl], 5.0, 0.4)
    }

    #[test]
    fn chooses_one_stage_at_light_load_pipeline_at_heavy() {
        let (m, c, p) = setup();
        let sim = Simulation::new(&m, &c, &p);
        let sched = scheduler(&sim);
        let metrics: Vec<&PlanMetrics> = sched.candidates().map(|(_, m)| m).collect();
        let (pico_m, ofl_m) = (metrics[0], metrics[1]);
        // Sanity: OFL traverses faster, PICO cycles faster.
        assert!(ofl_m.latency < pico_m.latency);
        assert!(pico_m.period < ofl_m.period);
        // Light load -> index 1 (OFL), heavy load -> index 0 (PICO).
        assert_eq!(sched.choose(0.01 / ofl_m.period), 1);
        assert_eq!(sched.choose(0.95 / ofl_m.period), 0);
    }

    #[test]
    fn saturated_workload_falls_back_to_best_throughput() {
        let (m, c, p) = setup();
        let sim = Simulation::new(&m, &c, &p);
        let sched = scheduler(&sim);
        let pico_period = sched.candidates().next().unwrap().1.period;
        // Beyond every scheme's capacity.
        assert_eq!(sched.choose(10.0 / pico_period), 0);
    }

    #[test]
    fn adaptive_switches_when_load_ramps() {
        let (m, c, p) = setup();
        let sim = Simulation::new(&m, &c, &p);
        let mut sched = scheduler(&sim);
        let ofl_period = sched.candidates().nth(1).unwrap().1.period;
        // 60 s of light load then 60 s of 1.3x OFL capacity.
        let mut times = Vec::new();
        let light_gap = ofl_period * 20.0;
        let mut t = 0.0;
        while t < 60.0 * ofl_period {
            times.push(t);
            t += light_gap;
        }
        let heavy_gap = ofl_period / 1.3;
        while t < 400.0 * ofl_period {
            times.push(t);
            t += heavy_gap;
        }
        let (report, decisions) = sched.run(&sim, &Arrivals::trace(times));
        assert!(report.completed > 0);
        // It must have switched at least once (light -> OFL at start or
        // after, heavy -> PICO later).
        let used: std::collections::HashSet<usize> =
            decisions.iter().map(|d| d.plan_index).collect();
        assert!(used.len() >= 2, "decisions: {decisions:?}");
        // Final regime is the pipeline (index 0).
        assert_eq!(decisions.last().unwrap().plan_index, 0);
    }

    #[test]
    fn adaptive_never_worse_than_worst_static_choice() {
        let (m, c, p) = setup();
        let sim = Simulation::new(&m, &c, &p);
        let mut sched = scheduler(&sim);
        let ofl = OptimalFused.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let ofl_metrics = p.cost_model(&m).evaluate(&ofl, &c);
        let lambda = 1.2 / ofl_metrics.period;
        let arrivals = Arrivals::poisson(lambda, 500.0 * ofl_metrics.period, 3);
        let (adaptive, _) = sched.run(&sim, &arrivals);
        let static_ofl = sim.run(&ofl, &arrivals);
        assert!(
            adaptive.avg_latency < static_ofl.avg_latency,
            "adaptive {} static-ofl {}",
            adaptive.avg_latency,
            static_ofl.avg_latency
        );
    }

    #[test]
    fn recorder_captures_switches_and_queue_predictions() {
        let (m, c, p) = setup();
        let rec = pico_telemetry::Recorder::in_memory();
        let sim = Simulation::new(&m, &c, &p).with_recorder(rec.clone());
        let mut sched = scheduler(&sim);
        let ofl_period = sched.candidates().nth(1).unwrap().1.period;
        let mut times = Vec::new();
        let mut t = 0.0;
        while t < 60.0 * ofl_period {
            times.push(t);
            t += ofl_period * 20.0;
        }
        while t < 400.0 * ofl_period {
            times.push(t);
            t += ofl_period / 1.3;
        }
        let n = times.len();
        let (_, decisions) = sched.run(&sim, &Arrivals::trace(times));
        let events = rec.snapshot();
        let switches = events
            .iter()
            .filter(|e| e.name == pico_telemetry::names::PLAN_SWITCH)
            .count();
        assert_eq!(switches, decisions.len());
        // Every switch instant carries the chosen candidate index.
        for (ev, d) in events
            .iter()
            .filter(|e| e.name == pico_telemetry::names::PLAN_SWITCH)
            .zip(&decisions)
        {
            assert_eq!(ev.ctx.stage.get(), Some(d.plan_index as u32));
            assert_eq!(ev.value, d.lambda);
        }
        let lambdas = events
            .iter()
            .filter(|e| e.name == pico_telemetry::names::LAMBDA_ESTIMATE)
            .count();
        assert_eq!(lambdas, n);
        let observed = events
            .iter()
            .filter(|e| e.name == pico_telemetry::names::QUEUE_DELAY_OBSERVED)
            .count();
        assert_eq!(observed, n);
        // Predictions exist for stable regimes (most of the stream).
        let predicted = events
            .iter()
            .filter(|e| e.name == pico_telemetry::names::QUEUE_DELAY_PREDICTED)
            .count();
        assert!(predicted > 0);
    }

    #[test]
    #[should_panic(expected = "open-loop")]
    fn closed_loop_rejected() {
        let (m, c, p) = setup();
        let sim = Simulation::new(&m, &c, &p);
        scheduler(&sim).run(&sim, &Arrivals::closed_loop(5));
    }
}
