//! Discrete-event simulation of PICO plans on an edge cluster.
//!
//! The paper's testbed experiments (Figs. 8–11, Table I) run real
//! hardware; this crate is the simulation substitute: it executes a
//! [`Plan`](pico_partition::Plan) over a task arrival stream using the
//! paper's own cost model for stage service times, and reports the same
//! quantities the paper measures — average inference latency (waiting +
//! processing), throughput, per-device utilization and redundancy.
//!
//! Components:
//!
//! * [`Arrivals`] — Poisson task streams (Sec. V-A "tasks arrive
//!   following a Poisson distribution"), closed-loop saturation streams
//!   (max-throughput measurement), and explicit traces;
//! * [`Simulation`] — deterministic pipeline/queue simulation;
//! * [`mdone`] — the Theorem 2 analytic M/D/1 latency;
//! * [`Ewma`] / [`InterArrivalEstimator`] / [`WorkloadEstimator`] — the
//!   shared Eq. 15 workload trackers (one module, every consumer);
//! * [`AdaptiveScheduler`] — APICO's scheme switching (Sec. IV-C);
//! * [`ReplanKernel`] / [`FleetSim`] — the fleet re-planning hysteresis
//!   kernel and its discrete-event mirror (shared bit-for-bit with the
//!   live `pico-serve` controller);
//! * [`workload`] — phase/burst/diurnal arrival generators for the
//!   "dynamic workload" scenarios that motivate APICO;
//! * [`serve_policy`] — admission control and adaptive micro-batching
//!   shared with the `pico-serve` front-end, plus [`ServeSim`], its
//!   deterministic batch-server mirror.
//!
//! # Example
//!
//! ```
//! use pico_model::zoo;
//! use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};
//! use pico_sim::{Arrivals, Simulation};
//!
//! let model = zoo::vgg16().features();
//! let cluster = Cluster::pi_cluster(8, 1.0);
//! let params = CostParams::wifi_50mbps();
//! let plan = PicoPlanner::default().plan(&PlanRequest::new(&model, &cluster, &params))?;
//!
//! let sim = Simulation::new(&model, &cluster, &params);
//! let report = sim.run(&plan, &Arrivals::closed_loop(100));
//! assert_eq!(report.completed, 100);
//! assert!(report.throughput > 0.0);
//! # Ok::<(), pico_partition::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod arrival;
mod band;
mod des;
mod estimator;
pub mod mdone;
mod metrics;
mod replan;
pub mod serve_policy;
pub mod workload;

pub use adaptive::{AdaptiveScheduler, SchedulerDecision};
pub use arrival::Arrivals;
pub use band::WorkloadBand;
pub use des::{Simulation, StationProfile};
pub use estimator::{Ewma, InterArrivalEstimator, WorkloadEstimator};
pub use metrics::{DeviceStat, SimReport};
pub use replan::{
    FleetSim, ReplanCandidate, ReplanKernel, ReplanPolicy, ReplanVerdict, SwitchRecord,
};
pub use serve_policy::{
    AdaptiveBatcher, AdmissionLedger, BatchPolicy, RejectReason, ServeSim, ServeSimReport,
    ServiceProfile, TenantPolicy, TenantServeStat,
};
