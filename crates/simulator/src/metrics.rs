use serde::{Deserialize, Serialize};

/// Per-device outcome of a simulation run (the Table I columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceStat {
    /// Device id.
    pub device: usize,
    /// Seconds the device spent computing.
    pub busy: f64,
    /// `busy / elapsed` — the paper's "Utili" rows.
    pub utilization: f64,
    /// Fraction of the device's FLOPs that duplicate other devices'
    /// work — the paper's "Redu" rows.
    pub redundancy: f64,
}

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Tasks completed.
    pub completed: usize,
    /// Simulated seconds from time 0 to the last completion.
    pub elapsed: f64,
    /// Mean inference latency (waiting + processing), seconds.
    pub avg_latency: f64,
    /// Median inference latency.
    pub p50_latency: f64,
    /// 95th-percentile inference latency.
    pub p95_latency: f64,
    /// Worst inference latency.
    pub max_latency: f64,
    /// Completed tasks per second.
    pub throughput: f64,
    /// Per-device utilization/redundancy, ascending device id.
    pub device_stats: Vec<DeviceStat>,
}

impl SimReport {
    /// Builds a report from raw per-task latencies and per-device busy
    /// seconds. `busy` pairs are `(device_id, busy_seconds,
    /// redundancy_ratio)`.
    pub(crate) fn from_raw(latencies: &[f64], elapsed: f64, busy: &[(usize, f64, f64)]) -> Self {
        let mut sorted = latencies.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let completed = sorted.len();
        let avg = if completed > 0 {
            sorted.iter().sum::<f64>() / completed as f64
        } else {
            0.0
        };
        let pick = |q: f64| -> f64 {
            if sorted.is_empty() {
                0.0
            } else {
                let i = ((completed as f64 - 1.0) * q).round() as usize;
                sorted[i]
            }
        };
        let mut device_stats: Vec<DeviceStat> = busy
            .iter()
            .map(|(id, b, r)| DeviceStat {
                device: *id,
                busy: *b,
                utilization: if elapsed > 0.0 {
                    (b / elapsed).min(1.0)
                } else {
                    0.0
                },
                redundancy: *r,
            })
            .collect();
        device_stats.sort_by_key(|d| d.device);
        SimReport {
            completed,
            elapsed,
            avg_latency: avg,
            p50_latency: pick(0.5),
            p95_latency: pick(0.95),
            max_latency: sorted.last().copied().unwrap_or(0.0),
            throughput: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            device_stats,
        }
    }

    /// Mean utilization over the devices that did any work.
    pub fn avg_utilization(&self) -> f64 {
        let active: Vec<&DeviceStat> = self.device_stats.iter().filter(|d| d.busy > 0.0).collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().map(|d| d.utilization).sum::<f64>() / active.len() as f64
        }
    }

    /// Cluster-wide redundancy: plain mean of per-device ratios over
    /// the devices that did any work (Table I's "Average" column is the
    /// arithmetic mean of the per-device values).
    pub fn avg_redundancy(&self) -> f64 {
        let active: Vec<&DeviceStat> = self.device_stats.iter().filter(|d| d.busy > 0.0).collect();
        if active.is_empty() {
            0.0
        } else {
            active.iter().map(|d| d.redundancy).sum::<f64>() / active.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_from_sorted_latencies() {
        let lats = vec![4.0, 1.0, 2.0, 3.0, 5.0];
        let r = SimReport::from_raw(&lats, 10.0, &[]);
        assert_eq!(r.completed, 5);
        assert_eq!(r.avg_latency, 3.0);
        assert_eq!(r.p50_latency, 3.0);
        assert_eq!(r.max_latency, 5.0);
        assert_eq!(r.throughput, 0.5);
    }

    #[test]
    fn empty_run_is_zeroed() {
        let r = SimReport::from_raw(&[], 0.0, &[]);
        assert_eq!(r.completed, 0);
        assert_eq!(r.avg_latency, 0.0);
        assert_eq!(r.throughput, 0.0);
    }

    #[test]
    fn device_stats_sorted_and_clamped() {
        let r = SimReport::from_raw(&[1.0], 2.0, &[(3, 1.0, 0.1), (1, 4.0, 0.0)]);
        assert_eq!(r.device_stats[0].device, 1);
        assert_eq!(r.device_stats[0].utilization, 1.0); // clamped
        assert_eq!(r.device_stats[1].utilization, 0.5);
    }

    #[test]
    fn avg_utilization_ignores_idle_devices() {
        let r = SimReport::from_raw(&[1.0], 10.0, &[(0, 5.0, 0.0), (1, 0.0, 0.0)]);
        assert_eq!(r.avg_utilization(), 0.5);
    }

    #[test]
    fn avg_redundancy_is_mean_over_active() {
        let r = SimReport::from_raw(&[1.0], 10.0, &[(0, 9.0, 0.1), (1, 1.0, 0.5), (2, 0.0, 0.9)]);
        assert!((r.avg_redundancy() - (0.1 + 0.5) / 2.0).abs() < 1e-12);
    }
}
