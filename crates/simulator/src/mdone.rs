//! The Theorem 2 M/D/1 queueing estimate.
//!
//! "If there are λ inference tasks arriving per unit time following the
//! Poisson distribution, and the parallel scheme has a period `p` and
//! executing latency `t`, the average inference latency for each task is
//! `p(2 − pλ) / (2(1 − pλ)) + t`."
//!
//! APICO uses this closed form to pick the scheme with the lowest
//! predicted latency at the current workload without running anything.

/// Average inference latency predicted by Theorem 2.
///
/// Returns `f64::INFINITY` when the queue is unstable (`p * λ >= 1`, the
/// arrival rate exceeds the scheme's throughput).
///
/// # Panics
///
/// Panics if any argument is negative or non-finite.
pub fn avg_latency(period: f64, latency: f64, lambda: f64) -> f64 {
    assert!(
        period.is_finite() && period >= 0.0,
        "period must be non-negative"
    );
    assert!(
        latency.is_finite() && latency >= 0.0,
        "latency must be non-negative"
    );
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "lambda must be non-negative"
    );
    let rho = period * lambda;
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    period * (2.0 - rho) / (2.0 * (1.0 - rho)) + latency
}

/// Utilization `ρ = p·λ` of the bottleneck stage.
pub fn utilization(period: f64, lambda: f64) -> f64 {
    period * lambda
}

/// Highest arrival rate a scheme with `period` can sustain (`1 / p`).
///
/// # Panics
///
/// Panics if `period` is not strictly positive.
pub fn max_stable_rate(period: f64) -> f64 {
    assert!(
        period > 0.0 && period.is_finite(),
        "period must be positive"
    );
    1.0 / period
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_is_service_plus_period() {
        // λ = 0: the formula reduces to p + t (one idle period of the
        // bottleneck plus the pipeline traversal).
        assert_eq!(avg_latency(0.5, 2.0, 0.0), 0.5 + 2.0);
    }

    #[test]
    fn latency_grows_with_load() {
        let lats: Vec<f64> = [0.1, 0.5, 1.0, 1.5, 1.9]
            .iter()
            .map(|l| avg_latency(0.5, 2.0, *l))
            .collect();
        assert!(lats.windows(2).all(|w| w[0] < w[1]), "{lats:?}");
    }

    #[test]
    fn saturation_is_infinite() {
        assert_eq!(avg_latency(0.5, 2.0, 2.0), f64::INFINITY);
        assert_eq!(avg_latency(0.5, 2.0, 5.0), f64::INFINITY);
    }

    #[test]
    fn one_stage_scheme_uses_p_equals_t() {
        // "As for those one-stage schemes p is equal to t."
        let t = 1.2;
        let low = avg_latency(t, t, 0.1);
        assert!(low > t);
    }

    #[test]
    fn pipeline_wins_under_high_load() {
        // Pipeline: small period, larger latency. One-stage: p = t.
        let pipeline = |l| avg_latency(0.4, 2.2, l);
        let one_stage = |l| avg_latency(1.0, 1.0, l);
        // Light load: one-stage can win (lower pipeline traversal).
        assert!(one_stage(0.05) < pipeline(0.05));
        // Heavy load: only the pipeline stays stable.
        assert!(pipeline(0.95) < one_stage(0.95));
        assert_eq!(one_stage(1.2), f64::INFINITY);
        assert!(pipeline(1.2).is_finite());
    }

    #[test]
    fn helpers() {
        assert_eq!(utilization(0.5, 1.0), 0.5);
        assert_eq!(max_stable_rate(0.25), 4.0);
    }
}
