use pico_model::{Model, Rows};
use pico_partition::{redundancy, Assignment, Cluster, CostParams, ExecutionMode, Plan, Stage};
use pico_telemetry::{names, Ctx, Recorder};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{Arrivals, SimReport};

/// One service station of the queueing network: a pipeline stage (or a
/// whole sequential plan collapsed into one station).
#[derive(Debug, Clone)]
pub(crate) struct Station {
    /// Deterministic service time per task (Eq. 9 stage cost).
    pub service: f64,
    /// Per-task device compute times `(device_id, seconds)`.
    pub busy_per_task: Vec<(usize, f64)>,
}

/// A public snapshot of one service station: what the DES will charge
/// per task, exposed so static analysis (the `pico-audit` deep passes)
/// can reason about the same queueing network the simulator executes.
#[derive(Debug, Clone, PartialEq)]
pub struct StationProfile {
    /// Originating stage for pipelined plans; `None` for the single
    /// collapsed station of a sequential plan.
    pub stage: Option<usize>,
    /// Deterministic service time per task (Eq. 9 stage cost).
    pub service: f64,
    /// Per-task device compute times `(device_id, seconds)`.
    pub busy_per_task: Vec<(usize, f64)>,
}

/// Deterministic queueing simulation of plans over arrival streams.
///
/// Service times come from the paper's cost model; stages serve tasks
/// FIFO one at a time. Because service is deterministic and routing is a
/// fixed chain, per-stage "next free" clocks reproduce the exact
/// discrete-event trajectory without an event heap.
#[derive(Debug, Clone)]
pub struct Simulation<'a> {
    model: &'a Model,
    cluster: &'a Cluster,
    params: CostParams,
    /// Optional straggler model: per-(task, stage) service times are
    /// multiplied by `1 + Exp(1) * jitter` (mean factor `1 + jitter`).
    jitter: Option<(f64, u64)>,
    /// Scripted failures `(device, from_task)`: the device is gone for
    /// every task whose index is `>= from_task`.
    failures: Vec<(usize, usize)>,
    /// Telemetry sink; event timestamps are **virtual** (simulation)
    /// time, not wall clock.
    recorder: Recorder,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation environment.
    pub fn new(model: &'a Model, cluster: &'a Cluster, params: &CostParams) -> Self {
        Simulation {
            model,
            cluster,
            params: *params,
            jitter: None,
            failures: Vec::new(),
            recorder: Recorder::noop(),
        }
    }

    /// Scripts device failures into the simulation: each `(device,
    /// from_task)` entry removes the device for every task whose index
    /// is `>= from_task`. Surviving devices of an affected stage absorb
    /// its rows (redistributed evenly, the cost model pricing the
    /// degraded stage); a stage with no survivor drops every remaining
    /// task it is offered. Each failure emits a `device_failed` instant
    /// stamped in virtual time, so simulated failover traces line up
    /// with the runtime's.
    pub fn with_failures(mut self, failures: &[(usize, usize)]) -> Self {
        self.failures.extend_from_slice(failures);
        self
    }

    /// Mirrors one churn epoch into the simulation: the epoch's
    /// departures (already rebased to epoch-relative task indices by
    /// [`ClusterSchedule::epochs`](pico_partition::ClusterSchedule::epochs))
    /// become scripted failures. Construct the `Simulation` over the
    /// epoch's own cluster snapshot — rejoins, joins, and recapacities
    /// are membership changes, so each epoch is a fresh simulation, the
    /// exact shape `PipelineRuntime` consumes via
    /// `FailureSchedule::from_leaves`.
    pub fn with_churn(self, epoch: &pico_partition::ChurnEpoch) -> Self {
        self.with_failures(&epoch.leaves)
    }

    /// Enables straggler jitter: each (task, stage) service time is
    /// stretched by an independent `1 + Exp(1) * jitter` factor —
    /// deterministic cost models never capture the OS hiccups and WiFi
    /// retransmits real Pis suffer.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is negative or not finite.
    pub fn with_jitter(mut self, jitter: f64, seed: u64) -> Self {
        assert!(jitter.is_finite() && jitter >= 0.0, "jitter must be >= 0");
        self.jitter = Some((jitter, seed));
        self
    }

    /// Attaches a telemetry recorder. Every station visit emits a
    /// `sim_service` span and every completed task a
    /// `queue_delay_observed` sample — all stamped in **virtual**
    /// simulation seconds, so traces line up with the queueing analysis
    /// rather than the host's wall clock.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The model under simulation.
    pub fn model(&self) -> &'a Model {
        self.model
    }

    /// The cluster under simulation.
    pub fn cluster(&self) -> &'a Cluster {
        self.cluster
    }

    /// The environment parameters.
    pub fn params(&self) -> CostParams {
        self.params
    }

    /// The attached telemetry recorder (no-op unless set via
    /// [`with_recorder`](Simulation::with_recorder)).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Collapses a plan into service stations.
    ///
    /// * Pipelined plans: one station per stage (disjoint devices run
    ///   concurrently).
    /// * Sequential plans: a single station whose service time is the
    ///   whole traversal — the cluster serves one task at a time.
    pub(crate) fn stations(&self, plan: &Plan) -> Vec<Station> {
        let cm = self.params.cost_model(self.model);
        let per_stage: Vec<Station> = plan
            .stages
            .iter()
            .map(|stage| {
                let cost = cm.stage_cost(stage, self.cluster);
                let busy = stage
                    .assignments
                    .iter()
                    .filter(|a| !a.is_empty())
                    .map(|a| {
                        let d = self
                            .cluster
                            .device(a.device)
                            .expect("plan validated against this cluster");
                        (a.device, cm.comp_time_of(d, stage.segment, a))
                    })
                    .collect();
                Station {
                    service: cost.total(),
                    busy_per_task: busy,
                }
            })
            .collect();
        match plan.mode {
            ExecutionMode::Pipelined => per_stage,
            ExecutionMode::Sequential => {
                let service = per_stage.iter().map(|s| s.service).sum();
                let mut busy: std::collections::BTreeMap<usize, f64> =
                    std::collections::BTreeMap::new();
                for s in &per_stage {
                    for (d, t) in &s.busy_per_task {
                        *busy.entry(*d).or_insert(0.0) += t;
                    }
                }
                vec![Station {
                    service,
                    busy_per_task: busy.into_iter().collect(),
                }]
            }
        }
    }

    /// The queueing-network view of a plan, as the DES will execute it:
    /// one [`StationProfile`] per service station, in visit order. This
    /// is the bridge static analysis uses — `pico-audit`'s
    /// queue-stability pass certifies Theorem 2 against exactly the
    /// service times the simulator would run.
    pub fn station_profiles(&self, plan: &Plan) -> Vec<StationProfile> {
        let pipelined = plan.mode == ExecutionMode::Pipelined;
        self.stations(plan)
            .into_iter()
            .enumerate()
            .map(|(i, s)| StationProfile {
                stage: if pipelined { Some(i) } else { None },
                service: s.service,
                busy_per_task: s.busy_per_task,
            })
            .collect()
    }

    /// Per-device compute seconds one task costs under `plan`, summed
    /// across stations, ascending device id.
    pub fn device_busy_per_task(&self, plan: &Plan) -> Vec<(usize, f64)> {
        let mut by_device: std::collections::BTreeMap<usize, f64> =
            std::collections::BTreeMap::new();
        for s in self.stations(plan) {
            for (d, t) in s.busy_per_task {
                *by_device.entry(d).or_insert(0.0) += t;
            }
        }
        by_device.into_iter().collect()
    }

    /// Statically predicted per-device utilization at arrival rate
    /// `lambda` (tasks/s): `ρ_d = λ · b_d`, clamped to 1, where `b_d`
    /// is [`device_busy_per_task`](Simulation::device_busy_per_task).
    /// At a stable rate this is what [`run`](Simulation::run) converges
    /// to over a long horizon — asserted within 5% by the deep-audit
    /// cross-check tests.
    pub fn predicted_device_utilization(&self, plan: &Plan, lambda: f64) -> Vec<(usize, f64)> {
        self.device_busy_per_task(plan)
            .into_iter()
            .map(|(d, b)| (d, (lambda * b).min(1.0)))
            .collect()
    }

    /// Per-device redundancy ratios of a plan, by device id.
    pub(crate) fn redundancy_by_device(
        &self,
        plan: &Plan,
    ) -> std::collections::BTreeMap<usize, f64> {
        redundancy::plan_work(self.model, plan)
            .into_iter()
            .map(|w| (w.device, w.redundancy_ratio()))
            .collect()
    }

    /// Rebuilds the plan's stations with `failed` devices removed: a
    /// stage's surviving devices split its whole row span evenly (the
    /// simulated analogue of the runtime retrying a dead worker's shard
    /// on survivors; grid column splits collapse to row strips). `None`
    /// marks a station whose stage has no survivor left.
    fn degraded_stations(&self, plan: &Plan, failed: &[usize]) -> Vec<Option<Station>> {
        let stages: Vec<Option<Stage>> = plan
            .stages
            .iter()
            .map(|stage| {
                let survivors: Vec<&Assignment> = stage
                    .assignments
                    .iter()
                    .filter(|a| !a.is_empty() && !failed.contains(&a.device))
                    .collect();
                if survivors.is_empty() {
                    return None;
                }
                let live = stage.assignments.iter().filter(|a| !a.is_empty());
                let lo = live.clone().map(|a| a.rows.start).min().unwrap_or(0);
                let hi = live.map(|a| a.rows.end).max().unwrap_or(0);
                let total = hi - lo;
                let n = survivors.len();
                let mut cursor = lo;
                let redistributed = survivors
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        let take = total / n + usize::from(i < total % n);
                        let rows = Rows::new(cursor, cursor + take);
                        cursor += take;
                        Assignment::new(a.device, rows)
                    })
                    .collect();
                Some(Stage::new(stage.segment, redistributed))
            })
            .collect();
        if stages.iter().all(|s| s.is_some()) {
            let degraded = Plan::new(
                plan.scheme,
                plan.mode,
                stages.into_iter().flatten().collect(),
            );
            return self.stations(&degraded).into_iter().map(Some).collect();
        }
        match plan.mode {
            // One collapsed station: losing any stage loses the chain.
            ExecutionMode::Sequential => vec![None],
            ExecutionMode::Pipelined => {
                let cm = self.params.cost_model(self.model);
                stages
                    .into_iter()
                    .map(|opt| {
                        opt.map(|stage| {
                            let cost = cm.stage_cost(&stage, self.cluster);
                            let busy = stage
                                .assignments
                                .iter()
                                .filter(|a| !a.is_empty())
                                .map(|a| {
                                    let d = self
                                        .cluster
                                        .device(a.device)
                                        .expect("plan validated against this cluster");
                                    (a.device, cm.comp_time_of(d, stage.segment, a))
                                })
                                .collect();
                            Station {
                                service: cost.total(),
                                busy_per_task: busy,
                            }
                        })
                    })
                    .collect()
            }
        }
    }

    /// Runs `plan` over `arrivals` and reports latency, throughput,
    /// utilization, and redundancy.
    ///
    /// Closed-loop streams admit each task the moment the first station
    /// frees up (saturation); open-loop streams queue tasks at their
    /// arrival times. With [`with_failures`](Simulation::with_failures),
    /// stations degrade as their devices die; a task offered to a
    /// stage with no survivor is dropped (it never completes, and
    /// [`SimReport::completed`] falls short of the offered count).
    pub fn run(&self, plan: &Plan, arrivals: &Arrivals) -> SimReport {
        let mut stations: Vec<Option<Station>> =
            self.stations(plan).into_iter().map(Some).collect();
        let mut failed_now: Vec<usize> = Vec::new();
        let mut free = vec![0.0f64; stations.len()];
        let mut busy: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        for d in self.cluster.devices() {
            busy.insert(d.id, 0.0);
        }
        let mut latencies = Vec::new();
        let mut last_completion: f64 = 0.0;
        let mut rng = self
            .jitter
            .map(|(j, seed)| (j, StdRng::seed_from_u64(seed)));
        let rec = &self.recorder;
        let enabled = rec.is_enabled();

        // Applies every scripted failure whose from_task has been
        // reached, emitting device_failed instants in virtual time and
        // rebuilding the degraded stations.
        let update_regime = |task: usize,
                             now: f64,
                             stations: &mut Vec<Option<Station>>,
                             failed_now: &mut Vec<usize>| {
            let newly: Vec<usize> = self
                .failures
                .iter()
                .filter(|(d, from)| task >= *from && !failed_now.contains(d))
                .map(|(d, _)| *d)
                .collect();
            if newly.is_empty() {
                return;
            }
            for d in newly {
                if enabled {
                    rec.instant_at(
                        names::DEVICE_FAILED,
                        Ctx::default().on_device(d).for_task(task),
                        now,
                        0.0,
                    );
                }
                failed_now.push(d);
            }
            failed_now.sort_unstable();
            *stations = self.degraded_stations(plan, failed_now);
        };

        let mut admit = |task: usize,
                         arrival: f64,
                         stations: &[Option<Station>],
                         free: &mut Vec<f64>,
                         busy: &mut std::collections::BTreeMap<usize, f64>|
         -> Option<f64> {
            let mut t = arrival;
            let mut waited = 0.0;
            for (s, slot) in stations.iter().enumerate() {
                let station = slot.as_ref()?;
                let stretch = match &mut rng {
                    Some((j, r)) => {
                        let u: f64 = r.gen_range(f64::EPSILON..1.0);
                        1.0 + (-u.ln()) * *j
                    }
                    None => 1.0,
                };
                let start = t.max(free[s]);
                waited += start - t;
                let done = start + station.service * stretch;
                if enabled {
                    rec.span_at(
                        names::SIM_SERVICE,
                        Ctx::stage(s).for_task(task),
                        start,
                        done,
                        station.service * stretch,
                        0,
                    );
                }
                free[s] = done;
                t = done;
                for (d, dt) in &station.busy_per_task {
                    *busy.get_mut(d).expect("device pre-registered") += dt * stretch;
                }
            }
            if enabled {
                rec.observe_at(
                    names::QUEUE_DELAY_OBSERVED,
                    Ctx::default().for_task(task),
                    t,
                    waited,
                );
            }
            Some(t)
        };

        match arrivals.times() {
            Some(times) => {
                for (task, a) in times.into_iter().enumerate() {
                    update_regime(task, a, &mut stations, &mut failed_now);
                    if let Some(done) = admit(task, a, &stations, &mut free, &mut busy) {
                        latencies.push(done - a);
                        last_completion = last_completion.max(done);
                    }
                }
            }
            None => {
                let count = match arrivals {
                    Arrivals::ClosedLoop { count } => *count,
                    _ => unreachable!("only closed-loop streams lack times"),
                };
                for task in 0..count {
                    let a = free[0];
                    update_regime(task, a, &mut stations, &mut failed_now);
                    if let Some(done) = admit(task, a, &stations, &mut free, &mut busy) {
                        latencies.push(done - a);
                        last_completion = last_completion.max(done);
                    }
                }
            }
        }

        let red = self.redundancy_by_device(plan);
        let raw: Vec<(usize, f64, f64)> = busy
            .into_iter()
            .map(|(d, b)| (d, b, red.get(&d).copied().unwrap_or(0.0)))
            .collect();
        SimReport::from_raw(&latencies, last_completion, &raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;
    use pico_partition::{CostParams, EarlyFused, OptimalFused, PicoPlanner, PlanRequest, Planner};

    fn setup() -> (Model, Cluster, CostParams) {
        (
            zoo::vgg16().features(),
            Cluster::pi_cluster(8, 1.0),
            CostParams::wifi_50mbps(),
        )
    }

    #[test]
    fn closed_loop_throughput_matches_period() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let metrics = p.cost_model(&m).evaluate(&plan, &c);
        let sim = Simulation::new(&m, &c, &p);
        let report = sim.run(&plan, &Arrivals::closed_loop(200));
        // Steady-state throughput converges to 1/period (pipeline fill
        // is amortized over 200 tasks).
        let expected = 1.0 / metrics.period;
        assert!(
            (report.throughput - expected).abs() / expected < 0.05,
            "sim {} analytic {expected}",
            report.throughput
        );
    }

    #[test]
    fn sequential_plan_is_single_server() {
        let (m, c, p) = setup();
        let plan = OptimalFused.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let metrics = p.cost_model(&m).evaluate(&plan, &c);
        let sim = Simulation::new(&m, &c, &p);
        let report = sim.run(&plan, &Arrivals::closed_loop(50));
        assert!((report.throughput - 1.0 / metrics.latency).abs() * metrics.latency < 0.05);
        // With no queueing gaps every task's latency is the service time.
        assert!((report.avg_latency - metrics.latency).abs() < 1e-9);
    }

    #[test]
    fn light_load_latency_is_service_time() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let metrics = p.cost_model(&m).evaluate(&plan, &c);
        let sim = Simulation::new(&m, &c, &p);
        // Arrivals far apart: no waiting.
        let gap = metrics.latency * 10.0;
        let trace = Arrivals::trace((0..20).map(|i| i as f64 * gap).collect());
        let report = sim.run(&plan, &trace);
        assert!((report.avg_latency - metrics.latency).abs() < 1e-9);
    }

    #[test]
    fn overload_grows_queue() {
        let (m, c, p) = setup();
        let plan = OptimalFused.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let metrics = p.cost_model(&m).evaluate(&plan, &c);
        let sim = Simulation::new(&m, &c, &p);
        // 2x the sustainable rate: waiting time grows linearly.
        let rate = 2.0 / metrics.period;
        let trace = Arrivals::trace((0..100).map(|i| i as f64 / rate).collect());
        let report = sim.run(&plan, &trace);
        assert!(report.max_latency > 20.0 * metrics.latency);
        assert!(report.avg_latency > report.p50_latency * 0.5);
    }

    #[test]
    fn poisson_latency_tracks_mdone() {
        let (m, c, p) = setup();
        let plan = OptimalFused.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let metrics = p.cost_model(&m).evaluate(&plan, &c);
        let sim = Simulation::new(&m, &c, &p);
        let lambda = 0.5 / metrics.period;
        let report = sim.run(
            &plan,
            &Arrivals::poisson(lambda, 4000.0 * metrics.period, 42),
        );
        // Theorem 2's prediction counts one extra service period; both
        // values must be within ~20% for a one-stage scheme at ρ=0.5.
        let analytic = crate::mdone::avg_latency(metrics.period, metrics.latency, lambda);
        let lower = metrics.latency; // service alone
        assert!(report.avg_latency > lower);
        assert!(
            report.avg_latency < analytic * 1.2,
            "sim {} analytic {analytic}",
            report.avg_latency
        );
    }

    #[test]
    fn pico_keeps_latency_stable_under_load_where_ofl_blows_up() {
        // The Fig. 10/11 story.
        let (m, c, p) = setup();
        let sim = Simulation::new(&m, &c, &p);
        let pico = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let ofl = OptimalFused.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let ofl_metrics = p.cost_model(&m).evaluate(&ofl, &c);
        // Load = 120% of OFL's capacity, sustainable for PICO.
        let lambda = 1.2 / ofl_metrics.period;
        let horizon = 600.0 * ofl_metrics.period;
        let arrivals = Arrivals::poisson(lambda, horizon, 7);
        let r_pico = sim.run(&pico, &arrivals);
        let r_ofl = sim.run(&ofl, &arrivals);
        assert!(
            r_pico.avg_latency < r_ofl.avg_latency / 2.0,
            "pico {} ofl {}",
            r_pico.avg_latency,
            r_ofl.avg_latency
        );
    }

    #[test]
    fn utilization_bounded_and_busy_positive() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let sim = Simulation::new(&m, &c, &p);
        let report = sim.run(&plan, &Arrivals::closed_loop(100));
        assert_eq!(report.device_stats.len(), 8);
        for d in &report.device_stats {
            assert!((0.0..=1.0).contains(&d.utilization));
            assert!((0.0..=1.0).contains(&d.redundancy));
        }
        assert!(report.avg_utilization() > 0.3);
    }

    #[test]
    fn jitter_raises_latency_and_preserves_completions() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let metrics = p.cost_model(&m).evaluate(&plan, &c);
        let arrivals = Arrivals::poisson(0.5 / metrics.period, 300.0 * metrics.period, 4);
        let clean = Simulation::new(&m, &c, &p).run(&plan, &arrivals);
        let noisy = Simulation::new(&m, &c, &p)
            .with_jitter(0.3, 9)
            .run(&plan, &arrivals);
        assert_eq!(clean.completed, noisy.completed);
        assert!(
            noisy.avg_latency > clean.avg_latency,
            "noisy {} clean {}",
            noisy.avg_latency,
            clean.avg_latency
        );
        // Mean stretch 1.3: average latency should grow by a bounded
        // factor, not explode (the load stays below capacity).
        assert!(noisy.avg_latency < clean.avg_latency * 4.0);
    }

    #[test]
    fn zero_jitter_equals_deterministic() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let arrivals = Arrivals::closed_loop(40);
        let a = Simulation::new(&m, &c, &p).run(&plan, &arrivals);
        let b = Simulation::new(&m, &c, &p)
            .with_jitter(0.0, 1)
            .run(&plan, &arrivals);
        assert_eq!(a, b);
    }

    #[test]
    fn recorder_captures_virtual_time_services() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let rec = Recorder::in_memory();
        let sim = Simulation::new(&m, &c, &p).with_recorder(rec.clone());
        let n = 10;
        let report = sim.run(&plan, &Arrivals::closed_loop(n));
        let events = rec.snapshot();
        // One begin + one end per (task, station) visit.
        let services = events
            .iter()
            .filter(|e| e.name == names::SIM_SERVICE)
            .count();
        assert_eq!(services, 2 * n * plan.stage_count());
        // One waiting-time sample per completed task, stamped in
        // virtual time (non-negative, bounded by the makespan).
        let waits: Vec<_> = events
            .iter()
            .filter(|e| e.name == names::QUEUE_DELAY_OBSERVED)
            .collect();
        assert_eq!(waits.len(), n);
        let makespan = report.completed as f64 / report.throughput;
        assert!(waits
            .iter()
            .all(|e| e.value >= 0.0 && e.ts <= makespan * 1.01));
    }

    /// A device from a stage that has at least one other live device,
    /// so failing it degrades the stage instead of losing it.
    fn victim_in_shared_stage(plan: &Plan) -> usize {
        plan.stages
            .iter()
            .find_map(|st| {
                let live: Vec<_> = st.assignments.iter().filter(|a| !a.is_empty()).collect();
                (live.len() >= 2).then(|| live[0].device)
            })
            .expect("pico plan has a multi-device stage")
    }

    #[test]
    fn failed_device_lowers_throughput_but_keeps_completions() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let victim = victim_in_shared_stage(&plan);
        let clean = Simulation::new(&m, &c, &p).run(&plan, &Arrivals::closed_loop(100));
        let degraded = Simulation::new(&m, &c, &p)
            .with_failures(&[(victim, 0)])
            .run(&plan, &Arrivals::closed_loop(100));
        // Survivors absorb the dead device's rows: nothing is dropped,
        // but the degraded stage is slower so throughput falls.
        assert_eq!(degraded.completed, clean.completed);
        assert!(
            degraded.throughput < clean.throughput,
            "degraded {} clean {}",
            degraded.throughput,
            clean.throughput
        );
    }

    #[test]
    fn stage_with_no_survivor_drops_remaining_tasks() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        // Kill every stage-0 device from task 5 on: tasks 0..5 complete,
        // everything after is offered to a stage with no survivor.
        let outage: Vec<(usize, usize)> = plan.stages[0]
            .assignments
            .iter()
            .filter(|a| !a.is_empty())
            .map(|a| (a.device, 5))
            .collect();
        let report = Simulation::new(&m, &c, &p)
            .with_failures(&outage)
            .run(&plan, &Arrivals::closed_loop(20));
        assert_eq!(report.completed, 5);
    }

    #[test]
    fn failure_emits_virtual_time_instant() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let metrics = p.cost_model(&m).evaluate(&plan, &c);
        let victim = victim_in_shared_stage(&plan);
        let rec = Recorder::in_memory();
        let gap = metrics.latency * 10.0;
        let trace = Arrivals::trace((0..6).map(|i| i as f64 * gap).collect());
        Simulation::new(&m, &c, &p)
            .with_failures(&[(victim, 3)])
            .with_recorder(rec.clone())
            .run(&plan, &trace);
        let events = rec.snapshot();
        let fails: Vec<_> = events
            .iter()
            .filter(|e| e.name == names::DEVICE_FAILED)
            .collect();
        assert_eq!(fails.len(), 1, "one failure, one instant");
        assert_eq!(fails[0].ctx.device.get(), Some(victim as u32));
        assert_eq!(fails[0].ctx.task.get(), Some(3));
        // Stamped at the affected task's arrival, in virtual seconds.
        assert!((fails[0].ts - 3.0 * gap).abs() < 1e-9, "ts {}", fails[0].ts);
    }

    #[test]
    fn degraded_simulation_is_deterministic() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let victim = victim_in_shared_stage(&plan);
        let run = || {
            Simulation::new(&m, &c, &p)
                .with_failures(&[(victim, 2)])
                .run(&plan, &Arrivals::closed_loop(40))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn efl_has_higher_redundancy_than_pico() {
        let (m, c, p) = setup();
        let sim = Simulation::new(&m, &c, &p);
        let efl = EarlyFused::new()
            .plan(&PlanRequest::new(&m, &c, &p))
            .unwrap();
        let pico = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let r_efl = sim.run(&efl, &Arrivals::closed_loop(50));
        let r_pico = sim.run(&pico, &Arrivals::closed_loop(50));
        assert!(
            r_efl.avg_redundancy() > r_pico.avg_redundancy(),
            "efl {} pico {}",
            r_efl.avg_redundancy(),
            r_pico.avg_redundancy()
        );
    }
}
