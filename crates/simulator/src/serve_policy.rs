//! Serving-policy primitives shared by the live `pico-serve` front-end
//! and its discrete-event mirror.
//!
//! The serving layer makes three decisions — admit or reject a task,
//! how many queued tasks to batch into the pipeline, and when a tenant
//! has exhausted its budget. Those decisions must be *identical* in the
//! threaded front-end and in simulation, or the replay tests could
//! never compare them, so the policy lives here in one place:
//!
//! * [`BatchPolicy`] / [`AdaptiveBatcher`] — micro-batch sizing from an
//!   EWMA of observed inter-arrival gaps (the same Eq. 15 smoothing the
//!   APICO switcher uses for λ);
//! * [`TenantPolicy`] / [`AdmissionLedger`] — per-tenant bounded queues
//!   and in-flight budgets, with typed [`RejectReason`]s;
//! * [`ServeSim`] — a deterministic batch-server queue simulation that
//!   prices a batch of `B` tasks at `latency + (B − 1) · period` using
//!   the plan's own cost-model metrics.

use std::collections::VecDeque;

use crate::InterArrivalEstimator;

/// Knobs for adaptive micro-batching.
///
/// The batcher targets a batch that fills roughly `target_delay`
/// seconds of arrivals: with smoothed inter-arrival gap `g`, the target
/// batch is `clamp(target_delay / g, min_batch, max_batch)`. Under
/// light load the gap is large and batches shrink to `min_batch`
/// (latency-biased); under bursts the gap collapses and batches grow
/// toward `max_batch` (throughput-biased).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Smallest batch ever submitted (≥ 1).
    pub min_batch: usize,
    /// Largest batch ever submitted (≥ `min_batch`).
    pub max_batch: usize,
    /// Seconds of arrivals one batch should absorb (> 0).
    pub target_delay: f64,
    /// EWMA smoothing factor for the inter-arrival gap, in `(0, 1]`.
    pub beta: f64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            min_batch: 1,
            max_batch: 8,
            target_delay: 0.05,
            beta: 0.3,
        }
    }
}

impl BatchPolicy {
    /// Every way this policy is malformed, as human-readable sentences
    /// (empty when valid). The serve front-end maps a non-empty list to
    /// audit code `PA401`.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.min_batch == 0 {
            v.push("min_batch must be at least 1".to_owned());
        }
        if self.max_batch < self.min_batch {
            v.push(format!(
                "max_batch ({}) is below min_batch ({})",
                self.max_batch, self.min_batch
            ));
        }
        if !(self.target_delay > 0.0 && self.target_delay.is_finite()) {
            v.push(format!(
                "target_delay ({}) must be positive and finite",
                self.target_delay
            ));
        }
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            v.push(format!("beta ({}) must be in (0, 1]", self.beta));
        }
        v
    }
}

/// Chooses the batch size from observed arrivals.
///
/// Feed every *admitted* arrival's timestamp through
/// [`observe_arrival`](Self::observe_arrival); read the current target
/// with [`target`](Self::target). Timestamps are caller-supplied
/// virtual times, so replays are bit-reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveBatcher {
    policy: BatchPolicy,
    estimator: InterArrivalEstimator,
}

impl AdaptiveBatcher {
    /// Creates a batcher for `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the policy has [`violations`](BatchPolicy::violations).
    pub fn new(policy: BatchPolicy) -> Self {
        let violations = policy.violations();
        assert!(violations.is_empty(), "invalid BatchPolicy: {violations:?}");
        AdaptiveBatcher {
            policy,
            estimator: InterArrivalEstimator::new(policy.beta),
        }
    }

    /// The policy this batcher was built from.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Records an admitted arrival at absolute time `t` (non-decreasing
    /// across calls) and folds the inter-arrival gap into the EWMA.
    pub fn observe_arrival(&mut self, t: f64) {
        self.estimator.observe_arrival(t);
    }

    /// The current target batch size. Before two arrivals have been
    /// observed there is no gap estimate and the target is `min_batch`.
    pub fn target(&self) -> usize {
        let Some(gap) = self.estimator.smoothed_gap() else {
            return self.policy.min_batch;
        };
        if gap <= 0.0 {
            return self.policy.max_batch;
        }
        let raw = (self.policy.target_delay / gap).round() as usize;
        raw.clamp(self.policy.min_batch, self.policy.max_batch)
    }

    /// The smoothed inter-arrival gap in seconds, if one exists yet.
    pub fn smoothed_gap(&self) -> Option<f64> {
        self.estimator.smoothed_gap()
    }

    /// The underlying shared gap estimator — the same λ signal the
    /// fleet re-planning kernel consumes.
    pub fn estimator(&self) -> &InterArrivalEstimator {
        &self.estimator
    }
}

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Most tasks a tenant may have *queued* (waiting, not yet batched).
    pub queue_capacity: usize,
    /// Most tasks a tenant may have admitted-but-incomplete (queued
    /// plus in a batch currently executing).
    pub in_flight_budget: usize,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            queue_capacity: 16,
            in_flight_budget: 32,
        }
    }
}

impl TenantPolicy {
    /// Malformed-policy sentences (empty when valid); maps to `PA401`.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.queue_capacity == 0 {
            v.push("queue_capacity must be at least 1".to_owned());
        }
        if self.in_flight_budget == 0 {
            v.push("in_flight_budget must be at least 1".to_owned());
        }
        v
    }

    /// True when the in-flight budget can never bind: at most
    /// `queue_capacity + max_batch` tasks can be admitted-but-incomplete
    /// at once, so a budget at or above that bound is dead
    /// configuration. The serve front-end maps this to warning `PA402`.
    pub fn budget_shadowed(&self, max_batch: usize) -> bool {
        self.in_flight_budget >= self.queue_capacity + max_batch
    }
}

/// Why a submission was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's queue already holds `capacity` waiting tasks.
    QueueFull {
        /// The bound that was hit.
        capacity: usize,
    },
    /// Admitting would push the tenant past its in-flight budget.
    OverBudget {
        /// The bound that was hit.
        budget: usize,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct TenantAccount {
    queued: usize,
    in_flight: usize,
    admitted: u64,
    rejected: u64,
    completed: u64,
}

/// Bookkeeping for admission control: one account per tenant, shared
/// verbatim by the live front-end and [`ServeSim`].
#[derive(Debug, Clone)]
pub struct AdmissionLedger {
    policies: Vec<TenantPolicy>,
    accounts: Vec<TenantAccount>,
}

impl AdmissionLedger {
    /// Creates a ledger with one account per entry of `policies`.
    ///
    /// # Panics
    ///
    /// Panics if `policies` is empty or any policy has violations.
    pub fn new(policies: Vec<TenantPolicy>) -> Self {
        assert!(!policies.is_empty(), "need at least one tenant");
        for (i, p) in policies.iter().enumerate() {
            let violations = p.violations();
            assert!(
                violations.is_empty(),
                "invalid TenantPolicy for tenant {i}: {violations:?}"
            );
        }
        let accounts = vec![TenantAccount::default(); policies.len()];
        AdmissionLedger { policies, accounts }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.policies.len()
    }

    /// The policy governing `tenant`.
    pub fn policy(&self, tenant: usize) -> TenantPolicy {
        self.policies[tenant]
    }

    /// Offers one task for `tenant`. On admission returns the queue
    /// depth *after* enqueueing; on rejection returns why and charges
    /// the rejection counter.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range — the caller owns tenant-id
    /// validation (`ServeError::UnknownTenant` in the front-end).
    pub fn offer(&mut self, tenant: usize) -> Result<usize, RejectReason> {
        let policy = self.policies[tenant];
        let acct = &mut self.accounts[tenant];
        if acct.queued >= policy.queue_capacity {
            acct.rejected += 1;
            return Err(RejectReason::QueueFull {
                capacity: policy.queue_capacity,
            });
        }
        if acct.queued + acct.in_flight >= policy.in_flight_budget {
            acct.rejected += 1;
            return Err(RejectReason::OverBudget {
                budget: policy.in_flight_budget,
            });
        }
        acct.queued += 1;
        acct.admitted += 1;
        Ok(acct.queued)
    }

    /// Moves `n` of `tenant`'s queued tasks into a forming batch.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` tasks are queued.
    pub fn take(&mut self, tenant: usize, n: usize) {
        let acct = &mut self.accounts[tenant];
        assert!(acct.queued >= n, "take({n}) exceeds queued {}", acct.queued);
        acct.queued -= n;
        acct.in_flight += n;
    }

    /// Retires `n` of `tenant`'s in-flight tasks as completed.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` tasks are in flight.
    pub fn complete(&mut self, tenant: usize, n: usize) {
        let acct = &mut self.accounts[tenant];
        assert!(
            acct.in_flight >= n,
            "complete({n}) exceeds in-flight {}",
            acct.in_flight
        );
        acct.in_flight -= n;
        acct.completed += n as u64;
    }

    /// Tasks currently queued for `tenant`.
    pub fn queued(&self, tenant: usize) -> usize {
        self.accounts[tenant].queued
    }

    /// Tasks currently in flight for `tenant`.
    pub fn in_flight(&self, tenant: usize) -> usize {
        self.accounts[tenant].in_flight
    }

    /// Total tasks ever admitted for `tenant`.
    pub fn admitted(&self, tenant: usize) -> u64 {
        self.accounts[tenant].admitted
    }

    /// Total tasks ever rejected for `tenant`.
    pub fn rejected(&self, tenant: usize) -> u64 {
        self.accounts[tenant].rejected
    }

    /// Total tasks ever completed for `tenant`.
    pub fn completed(&self, tenant: usize) -> u64 {
        self.accounts[tenant].completed
    }

    /// Tasks queued across all tenants.
    pub fn total_queued(&self) -> usize {
        self.accounts.iter().map(|a| a.queued).sum()
    }
}

/// What one serving epoch's pipeline costs: a batch of `B` tasks
/// occupies the server for `latency + (B − 1) · period` seconds (first
/// task traverses all stages, then the pipeline emits one task per
/// period).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceProfile {
    /// Single-task pipeline traversal time (Eq. 11).
    pub latency: f64,
    /// Steady-state inter-completion time (Eq. 10).
    pub period: f64,
}

impl ServiceProfile {
    /// Time to serve a batch of `batch` tasks.
    pub fn batch_time(&self, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be non-empty");
        self.latency + (batch - 1) as f64 * self.period
    }
}

/// Per-tenant outcome counts from a [`ServeSim`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantServeStat {
    /// Tasks admitted into the queue.
    pub admitted: u64,
    /// Tasks rejected (queue full or over budget).
    pub rejected: u64,
    /// Tasks served to completion.
    pub completed: u64,
}

/// Aggregate result of a [`ServeSim`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSimReport {
    /// One row per tenant, indexed by tenant id.
    pub per_tenant: Vec<TenantServeStat>,
    /// Size of every batch submitted, in submission order.
    pub batch_sizes: Vec<usize>,
    /// Mean sojourn (arrival → batch completion) over completed tasks.
    pub mean_sojourn: f64,
    /// Virtual time the last batch completed (0 when nothing ran).
    pub makespan: f64,
    /// Plan swaps performed mid-run.
    pub swaps: u64,
}

impl ServeSimReport {
    /// Mean submitted batch size (0 when no batch ran).
    pub fn mean_batch(&self) -> f64 {
        if self.batch_sizes.is_empty() {
            return 0.0;
        }
        self.batch_sizes.iter().sum::<usize>() as f64 / self.batch_sizes.len() as f64
    }

    /// Largest submitted batch (0 when no batch ran).
    pub fn max_batch(&self) -> usize {
        self.batch_sizes.iter().copied().max().unwrap_or(0)
    }

    /// Tasks completed across all tenants.
    pub fn completed(&self) -> u64 {
        self.per_tenant.iter().map(|t| t.completed).sum()
    }

    /// Tasks rejected across all tenants.
    pub fn rejected(&self) -> u64 {
        self.per_tenant.iter().map(|t| t.rejected).sum()
    }
}

/// Deterministic discrete-event mirror of the serving front-end.
///
/// Arrivals flow through the *same* [`AdmissionLedger`] and
/// [`AdaptiveBatcher`] the live front-end uses; the pipeline itself is
/// replaced by [`ServiceProfile::batch_time`] pricing. The server takes
/// a batch whenever it is free and anything is queued, sized
/// `min(target, queued_total)` and composed round-robin across tenants
/// — exactly the live composition rule.
#[derive(Debug, Clone)]
pub struct ServeSim {
    batch: BatchPolicy,
    tenants: Vec<TenantPolicy>,
}

impl ServeSim {
    /// Creates a simulator over the given policies.
    ///
    /// # Panics
    ///
    /// Panics when any policy has violations or `tenants` is empty.
    pub fn new(batch: BatchPolicy, tenants: Vec<TenantPolicy>) -> Self {
        let violations = batch.violations();
        assert!(violations.is_empty(), "invalid BatchPolicy: {violations:?}");
        // Ledger construction re-validates the tenant policies.
        let _ = AdmissionLedger::new(tenants.clone());
        ServeSim { batch, tenants }
    }

    /// Runs the mirror over `arrivals` — `(time, tenant)` pairs sorted
    /// by time — serving with `profile`. When `swap` is given, the
    /// first batch that would *start* at or after the swap time instead
    /// drains (the in-service batch finishes first, like the live warm
    /// swap) and every later batch is priced with the new profile.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is unsorted or names an unknown tenant.
    pub fn run(
        &self,
        arrivals: &[(f64, usize)],
        profile: ServiceProfile,
        swap: Option<(f64, ServiceProfile)>,
    ) -> ServeSimReport {
        assert!(
            arrivals.windows(2).all(|w| w[0].0 <= w[1].0),
            "arrivals must be sorted by time"
        );
        let mut ledger = AdmissionLedger::new(self.tenants.clone());
        let mut batcher = AdaptiveBatcher::new(self.batch);
        // FIFO arrival times per tenant, for sojourn accounting.
        let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); self.tenants.len()];
        let mut rr_next = 0usize; // round-robin cursor across tenants

        let mut i = 0usize;
        let mut free_at = 0.0f64;
        let mut active = profile;
        let mut swap = swap;
        let mut swaps = 0u64;
        let mut batch_sizes = Vec::new();
        let mut sojourn_sum = 0.0f64;
        let mut sojourn_count = 0u64;
        let mut makespan = 0.0f64;

        let admit = |t: f64,
                     tenant: usize,
                     ledger: &mut AdmissionLedger,
                     batcher: &mut AdaptiveBatcher,
                     queues: &mut Vec<VecDeque<f64>>| {
            if ledger.offer(tenant).is_ok() {
                queues[tenant].push_back(t);
                batcher.observe_arrival(t);
            }
        };

        while i < arrivals.len() || ledger.total_queued() > 0 {
            if ledger.total_queued() == 0 {
                // Server idle and nothing waiting: jump to next arrival.
                let (t, tenant) = arrivals[i];
                i += 1;
                if free_at < t {
                    free_at = t;
                }
                admit(t, tenant, &mut ledger, &mut batcher, &mut queues);
                continue;
            }
            let start = free_at;
            // Everything landing while the previous batch was in
            // service queues up (and may be rejected) before the next
            // batch forms.
            while i < arrivals.len() && arrivals[i].0 <= start {
                let (t, tenant) = arrivals[i];
                i += 1;
                admit(t, tenant, &mut ledger, &mut batcher, &mut queues);
            }
            if let Some((at, next)) = swap {
                if start >= at {
                    active = next;
                    swaps += 1;
                    swap = None;
                }
            }
            // Compose the batch round-robin across tenants.
            let want = batcher.target().min(ledger.total_queued());
            let mut picks: Vec<usize> = vec![0; self.tenants.len()];
            let mut picked = 0usize;
            while picked < want {
                let tenant = rr_next % self.tenants.len();
                rr_next += 1;
                let available = ledger.queued(tenant) - picks[tenant];
                if available > 0 {
                    picks[tenant] += 1;
                    picked += 1;
                }
            }
            let done_at = start + active.batch_time(want);
            for (tenant, &n) in picks.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                ledger.take(tenant, n);
                ledger.complete(tenant, n);
                for _ in 0..n {
                    let arrived = queues[tenant].pop_front().expect("queued arrival time");
                    sojourn_sum += done_at - arrived;
                    sojourn_count += 1;
                }
            }
            batch_sizes.push(want);
            free_at = done_at;
            makespan = done_at;
        }

        let per_tenant = (0..self.tenants.len())
            .map(|t| TenantServeStat {
                admitted: ledger.admitted(t),
                rejected: ledger.rejected(t),
                completed: ledger.completed(t),
            })
            .collect();
        ServeSimReport {
            per_tenant,
            batch_sizes,
            mean_sojourn: if sojourn_count == 0 {
                0.0
            } else {
                sojourn_sum / sojourn_count as f64
            },
            makespan,
            swaps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ServiceProfile {
        ServiceProfile {
            latency: 0.1,
            period: 0.02,
        }
    }

    #[test]
    fn batcher_targets_min_under_light_load_and_max_under_burst() {
        let mut b = AdaptiveBatcher::new(BatchPolicy {
            min_batch: 1,
            max_batch: 8,
            target_delay: 0.05,
            beta: 0.5,
        });
        assert_eq!(b.target(), 1);
        // Sparse arrivals: 1-second gaps → target stays at min.
        for k in 0..5 {
            b.observe_arrival(k as f64);
        }
        assert_eq!(b.target(), 1);
        // Burst: 1 ms gaps → target saturates at max.
        for k in 0..50 {
            b.observe_arrival(5.0 + k as f64 * 0.001);
        }
        assert_eq!(b.target(), 8);
    }

    #[test]
    fn batcher_interpolates_between_bounds() {
        let mut b = AdaptiveBatcher::new(BatchPolicy {
            min_batch: 1,
            max_batch: 16,
            target_delay: 0.1,
            beta: 1.0, // track the newest gap exactly
        });
        b.observe_arrival(0.0);
        b.observe_arrival(0.025); // gap 25 ms → 0.1/0.025 = 4
        assert_eq!(b.target(), 4);
    }

    #[test]
    fn batcher_delegation_matches_legacy_inline_ewma() {
        // Regression for the estimator dedup: the batcher used to carry
        // its own (gap EWMA, last_arrival) pair; after delegating to the
        // shared InterArrivalEstimator its gaps and targets must be
        // bit-identical to the legacy inline algorithm.
        let policy = BatchPolicy {
            min_batch: 1,
            max_batch: 16,
            target_delay: 0.1,
            beta: 0.3,
        };
        let mut b = AdaptiveBatcher::new(policy);
        let mut legacy_gap = crate::Ewma::new(policy.beta);
        let mut legacy_last: Option<f64> = None;
        let times = [0.0, 0.2, 0.21, 0.21, 0.9, 0.95, 1.0, 3.0, 3.001];
        for &t in &times {
            b.observe_arrival(t);
            if let Some(prev) = legacy_last {
                legacy_gap.update((t - prev).max(0.0));
            }
            legacy_last = Some(t);
            let legacy_target = match legacy_gap.value() {
                None => policy.min_batch,
                Some(g) if g <= 0.0 => policy.max_batch,
                Some(g) => ((policy.target_delay / g).round() as usize)
                    .clamp(policy.min_batch, policy.max_batch),
            };
            assert_eq!(b.smoothed_gap(), legacy_gap.value());
            assert_eq!(b.target(), legacy_target);
            assert_eq!(b.estimator().last_arrival(), legacy_last);
        }
    }

    #[test]
    fn policy_violations_are_reported() {
        let bad = BatchPolicy {
            min_batch: 0,
            max_batch: 0,
            target_delay: 0.0,
            beta: 2.0,
        };
        assert_eq!(bad.violations().len(), 3); // max>=min holds when both 0
        assert!(BatchPolicy::default().violations().is_empty());
        assert!(TenantPolicy::default().violations().is_empty());
        assert_eq!(
            TenantPolicy {
                queue_capacity: 0,
                in_flight_budget: 0,
            }
            .violations()
            .len(),
            2
        );
    }

    #[test]
    fn budget_shadowing_detected() {
        let p = TenantPolicy {
            queue_capacity: 4,
            in_flight_budget: 12,
        };
        assert!(p.budget_shadowed(8)); // 12 >= 4 + 8
        assert!(!p.budget_shadowed(9));
    }

    #[test]
    fn ledger_rejects_exactly_at_bounds() {
        let mut l = AdmissionLedger::new(vec![TenantPolicy {
            queue_capacity: 2,
            in_flight_budget: 3,
        }]);
        assert_eq!(l.offer(0), Ok(1));
        assert_eq!(l.offer(0), Ok(2));
        assert_eq!(l.offer(0), Err(RejectReason::QueueFull { capacity: 2 }));
        // Drain the queue into a batch: queue frees, budget now binds.
        l.take(0, 2);
        assert_eq!(l.offer(0), Ok(1));
        assert_eq!(l.offer(0), Err(RejectReason::OverBudget { budget: 3 }));
        l.complete(0, 2);
        assert_eq!(l.offer(0), Ok(2));
        assert_eq!(l.admitted(0), 4);
        assert_eq!(l.rejected(0), 2);
        assert_eq!(l.completed(0), 2);
    }

    #[test]
    fn steady_stream_completes_everything_without_rejection() {
        let sim = ServeSim::new(BatchPolicy::default(), vec![TenantPolicy::default(); 2]);
        let arrivals: Vec<(f64, usize)> = (0..40).map(|k| (k as f64 * 0.2, k % 2)).collect();
        let report = sim.run(&arrivals, profile(), None);
        assert_eq!(report.completed(), 40);
        assert_eq!(report.rejected(), 0);
        assert_eq!(report.per_tenant[0].completed, 20);
        assert_eq!(report.per_tenant[1].completed, 20);
        // The server is always idle when the next task lands, so every
        // sojourn is exactly one pipeline traversal (up to fp rounding
        // in the mean).
        assert!((report.mean_sojourn - profile().latency).abs() < 1e-9);
    }

    #[test]
    fn burst_grows_batches_and_overload_rejects_at_queue_bound() {
        // The batcher only observes *admitted* arrivals, so the queue
        // must be deep enough for a burst to actually reach the EWMA —
        // with a shallow queue, admissions are throttled to the service
        // rate and the gap estimate never collapses.
        let tenants = vec![TenantPolicy {
            queue_capacity: 32,
            in_flight_budget: 64,
        }];
        let sim = ServeSim::new(BatchPolicy::default(), tenants);
        // Quiet phase then a dense burst far faster than the server.
        let mut arrivals: Vec<(f64, usize)> = (0..5).map(|k| (k as f64, 0)).collect();
        arrivals.extend((0..200).map(|k| (10.0 + k as f64 * 0.001, 0)));
        let report = sim.run(&arrivals, profile(), None);
        // Quiet phase serves singletons; the burst fills batches.
        assert_eq!(report.batch_sizes[0], 1);
        assert!(report.max_batch() >= 4, "batches {:?}", report.batch_sizes);
        assert!(report.rejected() > 0);
        assert_eq!(
            report.completed() + report.rejected(),
            arrivals.len() as u64
        );
    }

    #[test]
    fn swap_drains_current_batch_and_switches_pricing() {
        let sim = ServeSim::new(
            BatchPolicy::default(),
            vec![TenantPolicy {
                queue_capacity: 64,
                in_flight_budget: 64,
            }],
        );
        let arrivals: Vec<(f64, usize)> = (0..30).map(|k| (k as f64 * 0.05, 0)).collect();
        let fast = ServiceProfile {
            latency: 0.05,
            period: 0.01,
        };
        let report = sim.run(&arrivals, profile(), Some((0.7, fast)));
        assert_eq!(report.swaps, 1);
        assert_eq!(report.completed(), 30);
        assert_eq!(report.rejected(), 0);
        let base = sim.run(&arrivals, profile(), None);
        // Swapping to a faster plan mid-run finishes no later.
        assert!(report.makespan <= base.makespan + 1e-9);
    }

    #[test]
    fn mirror_is_deterministic() {
        let sim = ServeSim::new(BatchPolicy::default(), vec![TenantPolicy::default(); 3]);
        let arrivals: Vec<(f64, usize)> = (0..60).map(|k| (k as f64 * 0.017, k % 3)).collect();
        let a = sim.run(&arrivals, profile(), None);
        let b = sim.run(&arrivals, profile(), None);
        assert_eq!(a, b);
    }
}
