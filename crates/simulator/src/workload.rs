//! Realistic workload generators.
//!
//! The paper motivates APICO with time-varying load: "these devices
//! could be idle when occupants go to work, and busy when they return
//! home". This module builds such arrival streams:
//!
//! * [`phases`] — piecewise-constant Poisson rates (a day schedule);
//! * [`bursty`] — a two-state Markov-modulated Poisson process (quiet /
//!   burst), the standard model for flash crowds;
//! * [`diurnal`] — a smooth sinusoidal day/night rate curve sampled via
//!   thinning.

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::Arrivals;

/// Piecewise-constant Poisson arrivals: each `(rate, duration)` phase
/// runs in order (`rate` in tasks/s, `duration` in seconds).
///
/// # Example
///
/// ```
/// use pico_sim::workload::phases;
///
/// // Quiet night, busy evening.
/// let arrivals = phases(&[(0.01, 3600.0), (0.5, 3600.0)], 7);
/// let times = arrivals.times().unwrap();
/// assert!(times.iter().filter(|t| **t > 3600.0).count()
///     > 10 * times.iter().filter(|t| **t <= 3600.0).count());
/// ```
///
/// # Panics
///
/// Panics if `segments` is empty, or any rate is negative or duration
/// non-positive.
pub fn phases(segments: &[(f64, f64)], seed: u64) -> Arrivals {
    assert!(!segments.is_empty(), "need at least one phase");
    assert!(
        segments.iter().all(|(r, d)| *r >= 0.0 && *d > 0.0),
        "rates must be >= 0, durations > 0"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut times = Vec::new();
    let mut t0 = 0.0;
    for (rate, duration) in segments {
        if *rate > 0.0 {
            let mut t = t0;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                t += -u.ln() / rate;
                if t > t0 + duration {
                    break;
                }
                times.push(t);
            }
        }
        t0 += duration;
    }
    Arrivals::trace(times)
}

/// A two-state Markov-modulated Poisson process: exponentially
/// distributed sojourns in a `quiet` state (rate `quiet_rate`) and a
/// `burst` state (rate `burst_rate`), switching with mean dwell times
/// `quiet_dwell` / `burst_dwell` seconds, over `horizon` seconds.
///
/// # Panics
///
/// Panics on non-positive dwell times or horizon, or negative rates.
pub fn bursty(
    quiet_rate: f64,
    burst_rate: f64,
    quiet_dwell: f64,
    burst_dwell: f64,
    horizon: f64,
    seed: u64,
) -> Arrivals {
    assert!(quiet_rate >= 0.0 && burst_rate >= 0.0, "rates must be >= 0");
    assert!(
        quiet_dwell > 0.0 && burst_dwell > 0.0 && horizon > 0.0,
        "dwells and horizon must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut times = Vec::new();
    let mut t = 0.0;
    let mut in_burst = false;
    while t < horizon {
        let dwell_mean = if in_burst { burst_dwell } else { quiet_dwell };
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let dwell = (-u.ln() * dwell_mean).min(horizon - t);
        let rate = if in_burst { burst_rate } else { quiet_rate };
        if rate > 0.0 {
            let mut s = t;
            loop {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                s += -u.ln() / rate;
                if s > t + dwell {
                    break;
                }
                times.push(s);
            }
        }
        t += dwell;
        in_burst = !in_burst;
    }
    Arrivals::trace(times)
}

/// A sinusoidal diurnal pattern: rate(t) = `base * (1 + depth *
/// sin(2πt/period))`, clipped at zero, sampled by thinning over
/// `horizon` seconds.
///
/// # Panics
///
/// Panics if `base <= 0`, `depth < 0`, `period <= 0`, or
/// `horizon <= 0`.
pub fn diurnal(base: f64, depth: f64, period: f64, horizon: f64, seed: u64) -> Arrivals {
    assert!(base > 0.0, "base rate must be positive");
    assert!(depth >= 0.0, "depth must be non-negative");
    assert!(
        period > 0.0 && horizon > 0.0,
        "period and horizon must be positive"
    );
    let peak = base * (1.0 + depth);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut times = Vec::new();
    let mut t = 0.0;
    loop {
        // Thinning: propose at the peak rate, accept proportionally.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / peak;
        if t > horizon {
            break;
        }
        let rate =
            (base * (1.0 + depth * (2.0 * std::f64::consts::PI * t / period).sin())).max(0.0);
        if rng.gen_range(0.0..1.0) < rate / peak {
            times.push(t);
        }
    }
    Arrivals::trace(times)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(a: &Arrivals) -> Vec<f64> {
        a.times().expect("trace has times")
    }

    #[test]
    fn phases_respect_rates() {
        let a = phases(&[(1.0, 1000.0), (10.0, 1000.0)], 7);
        let ts = times(&a);
        let first: usize = ts.iter().filter(|t| **t < 1000.0).count();
        let second = ts.len() - first;
        assert!((first as f64 - 1000.0).abs() < 150.0, "{first}");
        assert!((second as f64 - 10_000.0).abs() < 500.0, "{second}");
    }

    #[test]
    fn phases_can_be_silent() {
        let a = phases(&[(0.0, 100.0), (2.0, 100.0)], 1);
        let ts = times(&a);
        assert!(ts.iter().all(|t| *t > 100.0));
        assert!(!ts.is_empty());
    }

    #[test]
    fn bursty_has_higher_variance_than_poisson() {
        // Dispersion index (var/mean of per-window counts) >> 1 for the
        // MMPP, ~1 for plain Poisson of the same average rate.
        let horizon = 20_000.0;
        let mmpp = bursty(0.2, 5.0, 200.0, 50.0, horizon, 3);
        let counts = |ts: &[f64]| -> Vec<usize> {
            let mut c = vec![0usize; (horizon / 100.0) as usize];
            for t in ts {
                let idx = ((*t / 100.0) as usize).min(c.len() - 1);
                c[idx] += 1;
            }
            c
        };
        let dispersion = |c: &[usize]| {
            let mean = c.iter().sum::<usize>() as f64 / c.len() as f64;
            let var = c.iter().map(|x| (*x as f64 - mean).powi(2)).sum::<f64>() / c.len() as f64;
            var / mean
        };
        let d_mmpp = dispersion(&counts(&times(&mmpp)));
        let avg_rate = times(&mmpp).len() as f64 / horizon;
        let pois = crate::Arrivals::poisson(avg_rate, horizon, 3);
        let d_pois = dispersion(&counts(&times(&pois)));
        assert!(d_mmpp > 3.0 * d_pois, "mmpp {d_mmpp} poisson {d_pois}");
    }

    #[test]
    fn diurnal_peaks_and_troughs() {
        // One sine period: the first half (rising) should carry more
        // arrivals than the second (falling below base).
        let a = diurnal(1.0, 0.9, 10_000.0, 10_000.0, 5);
        let ts = times(&a);
        let first_half = ts.iter().filter(|t| **t < 5000.0).count();
        let second_half = ts.len() - first_half;
        assert!(
            first_half as f64 > 1.3 * second_half as f64,
            "{first_half} vs {second_half}"
        );
    }

    #[test]
    fn all_generators_are_sorted_and_deterministic() {
        for a in [
            phases(&[(2.0, 500.0)], 9),
            bursty(0.5, 3.0, 100.0, 30.0, 1000.0, 9),
            diurnal(1.0, 0.5, 500.0, 1000.0, 9),
        ] {
            let ts = times(&a);
            assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        }
        assert_eq!(
            times(&bursty(0.5, 3.0, 100.0, 30.0, 1000.0, 9)),
            times(&bursty(0.5, 3.0, 100.0, 30.0, 1000.0, 9))
        );
    }
}
