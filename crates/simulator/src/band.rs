//! Workload bands: the `[λ_lo, λ_hi]` interval a deployment is
//! provisioned for.
//!
//! APICO reacts to the *current* EWMA-estimated rate (Eq. 15); the
//! deep audit instead takes the whole band an operator expects and
//! certifies Theorem 2 across it. Because M/D/1 utilization `ρ = p·λ`
//! is monotone in λ, checking the band endpoints covers every rate in
//! between — the band type exists so analyses and the DES agree on
//! what "the workload" means.

use serde::{Deserialize, Serialize};

/// A closed arrival-rate interval `[lo, hi]` in tasks per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadBand {
    /// Lowest expected arrival rate (tasks/s).
    pub lo: f64,
    /// Highest expected arrival rate (tasks/s).
    pub hi: f64,
}

impl WorkloadBand {
    /// Creates a band.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= lo <= hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && 0.0 <= lo && lo <= hi,
            "workload band requires 0 <= lo <= hi, got [{lo}, {hi}]"
        );
        WorkloadBand { lo, hi }
    }

    /// A degenerate band holding a single rate.
    pub fn point(lambda: f64) -> Self {
        WorkloadBand::new(lambda, lambda)
    }

    /// Whether `lambda` falls inside the band (inclusive).
    pub fn contains(&self, lambda: f64) -> bool {
        self.lo <= lambda && lambda <= self.hi
    }

    /// `n` evenly spaced rates covering the band, endpoints included
    /// (`n == 1` yields just `hi`, the stability-critical endpoint).
    pub fn samples(&self, n: usize) -> Vec<f64> {
        assert!(n > 0, "need at least one sample");
        if n == 1 || self.hi == self.lo {
            return vec![self.hi];
        }
        (0..n)
            .map(|i| self.lo + (self.hi - self.lo) * i as f64 / (n - 1) as f64)
            .collect()
    }
}

impl std::fmt::Display for WorkloadBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:.3}, {:.3}] tasks/s", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_cover_the_band_inclusively() {
        let b = WorkloadBand::new(1.0, 3.0);
        let s = b.samples(5);
        assert_eq!(s.first(), Some(&1.0));
        assert_eq!(s.last(), Some(&3.0));
        assert_eq!(s.len(), 5);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&l| b.contains(l)));
    }

    #[test]
    fn point_band_collapses() {
        let b = WorkloadBand::point(2.5);
        assert_eq!(b.samples(7), vec![2.5]);
        assert!(b.contains(2.5) && !b.contains(2.6));
    }

    #[test]
    #[should_panic(expected = "workload band")]
    fn inverted_band_is_rejected() {
        WorkloadBand::new(2.0, 1.0);
    }
}
