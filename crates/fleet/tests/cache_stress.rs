//! Concurrency and allocation regression tests for the fleet plan
//! cache: many reader threads against a writer, then a
//! counting-allocator proof that steady-state hits are allocation-free.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pico_fleet::{CacheKey, FleetConfig, FleetFrontier, PlanCache};
use pico_model::zoo;
use pico_partition::{Cluster, CostParams};
use pico_sim::WorkloadBand;
use pico_telemetry::Recorder;

pico_telemetry::install_counting_allocator!();

fn deployment(devices: usize) -> (CacheKey, FleetFrontier) {
    let model = zoo::mnist_toy();
    let cluster = Cluster::pi_cluster(devices, 1.0);
    let params = CostParams::wifi_50mbps();
    let key = CacheKey::new(&model, &cluster, &params, WorkloadBand::point(0.0));
    let frontier =
        FleetFrontier::build(&model, &cluster, &params, FleetConfig::default()).expect("frontier");
    (key, frontier)
}

#[test]
fn readers_race_a_writer_without_losing_entries() {
    const READERS: usize = 6;
    const READS_PER_THREAD: usize = 2_000;

    let cache = Arc::new(PlanCache::new(64));
    let (hot_key, hot_frontier) = deployment(4);
    let expected_entries = hot_frontier.entries().len();
    cache.insert(hot_key, hot_frontier);

    // The writer churns *other* deployments through the cache while the
    // readers hammer the hot key. It cycles a bounded key set so no
    // shard ever overflows — FIFO eviction must never reap the hot
    // entry out from under the readers.
    let (cold_key, cold_frontier) = deployment(3);
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let cache = Arc::clone(&cache);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut inserted = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Distinct band bits → distinct keys.
                let key = CacheKey {
                    band_hi_bits: cold_key.band_hi_bits ^ (inserted % 6),
                    ..cold_key
                };
                cache.insert(key, cold_frontier.clone());
                inserted += 1;
            }
            inserted
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let rec = Recorder::noop();
                for _ in 0..READS_PER_THREAD {
                    let frontier = cache
                        .get(&hot_key, &rec)
                        .expect("hot entry must never vanish mid-stress");
                    assert_eq!(frontier.entries().len(), expected_entries);
                }
            })
        })
        .collect();
    for r in readers {
        r.join().expect("reader panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let inserted = writer.join().expect("writer panicked");
    assert!(inserted > 0, "writer made no progress");

    let stats = cache.stats();
    assert_eq!(stats.hits, (READERS * READS_PER_THREAD) as u64);
    assert!(stats.entries <= 7, "unexpected entry count: {stats:?}");
}

#[test]
fn steady_state_hits_are_allocation_free() {
    let cache = PlanCache::new(8);
    let rec = Recorder::noop();
    let (key, frontier) = deployment(4);
    cache.insert(key, frontier);

    // Warm up: the first lookup may lazily touch thread-locals.
    let warm = cache.get(&key, &rec).expect("hit");
    drop(warm);

    let before = allocation_count();
    for _ in 0..1_000 {
        let hit = cache.get(&key, &rec).expect("hit");
        assert!(!hit.entries().is_empty());
    }
    let delta = allocation_count() - before;
    assert_eq!(delta, 0, "steady-state cache hits allocated {delta} times");
}
