//! The concurrent plan cache: sharded, read-heavy, deterministic.
//!
//! Frontier construction runs every planner and `O(n²)` switch audits —
//! far too expensive to repeat per request — while lookups happen on
//! the serving path. The cache is therefore a fixed array of
//! `RwLock<HashMap>` shards (many concurrent readers, rare writers);
//! a hit takes one shard read-lock, one hash probe, and an `Arc` clone
//! — no allocation, which `tests/cache_stress.rs` pins down with a
//! counting allocator. Eviction is deterministic FIFO by insertion
//! sequence, so two processes that perform the same operations hold the
//! same entries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use pico_telemetry::{names, Recorder};

use crate::frontier::{FleetError, FleetFrontier};
use crate::key::{CacheKey, ClusterSignature};

const SHARDS: usize = 8;

/// Default capacity (entries) of the process-global cache.
pub const GLOBAL_CACHE_CAPACITY: usize = 64;

struct CachedEntry {
    frontier: Arc<FleetFrontier>,
    seq: u64,
}

/// Counters describing cache behavior so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required building a frontier.
    pub misses: u64,
    /// Entries evicted to respect capacity.
    pub evictions: u64,
    /// Entries dropped because their cluster signature went stale
    /// (membership churn).
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A sharded, read-optimized map from [`CacheKey`] to built
/// [`FleetFrontier`]s.
pub struct PlanCache {
    shards: [RwLock<HashMap<CacheKey, CachedEntry>>; SHARDS],
    per_shard_capacity: usize,
    seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` frontiers (split
    /// evenly across shards, at least one per shard).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be at least 1");
        PlanCache {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The process-global cache shared by the serving layer and the
    /// CLI.
    pub fn global() -> &'static PlanCache {
        static GLOBAL: OnceLock<PlanCache> = OnceLock::new();
        GLOBAL.get_or_init(|| PlanCache::new(GLOBAL_CACHE_CAPACITY))
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<HashMap<CacheKey, CachedEntry>> {
        &self.shards[(key.digest() % SHARDS as u64) as usize]
    }

    /// Looks up `key`, counting a hit or miss on `rec`
    /// (`plan_cache_hit` / `plan_cache_miss`).
    pub fn get(&self, key: &CacheKey, rec: &Recorder) -> Option<Arc<FleetFrontier>> {
        let found = self.shard(key).read().get(key).map(|e| e.frontier.clone());
        match found {
            Some(frontier) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                rec.count(names::PLAN_CACHE_HIT, 1.0);
                Some(frontier)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                rec.count(names::PLAN_CACHE_MISS, 1.0);
                None
            }
        }
    }

    /// Inserts `frontier` under `key`, evicting the oldest entry of the
    /// key's shard when the shard is over capacity. Returns the shared
    /// handle now resident (an earlier racing insert wins — all racers
    /// built from identical inputs, so any one of them serves).
    pub fn insert(&self, key: CacheKey, frontier: FleetFrontier) -> Arc<FleetFrontier> {
        let mut shard = self.shard(&key).write();
        if let Some(existing) = shard.get(&key) {
            return existing.frontier.clone();
        }
        let handle = Arc::new(frontier);
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        shard.insert(
            key,
            CachedEntry {
                frontier: handle.clone(),
                seq,
            },
        );
        while shard.len() > self.per_shard_capacity {
            // Deterministic FIFO: drop the oldest insertion.
            let oldest = shard
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| *k)
                .expect("non-empty shard");
            shard.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        handle
    }

    /// Returns the cached frontier for `key`, or builds one with
    /// `build`, caches it, and returns it. Builds run outside any shard
    /// lock, so readers of other keys never stall behind a build.
    pub fn get_or_build(
        &self,
        key: CacheKey,
        rec: &Recorder,
        build: impl FnOnce() -> Result<FleetFrontier, FleetError>,
    ) -> Result<Arc<FleetFrontier>, FleetError> {
        if let Some(hit) = self.get(&key, rec) {
            return Ok(hit);
        }
        let built = build()?;
        Ok(self.insert(key, built))
    }

    /// Drops every resident frontier whose cluster signature equals
    /// `stale` — the membership it was planned for no longer exists
    /// (a device left, rejoined at a new clock, or was re-provisioned),
    /// so serving those plans would route work to hardware that is not
    /// there. Returns how many entries were dropped; each one counts a
    /// `plan_cache_invalidated` on `rec` and in
    /// [`CacheStats::invalidations`].
    pub fn invalidate_stale(&self, stale: ClusterSignature, rec: &Recorder) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut shard = shard.write();
            let doomed: Vec<CacheKey> = shard
                .iter()
                .filter(|(k, _)| k.cluster == stale)
                .map(|(k, _)| *k)
                .collect();
            for k in doomed {
                shard.remove(&k);
                dropped += 1;
            }
        }
        if dropped > 0 {
            self.invalidations.fetch_add(dropped, Ordering::Relaxed);
            rec.count(names::PLAN_CACHE_INVALIDATED, dropped as f64);
        }
        dropped
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().len()).sum(),
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::FleetConfig;
    use pico_model::zoo;
    use pico_partition::{Cluster, CostParams};
    use pico_sim::WorkloadBand;

    fn frontier(devices: usize) -> (CacheKey, FleetFrontier) {
        let model = zoo::mnist_toy();
        let cluster = Cluster::pi_cluster(devices, 1.0);
        let params = CostParams::wifi_50mbps();
        let key = CacheKey::new(&model, &cluster, &params, WorkloadBand::point(0.0));
        let f = FleetFrontier::build(&model, &cluster, &params, FleetConfig::default()).unwrap();
        (key, f)
    }

    #[test]
    fn hit_after_insert_and_stats_track() {
        let cache = PlanCache::new(8);
        let rec = Recorder::noop();
        let (key, f) = frontier(4);
        assert!(cache.get(&key, &rec).is_none());
        cache.insert(key, f);
        let hit = cache.get(&key, &rec).expect("hit");
        assert!(!hit.entries().is_empty());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn get_or_build_builds_once() {
        let cache = PlanCache::new(8);
        let rec = Recorder::noop();
        let (key, f) = frontier(4);
        let mut builds = 0;
        for _ in 0..3 {
            let f = f.clone();
            let out = cache
                .get_or_build(key, &rec, || {
                    builds += 1;
                    Ok(f)
                })
                .unwrap();
            assert!(!out.entries().is_empty());
        }
        assert_eq!(builds, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
    }

    #[test]
    fn eviction_is_fifo_and_counted() {
        // Single-entry-per-shard capacity: keys hashing to the same
        // shard evict their eldest sibling.
        let cache = PlanCache::new(1);
        let rec = Recorder::noop();
        let (base_key, f) = frontier(4);
        // Synthesize distinct keys; at least two must share a shard
        // once we insert SHARDS + 1 of them.
        let keys: Vec<CacheKey> = (0..=SHARDS as u64)
            .map(|i| CacheKey {
                band_hi_bits: base_key.band_hi_bits ^ i,
                ..base_key
            })
            .collect();
        for k in &keys {
            cache.insert(*k, f.clone());
        }
        let stats = cache.stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert!(stats.entries <= SHARDS);
        // The newest key always survives its own shard's eviction.
        assert!(cache.get(keys.last().unwrap(), &rec).is_some());
    }

    #[test]
    fn invalidate_stale_drops_only_matching_signatures() {
        let cache = PlanCache::new(8);
        let rec = Recorder::noop();
        let (key4, f4) = frontier(4);
        let (key2, f2) = frontier(2);
        cache.insert(key4, f4);
        cache.insert(key2, f2);
        assert_eq!(cache.stats().entries, 2);
        // Invalidate the 4-device membership only.
        let dropped = cache.invalidate_stale(key4.cluster, &rec);
        assert_eq!(dropped, 1);
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.entries, 1);
        assert!(cache.get(&key4, &rec).is_none());
        assert!(cache.get(&key2, &rec).is_some());
        // A second invalidation of the same signature is a no-op.
        assert_eq!(cache.invalidate_stale(key4.cluster, &rec), 0);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn racing_insert_returns_resident_entry() {
        let cache = PlanCache::new(8);
        let (key, f) = frontier(4);
        let first = cache.insert(key, f.clone());
        let second = cache.insert(key, f);
        assert!(Arc::ptr_eq(&first, &second));
    }
}
