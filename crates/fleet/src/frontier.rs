//! Building the fleet frontier: every planner the repo knows, swept
//! over one `(model, cluster)` deployment, reduced to the
//! Pareto-optimal set under `(period, latency, resident memory)`.
//!
//! Each surviving entry is audit-validated (`Auditor::audit_deep` over
//! its own sustainable band) and priced as a [`ServiceProfile`], so a
//! frontier is everything a re-planning controller needs: *which* plans
//! exist, *what* each costs, *how much* load each sustains, and —
//! through the precomputed `PA305`–`PA307` switch matrix — which
//! live transitions the audit gate will allow.

use pico_audit::{AuditConfig, Auditor};
use pico_model::Model;
use pico_partition::memory::plan_memory;
use pico_partition::{
    pareto, Cluster, CostParams, EarlyFused, GridFused, Interleaved, LayerWise, OptimalFused,
    PicoPlanner, Plan, PlanRequest, Planner,
};
use pico_sim::serve_policy::ServiceProfile;
use pico_sim::{mdone, ReplanCandidate, ReplanKernel, ReplanPolicy, Simulation, WorkloadBand};

use crate::key::{ClusterSignature, ModelFingerprint};

/// Knobs for frontier construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// `T_lim` sweep steps for the PICO latency/period frontier (≥ 1).
    pub steps: usize,
    /// Fraction of each plan's `λ* = 1/p` admitted into its sustainable
    /// band, in `(0, 1)` — the same saturation margin the deep audit's
    /// `PA304` pass warns at.
    pub saturation_margin: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            steps: 6,
            saturation_margin: 0.9,
        }
    }
}

impl FleetConfig {
    /// Every way this config is malformed (empty when valid).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.steps == 0 {
            v.push("steps must be at least 1".to_owned());
        }
        if !(self.saturation_margin > 0.0 && self.saturation_margin < 1.0) {
            v.push(format!(
                "saturation_margin ({}) must be in (0, 1)",
                self.saturation_margin
            ));
        }
        v
    }
}

/// Why a frontier could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// Every candidate plan failed its deep audit — nothing to serve.
    NoViablePlans,
    /// The [`FleetConfig`] was malformed.
    InvalidConfig(Vec<String>),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoViablePlans => {
                write!(f, "no candidate plan survived the deep audit")
            }
            FleetError::InvalidConfig(v) => {
                write!(f, "invalid fleet config: {}", v.join("; "))
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// One Pareto-optimal, audit-validated plan with its serving price and
/// sustainable workload band.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEntry {
    /// The plan itself.
    pub plan: Plan,
    /// Pipeline period `P` (Eq. 10), seconds.
    pub period: f64,
    /// Pipeline latency `T` (Eq. 11), seconds.
    pub latency: f64,
    /// The Theorem 2 stability limit `λ* = 1/p` at the bottleneck
    /// station, tasks/s.
    pub lambda_star: f64,
    /// The sustainable band `[0, saturation_margin · λ*]` this entry
    /// was audited over.
    pub band: WorkloadBand,
    /// Peak per-device resident bytes (weights + activations) across
    /// the cluster.
    pub resident_bytes: usize,
}

impl FleetEntry {
    /// This entry's batch pricing for the serving layer.
    pub fn profile(&self) -> ServiceProfile {
        ServiceProfile {
            latency: self.latency,
            period: self.period,
        }
    }

    /// The kernel's view of this entry.
    pub fn candidate(&self) -> ReplanCandidate {
        ReplanCandidate {
            profile: self.profile(),
            band: self.band,
        }
    }
}

/// The Pareto-optimal plan set for one deployment, plus the audit-gate
/// verdicts for every ordered plan pair.
#[derive(Debug, Clone)]
pub struct FleetFrontier {
    fingerprint: ModelFingerprint,
    signature: ClusterSignature,
    entries: Vec<FleetEntry>,
    switchable: Vec<Vec<bool>>,
}

impl FleetFrontier {
    /// Builds the frontier for `(model, cluster, params)`.
    ///
    /// Sweeps every planner the repo ships (layer-wise, early-fused,
    /// optimal-fused, grid-fused, PICO, and the PICO `T_lim` frontier),
    /// prices each plan with the paper's cost model and the DES station
    /// profiles, derives its sustainable band from Theorem 2, gates it
    /// on `Auditor::audit_deep` over that band, keeps the
    /// `(period, latency, resident)` Pareto set, and precomputes the
    /// `audit_switch_pair` matrix over the survivors.
    pub fn build(
        model: &Model,
        cluster: &Cluster,
        params: &CostParams,
        config: FleetConfig,
    ) -> Result<Self, FleetError> {
        let violations = config.violations();
        if !violations.is_empty() {
            return Err(FleetError::InvalidConfig(violations));
        }
        let cm = params.cost_model(model);
        let sim = Simulation::new(model, cluster, params);
        let request = PlanRequest::new(model, cluster, params);

        let planners: [&dyn Planner; 6] = [
            &LayerWise,
            &EarlyFused::new(),
            &OptimalFused,
            &GridFused::new(),
            &Interleaved,
            &PicoPlanner::new(),
        ];
        let mut plans: Vec<Plan> = planners
            .iter()
            .filter_map(|p| p.plan(&request).ok())
            .collect();
        plans.extend(
            pareto::frontier(model, cluster, params, config.steps)
                .into_iter()
                .map(|point| point.plan),
        );

        let mut entries: Vec<FleetEntry> = Vec::new();
        for plan in plans {
            let metrics = cm.evaluate(&plan, cluster);
            let bottleneck = sim
                .station_profiles(&plan)
                .iter()
                .map(|s| s.service)
                .fold(0.0, f64::max);
            if bottleneck <= 0.0 {
                continue;
            }
            let lambda_star = mdone::max_stable_rate(bottleneck);
            let hi = config.saturation_margin * lambda_star;
            // Audit strictly inside the band edge so the PA303/PA304
            // comparisons cannot trip on the boundary itself.
            let audit_band = WorkloadBand::new(0.0, hi * (1.0 - 1e-6));
            let report = Auditor::new(model, cluster)
                .with_params(*params)
                .with_config(AuditConfig::default().with_workload_band(audit_band))
                .audit_deep(&plan);
            if !report.is_executable() {
                continue;
            }
            let resident_bytes = plan_memory(model, &plan)
                .iter()
                .map(|d| d.total_bytes())
                .max()
                .unwrap_or(0);
            let entry = FleetEntry {
                plan,
                period: metrics.period,
                latency: metrics.latency,
                lambda_star,
                band: WorkloadBand::new(0.0, hi),
                resident_bytes,
            };
            // Exact-duplicate plans (the planner sweep and the T_lim
            // sweep both produce the unconstrained PICO plan).
            let duplicate = entries.iter().any(|e| {
                e.period.to_bits() == entry.period.to_bits()
                    && e.latency.to_bits() == entry.latency.to_bits()
                    && e.resident_bytes == entry.resident_bytes
            });
            if !duplicate {
                entries.push(entry);
            }
        }

        // Pareto filter under (period, latency, resident): drop entries
        // some other entry weakly dominates.
        let dominated = |a: &FleetEntry, b: &FleetEntry| {
            // b dominates a
            b.period <= a.period
                && b.latency <= a.latency
                && b.resident_bytes <= a.resident_bytes
                && (b.period < a.period
                    || b.latency < a.latency
                    || b.resident_bytes < a.resident_bytes)
        };
        let keep: Vec<bool> = entries
            .iter()
            .map(|a| !entries.iter().any(|b| dominated(a, b)))
            .collect();
        let mut entries: Vec<FleetEntry> = entries
            .into_iter()
            .zip(keep)
            .filter_map(|(e, k)| k.then_some(e))
            .collect();
        if entries.is_empty() {
            return Err(FleetError::NoViablePlans);
        }
        // Canonical order: ascending sustainable band, then cheaper
        // latency, then smaller footprint — deterministic for equal
        // inputs, and "cheapest first" within a band.
        entries.sort_by(|a, b| {
            (a.band.hi, a.latency, a.resident_bytes)
                .partial_cmp(&(b.band.hi, b.latency, b.resident_bytes))
                .expect("frontier metrics are finite")
        });

        let auditor = Auditor::new(model, cluster).with_params(*params);
        let switchable: Vec<Vec<bool>> = (0..entries.len())
            .map(|i| {
                (0..entries.len())
                    .map(|j| {
                        i == j
                            || auditor
                                .audit_switch_pair(&entries[i].plan, &entries[j].plan)
                                .is_executable()
                    })
                    .collect()
            })
            .collect();

        Ok(FleetFrontier {
            fingerprint: ModelFingerprint::of(model),
            signature: ClusterSignature::of(cluster),
            entries,
            switchable,
        })
    }

    /// The model fingerprint this frontier was built for.
    pub fn fingerprint(&self) -> ModelFingerprint {
        self.fingerprint
    }

    /// The cluster signature this frontier was built for.
    pub fn signature(&self) -> ClusterSignature {
        self.signature
    }

    /// The Pareto entries, ascending by sustainable band.
    pub fn entries(&self) -> &[FleetEntry] {
        &self.entries
    }

    /// Whether the `PA305`–`PA307` switch audit allows installing entry
    /// `to` while draining entry `from`.
    pub fn switchable(&self, from: usize, to: usize) -> bool {
        self.switchable[from][to]
    }

    /// Index of the cheapest entry: minimum `(latency, period)`.
    pub fn cheapest(&self) -> usize {
        self.min_by_cost(|_| true).expect("frontier is never empty")
    }

    /// Index of the entry sustaining the highest λ (ties: cheaper
    /// first) — the natural initial plan when the workload is unknown.
    pub fn max_throughput(&self) -> usize {
        let mut best = 0;
        for i in 1..self.entries.len() {
            if self.entries[i].band.hi > self.entries[best].band.hi {
                best = i;
            }
        }
        best
    }

    /// Index of the cheapest entry the audit gate allows switching to
    /// from `from` (`None` when `from` is the only reachable plan).
    pub fn swap_target(&self, from: usize) -> Option<usize> {
        self.min_by_cost(|i| i != from && self.switchable[from][i])
    }

    fn min_by_cost(&self, admit: impl Fn(usize) -> bool) -> Option<usize> {
        let mut best: Option<usize> = None;
        for i in 0..self.entries.len() {
            if !admit(i) {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    (self.entries[i].latency, self.entries[i].period)
                        < (self.entries[b].latency, self.entries[b].period)
                }
            };
            if better {
                best = Some(i);
            }
        }
        best
    }

    /// The kernel's candidate table, index-aligned with
    /// [`entries`](Self::entries).
    pub fn candidates(&self) -> Vec<ReplanCandidate> {
        self.entries.iter().map(FleetEntry::candidate).collect()
    }

    /// Builds a [`ReplanKernel`] over this frontier, starting on entry
    /// `initial` — live, replay, and simulated controllers all start
    /// from this same value.
    ///
    /// # Panics
    ///
    /// Panics when `initial` is out of range or `policy` is malformed.
    pub fn kernel(&self, initial: usize, policy: ReplanPolicy) -> ReplanKernel {
        ReplanKernel::new(self.candidates(), self.switchable.clone(), initial, policy)
    }

    /// The frontier as a JSON artifact (schemes, prices, bands,
    /// footprints, and the switch matrix — not the plans themselves).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"model_fingerprint\": \"{:016x}\",\n",
            self.fingerprint.as_u64()
        ));
        out.push_str(&format!(
            "  \"cluster_signature\": \"{:016x}\",\n",
            self.signature.as_u64()
        ));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"scheme\": \"{}\", \"stages\": {}, \"period\": {:.9}, \
                 \"latency\": {:.9}, \"lambda_star\": {:.9}, \"band_hi\": {:.9}, \
                 \"resident_bytes\": {}}}{}\n",
                e.plan.scheme,
                e.plan.stage_count(),
                e.period,
                e.latency,
                e.lambda_star,
                e.band.hi,
                e.resident_bytes,
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"switchable\": [\n");
        for (i, row) in self.switchable.iter().enumerate() {
            let cells: Vec<&str> = row
                .iter()
                .map(|&b| if b { "true" } else { "false" })
                .collect();
            out.push_str(&format!(
                "    [{}]{}\n",
                cells.join(", "),
                if i + 1 < self.switchable.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;

    fn build() -> FleetFrontier {
        let model = zoo::mnist_toy();
        let cluster = Cluster::pi_cluster(4, 1.0);
        let params = CostParams::wifi_50mbps();
        FleetFrontier::build(&model, &cluster, &params, FleetConfig::default()).expect("frontier")
    }

    #[test]
    fn frontier_is_pareto_and_band_sorted() {
        let f = build();
        assert!(!f.entries().is_empty());
        for w in f.entries().windows(2) {
            assert!(w[0].band.hi <= w[1].band.hi);
        }
        // No entry weakly dominates another.
        for a in f.entries() {
            for b in f.entries() {
                if std::ptr::eq(a, b) {
                    continue;
                }
                let dominates = b.period <= a.period
                    && b.latency <= a.latency
                    && b.resident_bytes <= a.resident_bytes
                    && (b.period < a.period
                        || b.latency < a.latency
                        || b.resident_bytes < a.resident_bytes);
                assert!(
                    !dominates,
                    "{:?} dominates {:?}",
                    b.plan.scheme, a.plan.scheme
                );
            }
        }
    }

    #[test]
    fn bands_are_inside_stability_limits() {
        let f = build();
        for e in f.entries() {
            assert!(e.band.hi < e.lambda_star);
            assert!(e.band.lo == 0.0);
            assert!(e.resident_bytes > 0);
            // Eq. 10/11: a pipeline's period never exceeds its latency.
            assert!(e.period <= e.latency + 1e-12);
        }
    }

    #[test]
    fn trade_off_spans_fused_to_pipelined() {
        let f = build();
        let cheap = &f.entries()[f.cheapest()];
        let fast = &f.entries()[f.max_throughput()];
        // The max-throughput plan sustains strictly more than the
        // cheapest-latency plan, which is the whole point of a fleet.
        assert!(fast.band.hi >= cheap.band.hi);
        assert!(f.cheapest() != f.max_throughput() || f.entries().len() == 1);
    }

    #[test]
    fn switch_matrix_is_reflexive_and_kernel_builds() {
        let f = build();
        let n = f.entries().len();
        for i in 0..n {
            assert!(f.switchable(i, i));
        }
        if let Some(t) = f.swap_target(f.max_throughput()) {
            assert_ne!(t, f.max_throughput());
            assert!(f.switchable(f.max_throughput(), t));
        }
        let kernel = f.kernel(f.max_throughput(), pico_sim::ReplanPolicy::default());
        assert_eq!(kernel.candidates().len(), n);
        assert_eq!(kernel.current(), f.max_throughput());
    }

    #[test]
    fn json_artifact_mentions_every_entry() {
        let f = build();
        let json = f.to_json();
        assert!(json.contains("\"entries\""));
        assert!(json.contains("\"switchable\""));
        assert_eq!(
            json.matches("\"scheme\"").count(),
            f.entries().len(),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let model = zoo::mnist_toy();
        let cluster = Cluster::pi_cluster(4, 1.0);
        let params = CostParams::wifi_50mbps();
        let err = FleetFrontier::build(
            &model,
            &cluster,
            &params,
            FleetConfig {
                steps: 0,
                saturation_margin: 1.5,
            },
        )
        .unwrap_err();
        match err {
            FleetError::InvalidConfig(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
