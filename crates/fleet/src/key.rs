//! Canonical cache keys: model fingerprints and cluster signatures.
//!
//! The plan cache must recognize "the same deployment" across
//! independently constructed values, so keys are content hashes rather
//! than pointers: a model hashes its architecture, a cluster hashes its
//! *sorted* device set (two permutations of the same devices are the
//! same cluster — declaration order is an artifact of construction, not
//! a property of the hardware).

use pico_model::Model;
use pico_partition::{Cluster, CostParams};
use pico_sim::WorkloadBand;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Minimal FNV-1a, enough to fingerprint keys without external crates.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Content hash of a model's architecture (name, depth, parameters,
/// FLOPs, input shape). Two structurally identical models collide by
/// design — that is what makes the cache useful.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelFingerprint(u64);

impl ModelFingerprint {
    /// Fingerprints `model`.
    pub fn of(model: &Model) -> Self {
        let mut h = Fnv::new();
        h.write(model.name().as_bytes());
        h.write_u64(model.len() as u64);
        h.write_u64(model.layer_count() as u64);
        h.write_u64(model.parameters() as u64);
        h.write_u64(model.total_flops().to_bits());
        let shape = model.input_shape();
        h.write_u64(shape.channels as u64);
        h.write_u64(shape.height as u64);
        h.write_u64(shape.width as u64);
        ModelFingerprint(h.finish())
    }

    /// The raw 64-bit hash.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

/// Content hash of a cluster's device set, *order-canonical*: devices
/// are sorted by `(id, capacity, alpha)` before hashing, so two
/// permutations of the same devices produce the same signature and hit
/// the same cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterSignature(u64);

impl ClusterSignature {
    /// Signs `cluster`.
    pub fn of(cluster: &Cluster) -> Self {
        let mut rows: Vec<(usize, u64, u64)> = cluster
            .devices()
            .iter()
            .map(|d| (d.id, d.capacity.to_bits(), d.alpha.to_bits()))
            .collect();
        rows.sort_unstable();
        let mut h = Fnv::new();
        h.write_u64(rows.len() as u64);
        for (id, capacity, alpha) in rows {
            h.write_u64(id as u64);
            h.write_u64(capacity);
            h.write_u64(alpha);
        }
        ClusterSignature(h.finish())
    }

    /// The raw 64-bit hash.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

/// Full plan-cache key: deployment identity (model, cluster, cost
/// parameters) plus the workload band the frontier was requested for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The model's architecture fingerprint.
    pub model: ModelFingerprint,
    /// The cluster's order-canonical signature.
    pub cluster: ClusterSignature,
    /// Hash of the [`CostParams`] the frontier was priced with —
    /// different bandwidths or calibration scales are different
    /// deployments.
    pub params_bits: u64,
    /// `band.lo` as raw bits (exact-match keying, no float comparison).
    pub band_lo_bits: u64,
    /// `band.hi` as raw bits.
    pub band_hi_bits: u64,
}

impl CacheKey {
    /// Builds the key for `(model, cluster, params, band)`.
    pub fn new(model: &Model, cluster: &Cluster, params: &CostParams, band: WorkloadBand) -> Self {
        let mut h = Fnv::new();
        h.write_u64(params.bandwidth_bps.to_bits());
        match params.t_lim {
            Some(t) => {
                h.write_u64(1);
                h.write_u64(t.to_bits());
            }
            None => h.write_u64(0),
        }
        h.write_u64(params.alpha_scale.to_bits());
        h.write_u64(params.backend_alpha.to_bits());
        h.write_u64(params.interference.to_bits());
        CacheKey {
            model: ModelFingerprint::of(model),
            cluster: ClusterSignature::of(cluster),
            params_bits: h.finish(),
            band_lo_bits: band.lo.to_bits(),
            band_hi_bits: band.hi.to_bits(),
        }
    }

    /// A stable 64-bit digest of the whole key (shard selection and
    /// display).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write_u64(self.model.as_u64());
        h.write_u64(self.cluster.as_u64());
        h.write_u64(self.params_bits);
        h.write_u64(self.band_lo_bits);
        h.write_u64(self.band_hi_bits);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;
    use pico_partition::Device;

    fn devices() -> Vec<Device> {
        vec![
            Device::from_frequency(0, 1.2),
            Device::from_frequency(1, 0.9),
            Device::from_frequency(2, 1.5).with_alpha(0.8),
            Device::from_frequency(3, 0.6),
        ]
    }

    #[test]
    fn permuted_clusters_share_a_signature() {
        let forward = Cluster::new(devices());
        let mut reversed_devices = devices();
        reversed_devices.reverse();
        let reversed = Cluster::new(reversed_devices);
        assert_eq!(
            ClusterSignature::of(&forward),
            ClusterSignature::of(&reversed)
        );
        let band = WorkloadBand::new(0.0, 3.0);
        let model = zoo::mnist_toy();
        let params = CostParams::default();
        assert_eq!(
            CacheKey::new(&model, &forward, &params, band),
            CacheKey::new(&model, &reversed, &params, band)
        );
    }

    #[test]
    fn different_hardware_changes_the_signature() {
        let base = Cluster::new(devices());
        let mut slower = devices();
        slower[2] = Device::from_frequency(2, 1.4).with_alpha(0.8);
        assert_ne!(
            ClusterSignature::of(&base),
            ClusterSignature::of(&Cluster::new(slower))
        );
        let mut drifted_alpha = devices();
        drifted_alpha[0] = drifted_alpha[0].clone().with_alpha(0.7);
        assert_ne!(
            ClusterSignature::of(&base),
            ClusterSignature::of(&Cluster::new(drifted_alpha))
        );
    }

    #[test]
    fn fingerprint_separates_models_and_bands_separate_keys() {
        let cluster = Cluster::pi_cluster(4, 1.0);
        let a = zoo::mnist_toy();
        let b = zoo::vgg16().features();
        assert_ne!(ModelFingerprint::of(&a), ModelFingerprint::of(&b));
        let params = CostParams::default();
        let k1 = CacheKey::new(&a, &cluster, &params, WorkloadBand::new(0.0, 2.0));
        let k2 = CacheKey::new(&a, &cluster, &params, WorkloadBand::new(0.0, 3.0));
        assert_ne!(k1, k2);
        assert_ne!(k1.digest(), k2.digest());
    }

    #[test]
    fn cost_params_separate_keys() {
        let cluster = Cluster::pi_cluster(4, 1.0);
        let model = zoo::mnist_toy();
        let band = WorkloadBand::point(0.0);
        let base = CacheKey::new(&model, &cluster, &CostParams::new(50e6), band);
        let faster = CacheKey::new(&model, &cluster, &CostParams::new(100e6), band);
        assert_ne!(base, faster);
        let mut scaled = CostParams::new(50e6);
        scaled.alpha_scale = 1.5;
        assert_ne!(base, CacheKey::new(&model, &cluster, &scaled, band));
        // Pricing a faster backend is a different plan space too.
        let vectorized = CostParams::new(50e6).with_backend_speedup(6.0);
        assert_ne!(base, CacheKey::new(&model, &cluster, &vectorized, band));
        // And so is a co-resident (interference-stretched) deployment.
        let shared = CostParams::new(50e6).with_interference(2.0);
        assert_ne!(base, CacheKey::new(&model, &cluster, &shared, band));
    }
}
