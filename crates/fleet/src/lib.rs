//! Fleet planning for PICO: Pareto plan frontiers, a concurrent plan
//! cache, and the glue that lets a serving cluster re-plan itself as
//! the workload drifts.
//!
//! The paper's adaptive scheduler (Sec. IV-C) picks between schemes as
//! the EWMA workload estimate moves; this crate scales that idea from
//! "two precomputed plans inside a simulator" to a serving fleet:
//!
//! * [`FleetFrontier`] — sweep every planner over a `(model, cluster)`
//!   deployment, audit each plan deeply over its own sustainable-λ band
//!   (Theorem 2), keep the Pareto set under
//!   `(period, latency, resident memory)`, and precompute the
//!   `PA305`–`PA307` switch-pair audit matrix over the survivors;
//! * [`PlanCache`] — a sharded, read-optimized map from
//!   [`CacheKey`] (model fingerprint × order-canonical cluster
//!   signature × workload band) to built frontiers, with hit/miss/evict
//!   telemetry and deterministic FIFO eviction;
//! * [`FleetFrontier::kernel`] — the bridge to the re-planning
//!   controller: the same `ReplanKernel` value drives `pico-serve`'s
//!   live path, its deterministic replayer, and `pico-sim`'s
//!   [`FleetSim`](pico_sim::FleetSim) mirror, so all three make
//!   bit-identical switch decisions.
//!
//! # Example
//!
//! ```
//! use pico_fleet::{CacheKey, FleetConfig, FleetFrontier, PlanCache};
//! use pico_model::zoo;
//! use pico_partition::{Cluster, CostParams};
//! use pico_sim::WorkloadBand;
//! use pico_telemetry::Recorder;
//!
//! let model = zoo::mnist_toy();
//! let cluster = Cluster::pi_cluster(4, 1.0);
//! let params = CostParams::wifi_50mbps();
//!
//! let key = CacheKey::new(&model, &cluster, &params, WorkloadBand::point(0.0));
//! let cache = PlanCache::new(16);
//! let frontier = cache.get_or_build(key, &Recorder::noop(), || {
//!     FleetFrontier::build(&model, &cluster, &params, FleetConfig::default())
//! })?;
//! // Every entry carries its price and its sustainable-λ band.
//! assert!(!frontier.entries().is_empty());
//! let fastest = &frontier.entries()[frontier.max_throughput()];
//! assert!(fastest.band.hi > 0.0);
//! # Ok::<(), pico_fleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod frontier;
mod key;

pub use cache::{CacheStats, PlanCache, GLOBAL_CACHE_CAPACITY};
pub use frontier::{FleetConfig, FleetEntry, FleetError, FleetFrontier};
pub use key::{CacheKey, ClusterSignature, ModelFingerprint};
