//! Churn-driven execution: running a task stream while the cluster's
//! membership changes underneath it.
//!
//! A [`ClusterSchedule`] (DESIGN.md §17) slices the stream into
//! *epochs* — maximal runs of tasks over one fixed membership. Inside
//! an epoch only departures happen, and the in-run
//! [`RecoveryPolicy`](pico_runtime::RecoveryPolicy) absorbs them
//! exactly as in [`Pico::execute_resilient`]. At an epoch boundary
//! devices join, rejoin, or change capacity, and the deployment must
//! *re-admit* them: stale plan-cache entries for the old membership are
//! invalidated, a fresh frontier is built (or fetched) for the new
//! membership, and the incoming plan only takes over after the deep
//! audit (PA3xx) and the switch-pair audit (PA305–PA307) both pass —
//! driven through the same [`ReplanKernel`](pico_sim::ReplanKernel)
//! propose → committed/rejected protocol the adaptive serving path
//! uses, so churn-driven swaps cannot bypass the gates λ-driven ones
//! go through.

use pico_audit::Auditor;
use pico_fleet::{CacheKey, ClusterSignature, FleetConfig, FleetFrontier, PlanCache};
use pico_partition::{ChurnError, ClusterSchedule, Plan, Scheme};
use pico_runtime::{FailureSchedule, PipelineRuntime, RecoveryPolicy, RuntimeError};
use pico_sim::{ReplanPolicy, ReplanVerdict, WorkloadBand};
use pico_telemetry::{names, Ctx};
use pico_tensor::Tensor;

use crate::Pico;

/// Why a churn-driven execution could not complete.
#[derive(Debug)]
#[non_exhaustive]
pub enum ChurnRunError {
    /// The schedule itself is illegal against the deployment's cluster
    /// (unknown device, double leave, duplicate join, …).
    Schedule(ChurnError),
    /// No plan frontier could be built over an epoch's membership.
    Planning {
        /// Index of the epoch whose membership could not be planned.
        epoch: usize,
        /// The underlying planner/frontier error.
        detail: String,
    },
    /// The audit gate rejected the epoch's incoming plan or the
    /// switch pair — the re-admission does not happen.
    AuditRejected {
        /// Index of the epoch whose re-plan was rejected.
        epoch: usize,
        /// The rejecting report, rendered.
        detail: String,
    },
    /// The pipeline failed inside an epoch.
    Runtime(RuntimeError),
}

impl std::fmt::Display for ChurnRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnRunError::Schedule(e) => write!(f, "illegal churn schedule: {e}"),
            ChurnRunError::Planning { epoch, detail } => {
                write!(f, "epoch {epoch}: planning failed: {detail}")
            }
            ChurnRunError::AuditRejected { epoch, detail } => {
                write!(
                    f,
                    "epoch {epoch}: audit gate rejected the re-plan: {detail}"
                )
            }
            ChurnRunError::Runtime(e) => write!(f, "churn execution failed: {e}"),
        }
    }
}

impl std::error::Error for ChurnRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChurnRunError::Schedule(e) => Some(e),
            ChurnRunError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChurnError> for ChurnRunError {
    fn from(e: ChurnError) -> Self {
        ChurnRunError::Schedule(e)
    }
}

impl From<RuntimeError> for ChurnRunError {
    fn from(e: RuntimeError) -> Self {
        ChurnRunError::Runtime(e)
    }
}

/// What one churn epoch did.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Global task index the epoch starts at.
    pub start_task: usize,
    /// Tasks executed inside the epoch.
    pub tasks: usize,
    /// Live device ids serving the epoch, ascending.
    pub devices: Vec<usize>,
    /// Devices admitted (join or rejoin) at this epoch's boundary.
    pub admitted: Vec<usize>,
    /// Devices re-provisioned at this epoch's boundary.
    pub resized: Vec<usize>,
    /// Scheme of the plan that served the epoch.
    pub scheme: Scheme,
    /// Whether the boundary re-plan was committed through the kernel's
    /// propose → committed protocol (false for the first epoch and for
    /// boundaries where the membership's best plan needed no switch).
    pub switch_committed: bool,
    /// Scripted departures the in-epoch recovery absorbed.
    pub failures: usize,
}

/// The outcome of executing a task stream under membership churn: the
/// full output set (nothing dropped), plus per-epoch accounting.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Final feature maps for every input task, in submission order.
    pub outputs: Vec<Tensor>,
    /// One record per epoch, in stream order.
    pub epochs: Vec<EpochRecord>,
    /// Plan-cache entries invalidated because their cluster signature
    /// went stale during this run.
    pub cache_invalidations: u64,
}

impl Pico {
    /// Executes `inputs` under the membership churn scripted by
    /// `schedule` (see [`ClusterSchedule::parse`] for the on-disk
    /// grammar).
    ///
    /// Departures inside an epoch are absorbed by the in-run recovery
    /// policy; every re-admission boundary re-plans over the new
    /// membership behind the deep-audit and switch-pair gates, and
    /// invalidates plan-cache entries keyed to the membership that no
    /// longer exists. Outputs are bit-exact with clean single-cluster
    /// inference: churn changes *where* work runs, never its result.
    ///
    /// # Errors
    ///
    /// [`ChurnRunError::Schedule`] for an illegal schedule,
    /// [`ChurnRunError::Planning`] / [`ChurnRunError::AuditRejected`]
    /// when a membership cannot be re-planned cleanly, and
    /// [`ChurnRunError::Runtime`] for in-epoch execution failures.
    pub fn execute_churn(
        &self,
        inputs: Vec<Tensor>,
        seed: u64,
        schedule: &ClusterSchedule,
    ) -> Result<ChurnReport, ChurnRunError> {
        let epochs = schedule.epochs(self.cluster())?;
        let cache = self.plan_cache();
        let mut outputs: Vec<Tensor> = Vec::with_capacity(inputs.len());
        let mut records: Vec<EpochRecord> = Vec::with_capacity(epochs.len());
        let mut invalidations = 0u64;
        let mut prev: Option<(Plan, ClusterSignature)> = None;

        for (e_idx, epoch) in epochs.iter().enumerate() {
            let start = epoch.start_task.min(inputs.len());
            let end = epochs
                .get(e_idx + 1)
                .map_or(inputs.len(), |n| n.start_task)
                .min(inputs.len());

            let key = CacheKey::new(
                self.model(),
                &epoch.cluster,
                &self.params(),
                WorkloadBand::point(0.0),
            );
            let frontier = cache
                .get_or_build(key, self.recorder(), || {
                    FleetFrontier::build(
                        self.model(),
                        &epoch.cluster,
                        &self.params(),
                        FleetConfig::default(),
                    )
                })
                .map_err(|e| ChurnRunError::Planning {
                    epoch: e_idx,
                    detail: e.to_string(),
                })?;

            let to = frontier.max_throughput();
            let plan = frontier.entries()[to].plan.clone();
            let auditor = Auditor::new(self.model(), &epoch.cluster).with_params(self.params());
            let deep = auditor.audit_deep(&plan);
            if !deep.is_executable() {
                return Err(ChurnRunError::AuditRejected {
                    epoch: e_idx,
                    detail: deep.to_string(),
                });
            }

            let mut switch_committed = false;
            if let Some((prev_plan, prev_sig)) = &prev {
                if epoch.needs_replan() {
                    // The old membership no longer exists: any frontier
                    // cached for it would route work to hardware that
                    // is not there.
                    if *prev_sig != frontier.signature() {
                        invalidations += cache.invalidate_stale(*prev_sig, self.recorder());
                    }
                    for &d in &epoch.admitted {
                        self.recorder().instant(
                            names::DEVICE_REJOINED,
                            Ctx::default().on_device(d).for_task(epoch.start_task),
                        );
                    }
                    // PA305–PA307 over the actual outgoing/incoming
                    // pair, then the kernel commit protocol so the
                    // swap follows the same path as a λ-driven one.
                    let pair = auditor.audit_switch_pair(prev_plan, &plan);
                    if !pair.is_executable() {
                        return Err(ChurnRunError::AuditRejected {
                            epoch: e_idx,
                            detail: pair.to_string(),
                        });
                    }
                    let from = frontier
                        .entries()
                        .iter()
                        .position(|en| en.plan.scheme == prev_plan.scheme)
                        .unwrap_or(to);
                    if from != to {
                        let mut kernel = frontier.kernel(from, ReplanPolicy::default());
                        if let ReplanVerdict::Switch { .. } =
                            kernel.propose(to, epoch.start_task as f64)
                        {
                            kernel.committed();
                            switch_committed = true;
                            self.recorder().instant(
                                names::REPLAN_TRIGGERED,
                                Ctx::stage(to).for_task(epoch.start_task),
                            );
                        } else {
                            // The frontier's own switch matrix refuses
                            // the hop even though the direct pair audit
                            // passed — stay conservative and keep the
                            // outgoing scheme's successor.
                            kernel.rejected();
                        }
                    }
                }
            }

            let mut record = EpochRecord {
                start_task: epoch.start_task,
                tasks: end.saturating_sub(start),
                devices: epoch.cluster.devices().iter().map(|d| d.id).collect(),
                admitted: epoch.admitted.clone(),
                resized: epoch.resized.clone(),
                scheme: plan.scheme,
                switch_committed,
                failures: 0,
            };

            if start < end {
                let engine = self.engine(seed);
                let policy = RecoveryPolicy::new(epoch.cluster.clone(), self.params());
                let report = PipelineRuntime::builder(self.model(), &plan, &engine)
                    .recorder(self.recorder().clone())
                    .failure_schedule(FailureSchedule::from_leaves(&epoch.leaves))
                    .recovery(policy)
                    .build()
                    .run(inputs[start..end].to_vec())?;
                record.failures = report.failures.len();
                outputs.extend(report.outputs);
            }
            records.push(record);
            prev = Some((plan, frontier.signature()));
        }

        Ok(ChurnReport {
            outputs,
            epochs: records,
            cache_invalidations: invalidations,
        })
    }

    /// The plan cache churn re-admission works against: the dedicated
    /// cache set by [`Pico::with_plan_cache`], else the process-global
    /// one.
    pub fn plan_cache(&self) -> &PlanCache {
        match self.cache() {
            Some(cache) => cache,
            None => PlanCache::global(),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use pico_model::zoo;
    use pico_partition::Cluster;

    fn deployment(cache: &Arc<PlanCache>) -> Pico {
        Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(4, 1.0)).with_plan_cache(cache.clone())
    }

    fn stream(pico: &Pico, n: usize) -> Vec<Tensor> {
        (0..n)
            .map(|i| Tensor::random(pico.model().input_shape(), 90 + i as u64))
            .collect()
    }

    #[test]
    fn leave_and_rejoin_is_bit_exact_with_clean_inference() {
        let cache = Arc::new(PlanCache::new(64));
        let pico = deployment(&cache);
        let inputs = stream(&pico, 6);
        let clean = {
            let plan = pico.plan().unwrap();
            pico.execute(&plan, inputs.clone(), 7).unwrap().outputs
        };
        let schedule = ClusterSchedule::new().leave(3, 2).rejoin(3, 4);
        let report = pico.execute_churn(inputs, 7, &schedule).unwrap();
        assert_eq!(report.outputs, clean);
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(report.epochs[1].admitted, vec![3]);
        // The rejoin epoch carries no failure entries at all.
        assert_eq!(report.epochs[1].failures, 0);
    }

    #[test]
    fn readmission_invalidates_the_stale_membership() {
        let cache = Arc::new(PlanCache::new(64));
        let pico = deployment(&cache);
        let inputs = stream(&pico, 5);
        let schedule = ClusterSchedule::new().leave(2, 1).rejoin(2, 3);
        let report = pico.execute_churn(inputs, 3, &schedule).unwrap();
        // Epoch 0 runs the full 4-device membership, epoch 1 re-admits
        // device 2 and returns to it: the 4-device frontier is shared,
        // and nothing was planned for the 3-device interlude (leaves
        // are absorbed in-run), so no signature ever goes stale here.
        assert_eq!(report.cache_invalidations, 0);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 1, "{stats:?}");
    }

    #[test]
    fn join_changes_membership_and_invalidates() {
        let cache = Arc::new(PlanCache::new(64));
        let pico = deployment(&cache);
        let inputs = stream(&pico, 6);
        let schedule = ClusterSchedule::new().join(4, 3, 1.0);
        let report = pico.execute_churn(inputs, 11, &schedule).unwrap();
        // The 4-device frontier went stale when device 4 joined.
        assert_eq!(report.cache_invalidations, 1);
        assert_eq!(report.epochs[1].devices, vec![0, 1, 2, 3, 4]);
        let clean = {
            let plan = pico.plan().unwrap();
            pico.execute(&plan, stream(&pico, 6), 11).unwrap().outputs
        };
        assert_eq!(report.outputs, clean);
    }

    #[test]
    fn illegal_schedule_is_a_typed_error() {
        let cache = Arc::new(PlanCache::new(64));
        let pico = deployment(&cache);
        let inputs = stream(&pico, 2);
        let schedule = ClusterSchedule::new().rejoin(1, 1); // never left
        let err = pico.execute_churn(inputs, 1, &schedule).unwrap_err();
        assert!(matches!(err, ChurnRunError::Schedule(_)), "{err}");
        assert!(err.to_string().contains("illegal churn schedule"));
    }
}
