//! High-level facade for PICO cooperative inference.
//!
//! [`Pico`] bundles a model, a cluster, and the environment parameters,
//! and exposes one-call access to everything the workspace can do:
//! planning with any strategy, analytic prediction, queueing simulation,
//! adaptive scheduling, and real threaded execution.
//!
//! # Example
//!
//! ```
//! use pico_core::Pico;
//! use pico_model::zoo;
//! use pico_partition::Cluster;
//! use pico_sim::Arrivals;
//!
//! let pico = Pico::new(zoo::vgg16().features(), Cluster::pi_cluster(8, 1.0));
//! let plan = pico.plan()?;
//! let metrics = pico.predict(&plan);
//!
//! // Simulated saturation run: throughput approaches 1 / period.
//! let report = pico.simulate(&plan, &Arrivals::closed_loop(100));
//! assert!(report.throughput <= 1.0 / metrics.period * 1.01);
//! # Ok::<(), pico_partition::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use pico_fleet::{FleetFrontier, PlanCache};
use pico_model::Model;
use pico_partition::{
    BfsOptimal, Cluster, CostParams, EarlyFused, LayerWise, OptimalFused, PicoPlanner, Plan,
    PlanError, PlanMetrics, PlanRequest, Planner, Scheme,
};
use pico_runtime::{
    FailureSchedule, PipelineRuntime, RecoveryPolicy, RunReport, RuntimeError, Throttle,
};
use pico_serve::{ServeError, ServeHandle, ServeRequest};
use pico_sim::ReplanPolicy;
use pico_sim::{AdaptiveScheduler, Arrivals, SchedulerDecision, SimReport, Simulation};
use pico_telemetry::Recorder;
use pico_tensor::{Engine, EngineBackend, Tensor};

mod churn;

pub use churn::{ChurnReport, ChurnRunError, EpochRecord};

/// One-stop entry point: a model deployed on a cluster under given
/// network conditions.
#[derive(Debug, Clone)]
pub struct Pico {
    model: Model,
    cluster: Cluster,
    params: CostParams,
    recorder: Recorder,
    backend: Option<EngineBackend>,
    threads: usize,
    cache: Option<Arc<PlanCache>>,
}

impl Pico {
    /// Creates a deployment with the paper's default environment
    /// (50 Mbps WiFi, no latency limit).
    pub fn new(model: Model, cluster: Cluster) -> Self {
        Pico {
            model,
            cluster,
            params: CostParams::wifi_50mbps(),
            recorder: Recorder::noop(),
            backend: None,
            threads: 1,
            cache: None,
        }
    }

    /// Uses a dedicated plan cache for churn re-admission instead of
    /// the process-global one — tests and multi-deployment hosts get
    /// exact, isolated hit/miss/invalidation accounting.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The dedicated plan cache, when one was set.
    pub(crate) fn cache(&self) -> Option<&PlanCache> {
        self.cache.as_deref()
    }

    /// Overrides the environment parameters.
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the compute backend every engine this deployment
    /// builds will run (the default is the engine's own default,
    /// [`EngineBackend::Im2colGemm`]).
    pub fn with_backend(mut self, backend: EngineBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the per-engine worker-thread count for GEMM macro-block
    /// parallelism (default 1 — no pool).
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builds a synthetic-weight engine for this deployment, applying
    /// the configured backend and thread count.
    fn engine(&self, seed: u64) -> Engine<'_> {
        let mut engine = Engine::with_seed(&self.model, seed);
        if let Some(backend) = self.backend {
            engine = engine.with_backend(backend);
        }
        if self.threads > 1 {
            engine = engine.with_threads(self.threads);
        }
        engine
    }

    /// Attaches a telemetry recorder: every plan, simulation, and
    /// execution made through this deployment emits structured events
    /// into it. The default is [`Recorder::noop`], which costs nothing.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The attached telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The deployed model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The environment parameters.
    pub fn params(&self) -> CostParams {
        self.params
    }

    /// The configured backend override, if any.
    pub fn backend(&self) -> Option<EngineBackend> {
        self.backend
    }

    /// The configured per-engine worker-thread count.
    pub fn engine_threads(&self) -> usize {
        self.threads
    }

    /// Plans with the paper's PICO pipeline strategy.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::LatencyInfeasible`] when a configured
    /// `T_lim` cannot be met.
    pub fn plan(&self) -> Result<Plan, PlanError> {
        self.plan_with(&PicoPlanner)
    }

    /// Plans with an arbitrary strategy.
    ///
    /// # Errors
    ///
    /// Propagates the planner's error.
    pub fn plan_with<P: Planner>(&self, planner: &P) -> Result<Plan, PlanError> {
        let req = PlanRequest::new(&self.model, &self.cluster, &self.params)
            .with_recorder(self.recorder.clone());
        planner.plan(&req)
    }

    /// Plans with every strategy the paper compares (LW, EFL, OFL,
    /// PICO), skipping any that fail. BFS is excluded — it is only
    /// tractable on toy models; use [`Pico::plan_with`] and
    /// [`BfsOptimal`] explicitly for those.
    pub fn plan_all(&self) -> Vec<Plan> {
        let planners: Vec<Box<dyn Planner>> = vec![
            Box::new(LayerWise::new()),
            Box::new(EarlyFused::new()),
            Box::new(OptimalFused::new()),
            Box::new(PicoPlanner::new()),
        ];
        planners
            .iter()
            .filter_map(|p| self.plan_with(p).ok())
            .collect()
    }

    /// Analytic period/latency prediction (Eqs. 10/11) for a plan.
    pub fn predict(&self, plan: &Plan) -> PlanMetrics {
        self.params
            .cost_model(&self.model)
            .evaluate(plan, &self.cluster)
    }

    /// Simulates a plan over an arrival stream.
    pub fn simulate(&self, plan: &Plan, arrivals: &Arrivals) -> SimReport {
        Simulation::new(&self.model, &self.cluster, &self.params)
            .with_recorder(self.recorder.clone())
            .run(plan, arrivals)
    }

    /// Runs APICO: the adaptive scheduler picking between the PICO
    /// pipeline and the OFL one-stage scheme per the estimated workload
    /// (EWMA window `window` seconds, smoothing `beta`).
    ///
    /// # Errors
    ///
    /// Propagates planning errors for either candidate.
    pub fn run_adaptive(
        &self,
        arrivals: &Arrivals,
        window: f64,
        beta: f64,
    ) -> Result<(SimReport, Vec<SchedulerDecision>), PlanError> {
        let pico = self.plan()?;
        let ofl = self.plan_with(&OptimalFused::new())?;
        let sim = Simulation::new(&self.model, &self.cluster, &self.params)
            .with_recorder(self.recorder.clone());
        let mut sched = AdaptiveScheduler::new(&sim, vec![pico, ofl], window, beta);
        Ok(sched.run(&sim, arrivals))
    }

    /// Executes a plan for real on threads, with synthetic weights from
    /// `seed`, and checks nothing — outputs are whatever the engine
    /// computes (use [`Pico::execute_verified`] to compare against
    /// single-device inference).
    ///
    /// # Errors
    ///
    /// Propagates runtime failures (bad input, failed device).
    pub fn execute(
        &self,
        plan: &Plan,
        inputs: Vec<Tensor>,
        seed: u64,
    ) -> Result<RunReport, RuntimeError> {
        let engine = self.engine(seed);
        PipelineRuntime::builder(&self.model, plan, &engine)
            .recorder(self.recorder.clone())
            .build()
            .run(inputs)
    }

    /// Executes a plan with cost-model-proportional throttling, making
    /// relative stage times observable on a development machine.
    ///
    /// # Errors
    ///
    /// Propagates runtime failures.
    pub fn execute_throttled(
        &self,
        plan: &Plan,
        inputs: Vec<Tensor>,
        seed: u64,
        scale: f64,
    ) -> Result<RunReport, RuntimeError> {
        let engine = self.engine(seed);
        let throttle = Throttle::new(self.cluster.clone(), self.params, scale);
        PipelineRuntime::builder(&self.model, plan, &engine)
            .recorder(self.recorder.clone())
            .throttle(throttle)
            .build()
            .run(inputs)
    }

    /// Executes a plan and verifies every output equals single-device
    /// inference, returning the report on success.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError::Tensor`] wrapping the mismatch when the
    /// pipeline diverges (which would indicate a bug in split/stitch),
    /// or any runtime failure.
    pub fn execute_verified(
        &self,
        plan: &Plan,
        inputs: Vec<Tensor>,
        seed: u64,
    ) -> Result<RunReport, RuntimeError> {
        let engine = self.engine(seed);
        let report = PipelineRuntime::builder(&self.model, plan, &engine)
            .recorder(self.recorder.clone())
            .build()
            .run(inputs.clone())?;
        for (i, input) in inputs.iter().enumerate() {
            let reference = engine.infer(input)?;
            if report.outputs[i] != reference {
                return Err(RuntimeError::Tensor(
                    pico_tensor::TensorError::StitchMismatch {
                        detail: format!(
                        "task {i}: pipelined output diverges from single-device inference by {}",
                        report.outputs[i].max_abs_diff(&reference)
                    ),
                    },
                ));
            }
        }
        Ok(report)
    }

    /// Human-readable description of a plan.
    pub fn describe(&self, plan: &Plan) -> String {
        let metrics = self.predict(plan);
        let mut out = format!(
            "{} plan: {} stage(s), period {:.3}s ({:.2} tasks/s), latency {:.3}s\n",
            plan.scheme,
            plan.stage_count(),
            metrics.period,
            metrics.throughput(),
            metrics.latency,
        );
        for (i, stage) in plan.stages.iter().enumerate() {
            let cost = &metrics.stage_costs[i];
            let names: Vec<String> = stage
                .assignments
                .iter()
                .filter(|a| !a.rows.is_empty())
                .map(|a| format!("d{}:{}", a.device, a.rows))
                .collect();
            out.push_str(&format!(
                "  stage {i}: units {} | comp {:.3}s + comm {:.3}s | {}\n",
                stage.segment,
                cost.comp,
                cost.comm,
                names.join(" ")
            ));
        }
        out
    }

    /// Executes with failure recovery: if a device dies mid-run
    /// (surfacing as [`RuntimeError::DeviceFailed`]), the deployment
    /// re-plans on the surviving devices and retries the whole batch,
    /// until it succeeds or no devices remain.
    ///
    /// `known_failed` seeds the exclusion list (e.g. from a health
    /// monitor); `inject_failures` marks devices that will fail when
    /// used — the test/chaos hook.
    ///
    /// Returns the successful report, the plan that finally worked, and
    /// the ids excluded along the way.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::EmptyPlan`]-style planning failures wrapped
    /// as [`RuntimeError::DeviceFailed`] context when the cluster runs
    /// out of devices, or any non-failure runtime error as-is.
    pub fn execute_with_recovery(
        &self,
        inputs: Vec<Tensor>,
        seed: u64,
        known_failed: &[usize],
        inject_failures: &[usize],
    ) -> Result<(RunReport, Plan, Vec<usize>), RuntimeError> {
        let engine = self.engine(seed);
        let mut excluded: Vec<usize> = known_failed.to_vec();
        loop {
            let Some(cluster) = self.cluster.without(&excluded) else {
                return Err(RuntimeError::DeviceFailed {
                    device: *excluded.last().unwrap_or(&0),
                    task: 0,
                    cause: "no devices left to re-plan on".to_owned(),
                });
            };
            let plan = PicoPlanner
                .plan(&PlanRequest::new(&self.model, &cluster, &self.params))
                .map_err(|e| RuntimeError::DeviceFailed {
                    device: *excluded.last().unwrap_or(&0),
                    task: 0,
                    cause: format!("re-planning failed: {e}"),
                })?;
            let mut builder = PipelineRuntime::builder(&self.model, &plan, &engine)
                .recorder(self.recorder.clone());
            for f in inject_failures {
                if !excluded.contains(f) {
                    builder = builder.failed_device(*f);
                }
            }
            match builder.build().run(inputs.clone()) {
                Ok(report) => return Ok((report, plan, excluded)),
                Err(RuntimeError::DeviceFailed { device, .. }) => {
                    excluded.push(device);
                }
                // A multi-device outage excludes every casualty in one
                // round instead of burning a re-plan per device.
                Err(RuntimeError::Multiple { errors })
                    if errors
                        .iter()
                        .all(|e| matches!(e, RuntimeError::DeviceFailed { .. })) =>
                {
                    for e in &errors {
                        if let RuntimeError::DeviceFailed { device, .. } = e {
                            if !excluded.contains(device) {
                                excluded.push(*device);
                            }
                        }
                    }
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Executes a plan with **in-run** fault tolerance: the scripted
    /// `schedule` injects device failures mid-stream, and a
    /// [`RecoveryPolicy`] detects them, retries the dead worker's shard
    /// on survivors of the same stage, and re-plans the pipeline over
    /// the surviving cluster when a stage loses every worker — without
    /// restarting the tasks already completed (contrast with
    /// [`Pico::execute_with_recovery`], which re-runs the whole batch).
    ///
    /// The report carries [`RunReport::failures`] (every device declared
    /// dead, with the task it died on) and [`RunReport::degraded_plan`]
    /// (the re-planned pipeline, if one was installed).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RecoveryFailed`] when re-planning over
    /// the survivors is impossible (e.g. the cluster is exhausted), or
    /// any non-failure runtime error as-is.
    pub fn execute_resilient(
        &self,
        plan: &Plan,
        inputs: Vec<Tensor>,
        seed: u64,
        schedule: FailureSchedule,
    ) -> Result<RunReport, RuntimeError> {
        let engine = self.engine(seed);
        let policy = RecoveryPolicy::new(self.cluster.clone(), self.params);
        PipelineRuntime::builder(&self.model, plan, &engine)
            .recorder(self.recorder.clone())
            .failure_schedule(schedule)
            .recovery(policy)
            .build()
            .run(inputs)
    }

    /// Traces the period/latency Pareto frontier (Eq. 1's trade-off)
    /// with `steps` latency-limit samples.
    pub fn frontier(&self, steps: usize) -> Vec<pico_partition::pareto::FrontierPoint> {
        pico_partition::pareto::frontier(&self.model, &self.cluster, &self.params, steps)
    }

    /// Starts a live multi-tenant serving front-end on this deployment,
    /// initially running the PICO pipeline plan. Tasks are submitted
    /// through the returned [`ServeHandle`]; plans can be warm-swapped
    /// (audit-gated, drain-first) while it runs.
    ///
    /// The deployment's recorder (see [`Pico::with_recorder`]) receives
    /// the serving telemetry; a recorder set on `request` is ignored.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a malformed request config,
    /// [`ServeError::Planning`] when the initial plan cannot be built.
    pub fn serve(&self, request: &ServeRequest) -> Result<ServeHandle, ServeError> {
        let plan = self.plan().map_err(|e| ServeError::Planning {
            detail: e.to_string(),
        })?;
        let request = request.clone().with_recorder(self.recorder.clone());
        ServeHandle::spawn(
            self.model.clone(),
            self.cluster.clone(),
            self.params,
            plan,
            &request,
        )
    }

    /// The deployment's Pareto plan frontier, fetched from (or built
    /// into) the process-global fleet plan cache: every audit-validated
    /// plan with its price, sustainable-λ band, and the precomputed
    /// switch-audit matrix.
    ///
    /// # Errors
    ///
    /// [`ServeError::Planning`] when no candidate plan survives the
    /// deep audit for this deployment.
    pub fn fleet_frontier(&self) -> Result<Arc<FleetFrontier>, ServeError> {
        pico_serve::fleet_frontier(&self.model, &self.cluster, &self.params, &self.recorder)
    }

    /// Starts a live **self-re-planning** serving front-end: serving
    /// begins on the fleet frontier's cheapest entry, and the
    /// hysteresis kernel switches plans (audit-gated, drain-first) as
    /// the admitted-arrival λ estimate drifts.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a malformed request config or
    /// policy, [`ServeError::Planning`] when the frontier cannot be
    /// built.
    pub fn serve_adaptive(
        &self,
        request: &ServeRequest,
        policy: ReplanPolicy,
    ) -> Result<ServeHandle, ServeError> {
        let frontier = self.fleet_frontier()?;
        let request = request
            .clone()
            .with_recorder(self.recorder.clone())
            .with_adaptive(frontier, policy);
        ServeHandle::spawn_adaptive(
            self.model.clone(),
            self.cluster.clone(),
            self.params,
            &request,
        )
    }

    /// Convenience: the exhaustive-optimal planner for toy models.
    pub fn bfs_planner() -> BfsOptimal {
        BfsOptimal::new()
    }

    /// The scheme labels the paper compares, in its order.
    pub fn paper_schemes() -> [Scheme; 4] {
        [
            Scheme::LayerWise,
            Scheme::EarlyFused,
            Scheme::OptimalFused,
            Scheme::Pico,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;

    fn deployment() -> Pico {
        Pico::new(zoo::vgg16().features(), Cluster::pi_cluster(8, 1.0))
    }

    #[test]
    fn plan_and_predict() {
        let pico = deployment();
        let plan = pico.plan().unwrap();
        let metrics = pico.predict(&plan);
        assert!(metrics.period > 0.0 && metrics.period <= metrics.latency);
    }

    #[test]
    fn plan_all_yields_four_schemes() {
        let plans = deployment().plan_all();
        assert_eq!(plans.len(), 4);
        let schemes: Vec<Scheme> = plans.iter().map(|p| p.scheme).collect();
        assert_eq!(schemes, Pico::paper_schemes());
    }

    #[test]
    fn simulate_headline_comparison() {
        // PICO throughput beats each one-stage scheme on 8 devices.
        let pico = deployment();
        let plans = pico.plan_all();
        let arrivals = Arrivals::closed_loop(64);
        let mut by_scheme = std::collections::HashMap::new();
        for plan in &plans {
            by_scheme.insert(plan.scheme, pico.simulate(plan, &arrivals).throughput);
        }
        let pico_tp = by_scheme[&Scheme::Pico];
        for s in [Scheme::LayerWise, Scheme::EarlyFused, Scheme::OptimalFused] {
            assert!(
                pico_tp > by_scheme[&s],
                "{s}: {} vs {}",
                by_scheme[&s],
                pico_tp
            );
        }
    }

    #[test]
    fn adaptive_runs() {
        let pico = deployment();
        let ofl = pico.plan_with(&OptimalFused::new()).unwrap();
        let period = pico.predict(&ofl).period;
        let arrivals = Arrivals::poisson(0.5 / period, 200.0 * period, 11);
        let (report, decisions) = pico.run_adaptive(&arrivals, 5.0 * period, 0.4).unwrap();
        assert!(report.completed > 0);
        assert!(!decisions.is_empty());
    }

    #[test]
    fn execute_verified_small_model() {
        let pico = Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(3, 1.0));
        let plan = pico.plan().unwrap();
        let inputs = vec![Tensor::random(pico.model().input_shape(), 5)];
        let report = pico.execute_verified(&plan, inputs, 77).unwrap();
        assert_eq!(report.outputs.len(), 1);
    }

    #[test]
    fn backend_override_flows_through_facade_bit_exactly() {
        let base = Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(3, 1.0));
        let plan = base.plan().unwrap();
        let inputs = vec![Tensor::random(base.model().input_shape(), 41)];
        let reference = base.execute(&plan, inputs.clone(), 23).unwrap();
        // SIMD (threaded) preserves the scalar addition chains, so the
        // facade-level override must be bit-identical end to end.
        let simd = base
            .clone()
            .with_backend(EngineBackend::Simd)
            .with_engine_threads(2);
        assert_eq!(simd.backend(), Some(EngineBackend::Simd));
        assert_eq!(simd.engine_threads(), 2);
        let report = simd.execute(&plan, inputs, 23).unwrap();
        assert_eq!(report.outputs, reference.outputs);
    }

    #[test]
    fn recovery_replans_around_failed_devices() {
        let pico = Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(4, 1.0));
        let inputs = vec![Tensor::random(pico.model().input_shape(), 3)];
        // Healthy run for the reference output.
        let healthy = pico.plan().unwrap();
        let reference = pico.execute(&healthy, inputs.clone(), 9).unwrap();
        // Kill whichever device serves the first stage.
        let victim = healthy.stages[0].assignments[0].device;
        let (report, plan, excluded) = pico
            .execute_with_recovery(inputs, 9, &[], &[victim])
            .unwrap();
        assert!(excluded.contains(&victim));
        assert!(!plan.used_devices().contains(&victim));
        assert_eq!(report.outputs[0], reference.outputs[0]);
    }

    #[test]
    fn recovery_gives_up_when_cluster_exhausted() {
        let pico = Pico::new(zoo::toy(2), Cluster::pi_cluster(2, 1.0));
        let inputs = vec![Tensor::random(pico.model().input_shape(), 1)];
        let err = pico
            .execute_with_recovery(inputs, 1, &[], &[0, 1])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::DeviceFailed { .. }));
    }

    #[test]
    fn resilient_execution_survives_mid_stream_failure() {
        let pico = Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(4, 1.0));
        let plan = pico.plan().unwrap();
        let inputs: Vec<Tensor> = (0..4)
            .map(|i| Tensor::random(pico.model().input_shape(), 60 + i))
            .collect();
        let reference = pico.execute(&plan, inputs.clone(), 13).unwrap();
        // Kill a stage-0 device after it served the first task.
        let victim = plan.stages[0].assignments[0].device;
        let report = pico
            .execute_resilient(&plan, inputs, 13, FailureSchedule::new().fail(victim, 1))
            .unwrap();
        assert_eq!(report.outputs, reference.outputs);
        assert!(report.failures.iter().any(|f| f.device == victim));
    }

    #[test]
    fn recovery_honors_known_failures_upfront() {
        let pico = Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(4, 1.0));
        let inputs = vec![Tensor::random(pico.model().input_shape(), 2)];
        let (_, plan, _) = pico.execute_with_recovery(inputs, 5, &[2], &[]).unwrap();
        assert!(!plan.used_devices().contains(&2));
    }

    #[test]
    fn recorder_observes_plan_and_execution() {
        let rec = Recorder::in_memory();
        let pico =
            Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(3, 1.0)).with_recorder(rec.clone());
        let plan = pico.plan().unwrap();
        let inputs = vec![Tensor::random(pico.model().input_shape(), 8)];
        pico.execute(&plan, inputs, 8).unwrap();
        let events = rec.snapshot();
        use pico_telemetry::names;
        assert!(events.iter().any(|e| e.name == names::PLAN));
        assert!(events.iter().any(|e| e.name == names::STAGE_BUSY));
        assert!(events.iter().any(|e| e.name == names::COMPUTE));
        assert!(events.iter().any(|e| e.name == names::TASKS_COMPLETED));
    }

    #[test]
    fn fleet_frontier_is_cached_and_nonempty() {
        let pico = Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(4, 1.0));
        let a = pico.fleet_frontier().unwrap();
        let b = pico.fleet_frontier().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert!(!a.entries().is_empty());
    }

    #[test]
    fn serve_adaptive_serves_without_drops() {
        let pico = Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(4, 1.0));
        let handle = pico
            .serve_adaptive(&ServeRequest::new(), ReplanPolicy::default())
            .unwrap();
        let input = Tensor::random(pico.model().input_shape(), 21);
        let tickets: Vec<_> = (0..6)
            .map(|_| handle.submit(0, input.clone()).unwrap())
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let outcome = handle.shutdown().unwrap();
        assert_eq!(outcome.per_tenant[0].completed, 6);
        assert_eq!(outcome.per_tenant[0].rejected, 0);
    }

    #[test]
    fn describe_mentions_stages_and_devices() {
        let pico = deployment();
        let plan = pico.plan().unwrap();
        let text = pico.describe(&plan);
        assert!(text.contains("PICO plan"));
        assert!(text.contains("stage 0"));
        assert!(text.contains("d"));
    }

    #[test]
    fn frontier_through_facade() {
        let pico = deployment();
        let points = pico.frontier(8);
        assert!(!points.is_empty());
        assert!(points
            .windows(2)
            .all(|w| w[1].latency <= w[0].latency + 1e-9));
    }

    #[test]
    fn t_lim_flows_through_builder() {
        let pico = deployment();
        let base = pico.predict(&pico.plan().unwrap());
        let constrained = pico
            .clone()
            .with_params(CostParams::wifi_50mbps().with_t_lim(base.latency * 2.0));
        let plan = constrained.plan().unwrap();
        assert!(constrained.predict(&plan).latency <= base.latency * 2.0 + 1e-9);
    }
}
