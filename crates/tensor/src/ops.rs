//! Region-aware compute kernels.
//!
//! Every kernel computes an arbitrary **global** output region (row and
//! column ranges) from an input *tile* (a rectangular slice that
//! remembers its global offsets). Running the same kernel on the full
//! map, on row strips, or on grid tiles performs the identical
//! per-element arithmetic in the identical order, which is what makes
//! split-compute-stitch bit-exact for both 1-D (PICO) and 2-D
//! (DeepThings-style) partitioning.

use pico_model::{ConvSpec, PoolKind, PoolSpec, Region2, Shape};

use crate::{LayerWeights, Tensor, TensorError};

/// Checks the tile covers the region a receptive field needs.
pub(crate) fn require_region(tile: &Tensor, required: Region2) -> Result<(), TensorError> {
    if tile.region().contains(required) {
        Ok(())
    } else {
        Err(TensorError::MissingHalo {
            required: required.rows,
            available: tile.rows(),
        })
    }
}

/// The input region a (kernel, stride, padding) op needs for output
/// region `out`, clamped to the global input map.
pub(crate) fn receptive(
    out: Region2,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    in_shape: Shape,
) -> Region2 {
    let axis = |o: pico_model::Rows, k: usize, s: usize, p: usize, n: usize| {
        if o.is_empty() {
            return pico_model::Rows::empty();
        }
        let start = (o.start * s).saturating_sub(p).min(n);
        let end = ((o.end - 1) * s + k).saturating_sub(p).min(n);
        pico_model::Rows::new(start, end.max(start))
    };
    Region2::new(
        axis(out.rows, kernel.0, stride.0, padding.0, in_shape.height),
        axis(out.cols, kernel.1, stride.1, padding.1, in_shape.width),
    )
}

/// Convolution (+ ReLU) over output region `out` of the global output
/// map. `in_shape` is the full global input shape (padding bounds); the
/// tile must cover the receptive field of `out`.
pub(crate) fn conv_region(
    input: &Tensor,
    in_shape: Shape,
    spec: &ConvSpec,
    weights: &LayerWeights,
    out: Region2,
    relu: bool,
) -> Result<Tensor, TensorError> {
    if input.shape().channels != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "conv".to_owned(),
            expected: Shape::new(spec.in_channels, in_shape.height, in_shape.width),
            found: input.shape(),
        });
    }
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    require_region(
        input,
        receptive(out, spec.kernel, spec.stride, spec.padding, in_shape),
    )?;

    // Grouped convolution: output channel `oc` reads input channels
    // [group * in_per_group, (group + 1) * in_per_group) where
    // group = oc / (out_channels / groups). Dense conv is groups = 1.
    let in_per_group = spec.in_per_group();
    let out_per_group = spec.out_channels / spec.groups;
    let mut data = Vec::with_capacity(spec.out_channels * out.area());
    for oc in 0..spec.out_channels {
        let ic_base = (oc / out_per_group) * in_per_group;
        for r in out.rows.iter() {
            for col in out.cols.iter() {
                let mut acc = weights.bias[oc];
                for ic in 0..in_per_group {
                    for kr in 0..kh {
                        // Global input row; skip rows in the zero padding.
                        let gr = (r * sh + kr).wrapping_sub(ph);
                        if gr >= in_shape.height {
                            continue;
                        }
                        for kc in 0..kw {
                            let gc = (col * sw + kc).wrapping_sub(pw);
                            if gc >= in_shape.width {
                                continue;
                            }
                            let w = weights.kernel[((oc * in_per_group + ic) * kh + kr) * kw + kc];
                            acc += w * input.at_global(ic_base + ic, gr, gc);
                        }
                    }
                }
                data.push(if relu { acc.max(0.0) } else { acc });
            }
        }
    }
    Tensor::from_parts(
        Shape::new(spec.out_channels, out.rows.len(), out.cols.len()),
        out.rows.start,
        out.cols.start,
        data,
    )
}

/// Pooling over output region `out` of the global output map.
pub(crate) fn pool_region(
    input: &Tensor,
    in_shape: Shape,
    spec: &PoolSpec,
    out: Region2,
) -> Result<Tensor, TensorError> {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let c = input.shape().channels;
    require_region(
        input,
        receptive(out, spec.kernel, spec.stride, spec.padding, in_shape),
    )?;

    let mut data = Vec::with_capacity(c * out.area());
    for ch in 0..c {
        for r in out.rows.iter() {
            for col in out.cols.iter() {
                let value = match spec.kind {
                    PoolKind::Max => {
                        let mut best = f32::NEG_INFINITY;
                        for kr in 0..kh {
                            let gr = (r * sh + kr).wrapping_sub(ph);
                            if gr >= in_shape.height {
                                continue;
                            }
                            for kc in 0..kw {
                                let gc = (col * sw + kc).wrapping_sub(pw);
                                if gc >= in_shape.width {
                                    continue;
                                }
                                best = best.max(input.at_global(ch, gr, gc));
                            }
                        }
                        if best == f32::NEG_INFINITY {
                            0.0
                        } else {
                            best
                        }
                    }
                    PoolKind::Avg => {
                        // Padding counts as zero (fixed divisor), the
                        // common `count_include_pad` convention.
                        let mut sum = 0.0;
                        for kr in 0..kh {
                            let gr = (r * sh + kr).wrapping_sub(ph);
                            if gr >= in_shape.height {
                                continue;
                            }
                            for kc in 0..kw {
                                let gc = (col * sw + kc).wrapping_sub(pw);
                                if gc >= in_shape.width {
                                    continue;
                                }
                                sum += input.at_global(ch, gr, gc);
                            }
                        }
                        sum / (kh * kw) as f32
                    }
                };
                data.push(value);
            }
        }
    }
    Tensor::from_parts(
        Shape::new(c, out.rows.len(), out.cols.len()),
        out.rows.start,
        out.cols.start,
        data,
    )
}

/// Fully-connected layer (+ ReLU) on the flattened input. Requires the
/// complete input map (FC layers cannot be partitioned spatially).
pub(crate) fn fc_full(
    input: &Tensor,
    in_features: usize,
    out_features: usize,
    weights: &LayerWeights,
    relu: bool,
) -> Result<Tensor, TensorError> {
    if input.shape().elements() != in_features || input.row0() != 0 || input.col0() != 0 {
        return Err(TensorError::ShapeMismatch {
            op: "fc".to_owned(),
            expected: Shape::new(in_features, 1, 1),
            found: input.shape(),
        });
    }
    let x = input.data();
    let mut data = Vec::with_capacity(out_features);
    for o in 0..out_features {
        let mut acc = weights.bias[o];
        let row = &weights.kernel[o * in_features..(o + 1) * in_features];
        for (w, v) in row.iter().zip(x) {
            acc += w * v;
        }
        data.push(if relu { acc.max(0.0) } else { acc });
    }
    Tensor::from_parts(Shape::new(out_features, 1, 1), 0, 0, data)
}

/// Element-wise addition of tiles covering identical global regions.
pub(crate) fn add(tiles: &[Tensor]) -> Result<Tensor, TensorError> {
    let first = tiles.first().ok_or(TensorError::Empty)?;
    let mut out = first.clone();
    for t in &tiles[1..] {
        if t.shape() != first.shape() || t.region() != first.region() {
            return Err(TensorError::StitchMismatch {
                detail: format!(
                    "add requires identical tiles, got {} @{} vs {} @{}",
                    t.shape(),
                    t.region(),
                    first.shape(),
                    first.region()
                ),
            });
        }
        for (o, v) in out.data_mut().iter_mut().zip(t.data()) {
            *o += v;
        }
    }
    Ok(out)
}

/// Channel-wise concatenation of tiles covering identical global regions.
pub(crate) fn concat_channels(tiles: &[Tensor]) -> Result<Tensor, TensorError> {
    let first = tiles.first().ok_or(TensorError::Empty)?;
    let region = first.region();
    let (h, w) = (first.shape().height, first.shape().width);
    let mut channels = 0;
    for t in tiles {
        if t.shape().height != h || t.shape().width != w || t.region() != region {
            return Err(TensorError::StitchMismatch {
                detail: "concat requires equal spatial dims and offsets".to_owned(),
            });
        }
        channels += t.shape().channels;
    }
    let mut data = Vec::with_capacity(channels * h * w);
    for t in tiles {
        data.extend_from_slice(t.data());
    }
    Tensor::from_parts(
        Shape::new(channels, h, w),
        region.rows.start,
        region.cols.start,
        data,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::{ConvSpec, Rows};

    fn tensor(shape: Shape, vals: &[f32]) -> Tensor {
        Tensor::from_vec(shape, vals.to_vec()).unwrap()
    }

    fn full(shape: Shape) -> Region2 {
        Region2::full(shape.height, shape.width)
    }

    #[test]
    fn conv_1x1_identity() {
        let input = tensor(Shape::new(1, 2, 2), &[1.0, 2.0, 3.0, 4.0]);
        let spec = ConvSpec::pointwise(1, 1);
        let w = LayerWeights {
            kernel: vec![1.0],
            bias: vec![0.0],
        };
        let out =
            conv_region(&input, input.shape(), &spec, &w, full(input.shape()), false).unwrap();
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv_3x3_hand_computed() {
        // 3x3 all-ones kernel over a 3x3 all-ones input, padding 1:
        // center sees 9 ones, edges 6, corners 4.
        let input = tensor(Shape::new(1, 3, 3), &[1.0; 9]);
        let spec = ConvSpec::square(1, 1, 3, 1, 1);
        let w = LayerWeights {
            kernel: vec![1.0; 9],
            bias: vec![0.0],
        };
        let out =
            conv_region(&input, input.shape(), &spec, &w, full(input.shape()), false).unwrap();
        assert_eq!(out.data(), &[4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    #[test]
    fn depthwise_conv_keeps_channels_independent() {
        // 2-channel depthwise 1x1 with per-channel weights 2 and 3:
        // channels scale independently, never mix.
        let input = tensor(Shape::new(2, 1, 2), &[1.0, 2.0, /* ch1 */ 10.0, 20.0]);
        let mut spec = ConvSpec::depthwise(2, 1, 1, 0);
        spec.kernel = (1, 1);
        let w = LayerWeights {
            kernel: vec![2.0, 3.0],
            bias: vec![0.0, 0.0],
        };
        let out =
            conv_region(&input, input.shape(), &spec, &w, full(input.shape()), false).unwrap();
        assert_eq!(out.data(), &[2.0, 4.0, 30.0, 60.0]);
    }

    #[test]
    fn grouped_conv_reads_only_its_group() {
        // 4 in channels, 2 out channels, 2 groups: out0 reads in0..2,
        // out1 reads in2..4.
        let input = tensor(Shape::new(4, 1, 1), &[1.0, 2.0, 4.0, 8.0]);
        let spec = ConvSpec {
            in_channels: 4,
            out_channels: 2,
            kernel: (1, 1),
            stride: (1, 1),
            padding: (0, 0),
            groups: 2,
        };
        let w = LayerWeights {
            kernel: vec![1.0, 1.0, 1.0, 1.0],
            bias: vec![0.0, 0.0],
        };
        let out =
            conv_region(&input, input.shape(), &spec, &w, full(input.shape()), false).unwrap();
        assert_eq!(out.data(), &[3.0, 12.0]);
    }

    #[test]
    fn conv_row_strip_matches_full() {
        let input = Tensor::random(Shape::new(2, 8, 6), 3);
        let spec = ConvSpec::square(2, 3, 3, 1, 1);
        let w = LayerWeights {
            kernel: (0..(3 * 2 * 9)).map(|i| (i as f32) * 0.01 - 0.2).collect(),
            bias: vec![0.1, -0.1, 0.0],
        };
        let full_out =
            conv_region(&input, input.shape(), &spec, &w, full(input.shape()), true).unwrap();
        let tile = input.slice_rows(Rows::new(2, 7)).unwrap();
        let region = Region2::new(Rows::new(3, 6), Rows::full(6));
        let part = conv_region(&tile, input.shape(), &spec, &w, region, true).unwrap();
        for c in 0..3 {
            for r in 3..6 {
                for col in 0..6 {
                    assert_eq!(part.at_global(c, r, col), full_out.at(c, r, col));
                }
            }
        }
    }

    #[test]
    fn conv_grid_tile_matches_full() {
        // A 2-D tile with halo on all four sides is bit-identical to
        // the full map.
        let input = Tensor::random(Shape::new(2, 10, 10), 4);
        let spec = ConvSpec::square(2, 2, 3, 1, 1);
        let w = LayerWeights {
            kernel: (0..(2 * 2 * 9)).map(|i| (i as f32) * 0.02 - 0.3).collect(),
            bias: vec![0.05, -0.05],
        };
        let full_out =
            conv_region(&input, input.shape(), &spec, &w, full(input.shape()), true).unwrap();
        let out_region = Region2::new(Rows::new(3, 7), Rows::new(4, 9));
        let need = Region2::new(Rows::new(2, 8), Rows::new(3, 10));
        let tile = input.slice_region(need).unwrap();
        let part = conv_region(&tile, input.shape(), &spec, &w, out_region, true).unwrap();
        for c in 0..2 {
            for r in 3..7 {
                for col in 4..9 {
                    assert_eq!(part.at_global(c, r, col), full_out.at(c, r, col));
                }
            }
        }
    }

    #[test]
    fn conv_missing_halo_errors() {
        let input = Tensor::random(Shape::new(1, 8, 4), 0);
        let tile = input.slice_rows(Rows::new(4, 8)).unwrap();
        let spec = ConvSpec::square(1, 1, 3, 1, 1);
        let w = LayerWeights {
            kernel: vec![0.0; 9],
            bias: vec![0.0],
        };
        // Rows 2..4 need input rows 1..5; the tile starts at 4.
        let region = Region2::new(Rows::new(2, 4), Rows::full(4));
        assert!(matches!(
            conv_region(&tile, input.shape(), &spec, &w, region, false),
            Err(TensorError::MissingHalo { .. })
        ));
    }

    #[test]
    fn conv_missing_col_halo_errors() {
        let input = Tensor::random(Shape::new(1, 6, 8), 0);
        let tile = input
            .slice_region(Region2::new(Rows::full(6), Rows::new(4, 8)))
            .unwrap();
        let spec = ConvSpec::square(1, 1, 3, 1, 1);
        let w = LayerWeights {
            kernel: vec![0.0; 9],
            bias: vec![0.0],
        };
        let region = Region2::new(Rows::new(1, 3), Rows::new(2, 4));
        assert!(conv_region(&tile, input.shape(), &spec, &w, region, false).is_err());
    }

    #[test]
    fn strided_conv_shapes() {
        let input = Tensor::random(Shape::new(1, 9, 9), 1);
        let spec = ConvSpec::square(1, 2, 3, 2, 0);
        let w = LayerWeights {
            kernel: vec![0.5; 2 * 9],
            bias: vec![0.0, 0.0],
        };
        let region = Region2::new(Rows::new(0, 4), Rows::new(0, 4));
        let out = conv_region(&input, input.shape(), &spec, &w, region, false).unwrap();
        assert_eq!(out.shape(), Shape::new(2, 4, 4));
    }

    #[test]
    fn max_pool_hand_computed() {
        let input = tensor(
            Shape::new(1, 4, 4),
            &[
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let spec = PoolSpec::max(2, 2);
        let region = Region2::new(Rows::new(0, 2), Rows::new(0, 2));
        let out = pool_region(&input, input.shape(), &spec, region).unwrap();
        assert_eq!(out.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn avg_pool_counts_padding_as_zero() {
        let input = tensor(Shape::new(1, 2, 2), &[4.0, 4.0, 4.0, 4.0]);
        let spec = PoolSpec {
            kind: PoolKind::Avg,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        };
        let out = pool_region(&input, input.shape(), &spec, full(input.shape())).unwrap();
        // Corner window sees four 4.0s of nine slots.
        assert!((out.at(0, 0, 0) - 16.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn pool_grid_tile_matches_full() {
        let input = Tensor::random(Shape::new(3, 10, 8), 5);
        let spec = PoolSpec::max(2, 2);
        let full_out = pool_region(
            &input,
            input.shape(),
            &spec,
            Region2::new(Rows::new(0, 5), Rows::new(0, 4)),
        )
        .unwrap();
        let region = Region2::new(Rows::new(2, 5), Rows::new(1, 4));
        let need = Region2::new(Rows::new(4, 10), Rows::new(2, 8));
        let tile = input.slice_region(need).unwrap();
        let part = pool_region(&tile, input.shape(), &spec, region).unwrap();
        for c in 0..3 {
            for r in 2..5 {
                for col in 1..4 {
                    assert_eq!(part.at_global(c, r, col), full_out.at(c, r, col));
                }
            }
        }
    }

    #[test]
    fn fc_hand_computed() {
        let input = tensor(Shape::new(4, 1, 1), &[1.0, 2.0, 3.0, 4.0]);
        let w = LayerWeights {
            kernel: vec![1.0, 0.0, 0.0, 0.0, /* row 2 */ 0.25, 0.25, 0.25, 0.25],
            bias: vec![0.0, 1.0],
        };
        let out = fc_full(&input, 4, 2, &w, false).unwrap();
        assert_eq!(out.data(), &[1.0, 3.5]);
    }

    #[test]
    fn fc_rejects_partial_input() {
        let input = Tensor::random(Shape::new(1, 8, 1), 0);
        let tile = input.slice_rows(Rows::new(2, 8)).unwrap();
        let w = LayerWeights {
            kernel: vec![0.0; 8],
            bias: vec![0.0],
        };
        assert!(fc_full(&tile, 8, 1, &w, false).is_err());
    }

    #[test]
    fn add_and_concat() {
        let a = tensor(Shape::new(1, 2, 2), &[1.0, 2.0, 3.0, 4.0]);
        let b = tensor(Shape::new(1, 2, 2), &[10.0, 20.0, 30.0, 40.0]);
        let sum = add(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(sum.data(), &[11.0, 22.0, 33.0, 44.0]);
        let cat = concat_channels(&[a, b]).unwrap();
        assert_eq!(cat.shape(), Shape::new(2, 2, 2));
        assert_eq!(cat.data()[4..], [10.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn add_rejects_offset_mismatch() {
        let base = Tensor::random(Shape::new(1, 6, 2), 0);
        let a = base.slice_rows(Rows::new(0, 2)).unwrap();
        let b = base.slice_rows(Rows::new(2, 4)).unwrap();
        assert!(add(&[a, b]).is_err());
    }

    #[test]
    fn relu_clamps_negatives() {
        let input = tensor(Shape::new(1, 1, 2), &[1.0, -1.0]);
        let spec = ConvSpec::pointwise(1, 1);
        let w = LayerWeights {
            kernel: vec![1.0],
            bias: vec![0.0],
        };
        let out = conv_region(&input, input.shape(), &spec, &w, full(input.shape()), true).unwrap();
        assert_eq!(out.data(), &[1.0, 0.0]);
    }
}
