use pico_model::{Region2, Rows, Shape};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::TensorError;

/// A dense CHW `f32` tensor (one sample; no batch dimension).
///
/// Feature maps are indexed `(channel, row, column)`; PICO partitions
/// along rows, so [`Tensor::slice_rows`] / [`Tensor::stitch_rows`] are
/// the primitive split/stitch operations of the paper's Fig. 6 workflow.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    /// The first global row this tensor represents (0 for whole maps;
    /// the tile offset for row slices).
    row0: usize,
    /// The first global column this tensor represents (0 for whole maps
    /// and row strips; the tile offset for grid tiles).
    col0: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            row0: 0,
            col0: 0,
            data: vec![0.0; shape.elements()],
        }
    }

    /// Creates a tensor from raw CHW data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] when `data.len()` does not
    /// match `shape.elements()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.elements() {
            return Err(TensorError::DataLength {
                expected: shape.elements(),
                found: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            row0: 0,
            col0: 0,
            data,
        })
    }

    /// Creates a tensor from raw CHW data plus its global offsets —
    /// the kernel-output constructor (the filled buffer becomes the
    /// tensor with no intermediate copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] when `data.len()` does not
    /// match `shape.elements()`.
    pub(crate) fn from_parts(
        shape: Shape,
        row0: usize,
        col0: usize,
        data: Vec<f32>,
    ) -> Result<Self, TensorError> {
        if data.len() != shape.elements() {
            return Err(TensorError::DataLength {
                expected: shape.elements(),
                found: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            row0,
            col0,
            data,
        })
    }

    /// Creates a deterministic pseudo-random tensor (uniform in
    /// `[-1, 1]`) — synthetic sensor input for tests and examples.
    pub fn random(shape: Shape, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor {
            shape,
            row0: 0,
            col0: 0,
            data: (0..shape.elements())
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The global row index of this tensor's first row (non-zero for
    /// row tiles).
    pub fn row0(&self) -> usize {
        self.row0
    }

    /// The global column index of this tensor's first column (non-zero
    /// for grid tiles).
    pub fn col0(&self) -> usize {
        self.col0
    }

    /// Global columns covered by this tensor.
    pub fn cols(&self) -> Rows {
        Rows::new(self.col0, self.col0 + self.shape.width)
    }

    /// The global rectangular region this tensor covers.
    pub fn region(&self) -> Region2 {
        Region2::new(self.rows(), self.cols())
    }

    /// Global rows covered by this tensor.
    pub fn rows(&self) -> Rows {
        Rows::new(self.row0, self.row0 + self.shape.height)
    }

    /// Read access to the raw CHW data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw CHW data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at (channel, **local** row, column).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn at(&self, c: usize, r: usize, col: usize) -> f32 {
        debug_assert!(c < self.shape.channels && r < self.shape.height && col < self.shape.width);
        self.data[(c * self.shape.height + r) * self.shape.width + col]
    }

    /// Sets the element at (channel, **local** row, column).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, c: usize, r: usize, col: usize, v: f32) {
        debug_assert!(c < self.shape.channels && r < self.shape.height && col < self.shape.width);
        self.data[(c * self.shape.height + r) * self.shape.width + col] = v;
    }

    /// Element at (channel, **global** row, column), where the global
    /// row is relative to the full feature map this tile was cut from.
    ///
    /// # Panics
    ///
    /// Panics if the global row is outside this tile.
    #[inline]
    pub fn at_global(&self, c: usize, global_row: usize, global_col: usize) -> f32 {
        debug_assert!(
            global_row >= self.row0 && global_row < self.row0 + self.shape.height,
            "global row {global_row} outside tile rows {:?}",
            self.rows()
        );
        debug_assert!(
            global_col >= self.col0 && global_col < self.col0 + self.shape.width,
            "global col {global_col} outside tile cols {:?}",
            self.cols()
        );
        self.at(c, global_row - self.row0, global_col - self.col0)
    }

    /// Extracts global rows `rows` as a new tile that remembers its
    /// offset (the scatter half of split/stitch).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RowsOutOfRange`] when `rows` is not fully
    /// inside this tensor.
    pub fn slice_rows(&self, rows: Rows) -> Result<Tensor, TensorError> {
        self.slice_region(Region2::new(rows, self.cols()))
    }

    /// Extracts the global region `region` as a new tile that remembers
    /// both offsets (grid scatter).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RowsOutOfRange`] when `region` is not
    /// fully inside this tensor.
    pub fn slice_region(&self, region: Region2) -> Result<Tensor, TensorError> {
        if !self.region().contains(region) {
            return Err(TensorError::RowsOutOfRange {
                rows: if self.rows().contains(region.rows) {
                    region.cols
                } else {
                    region.rows
                },
                available: if self.rows().contains(region.rows) {
                    self.cols()
                } else {
                    self.rows()
                },
            });
        }
        let c = self.shape.channels;
        let (h, w) = (region.rows.len(), region.cols.len());
        let mut data = Vec::with_capacity(c * h * w);
        for ch in 0..c {
            for r in region.rows.iter() {
                let local_r = r - self.row0;
                let local_c = region.cols.start - self.col0;
                let base = (ch * self.shape.height + local_r) * self.shape.width + local_c;
                data.extend_from_slice(&self.data[base..base + w]);
            }
        }
        Ok(Tensor {
            shape: Shape::new(c, h, w),
            row0: region.rows.start,
            col0: region.cols.start,
            data,
        })
    }

    /// Concatenates row tiles back into one contiguous map (the gather
    /// half of split/stitch). Tiles must be contiguous in row order and
    /// agree on channels/width; empty tiles are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::StitchMismatch`] on gaps, overlaps, or
    /// shape disagreement, and [`TensorError::Empty`] for no tiles.
    pub fn stitch_rows(tiles: &[Tensor]) -> Result<Tensor, TensorError> {
        let parts: Vec<&Tensor> = tiles.iter().filter(|t| t.shape.height > 0).collect();
        let first = parts.first().ok_or(TensorError::Empty)?;
        let (c, w) = (first.shape.channels, first.shape.width);
        let mut cursor = first.row0;
        let mut total_h = 0usize;
        for t in &parts {
            if t.col0 != first.col0 {
                return Err(TensorError::StitchMismatch {
                    detail: format!("tile col offset {} disagrees with {}", t.col0, first.col0),
                });
            }
            if t.shape.channels != c || t.shape.width != w {
                return Err(TensorError::StitchMismatch {
                    detail: format!("tile shape {} disagrees with {}x_x{w}", t.shape, c),
                });
            }
            if t.row0 != cursor {
                return Err(TensorError::StitchMismatch {
                    detail: format!("tile starts at row {} but cover reached {cursor}", t.row0),
                });
            }
            cursor += t.shape.height;
            total_h += t.shape.height;
        }
        let shape = Shape::new(c, total_h, w);
        let mut out = Tensor::zeros(shape);
        out.row0 = first.row0;
        out.col0 = first.col0;
        for ch in 0..c {
            let mut offset = 0usize;
            for t in &parts {
                let src = &t.data[ch * t.shape.height * w..(ch + 1) * t.shape.height * w];
                let dst_base = (ch * total_h + offset) * w;
                out.data[dst_base..dst_base + src.len()].copy_from_slice(src);
                offset += t.shape.height;
            }
        }
        Ok(out)
    }

    /// Concatenates column tiles (same rows, contiguous columns) into
    /// one band.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::StitchMismatch`] on gaps, overlaps, or
    /// row disagreement, and [`TensorError::Empty`] for no tiles.
    pub fn stitch_cols(tiles: &[Tensor]) -> Result<Tensor, TensorError> {
        let parts: Vec<&Tensor> = tiles.iter().filter(|t| t.shape.width > 0).collect();
        let first = parts.first().ok_or(TensorError::Empty)?;
        let (c, h) = (first.shape.channels, first.shape.height);
        let mut cursor = first.col0;
        let mut total_w = 0usize;
        for t in &parts {
            if t.shape.channels != c || t.shape.height != h || t.row0 != first.row0 {
                return Err(TensorError::StitchMismatch {
                    detail: format!(
                        "tile {} @r{} disagrees with {}x{h}x_ @r{}",
                        t.shape, t.row0, c, first.row0
                    ),
                });
            }
            if t.col0 != cursor {
                return Err(TensorError::StitchMismatch {
                    detail: format!("tile starts at col {} but cover reached {cursor}", t.col0),
                });
            }
            cursor += t.shape.width;
            total_w += t.shape.width;
        }
        let mut out = Tensor::zeros(Shape::new(c, h, total_w));
        out.row0 = first.row0;
        out.col0 = first.col0;
        for ch in 0..c {
            for r in 0..h {
                let mut offset = 0usize;
                for t in &parts {
                    let w = t.shape.width;
                    let src = &t.data[(ch * h + r) * w..(ch * h + r + 1) * w];
                    let dst = (ch * h + r) * total_w + offset;
                    out.data[dst..dst + w].copy_from_slice(src);
                    offset += w;
                }
            }
        }
        Ok(out)
    }

    /// Reassembles a row-major grid of tiles (`grid_cols` tiles per row
    /// band) into one map: each band is stitched along columns, then the
    /// bands along rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::StitchMismatch`] when the tiles do not
    /// tile a rectangle, and [`TensorError::Empty`] for no tiles.
    pub fn stitch_grid(tiles: &[Tensor], grid_cols: usize) -> Result<Tensor, TensorError> {
        if tiles.is_empty() || grid_cols == 0 {
            return Err(TensorError::Empty);
        }
        if !tiles.len().is_multiple_of(grid_cols) {
            return Err(TensorError::StitchMismatch {
                detail: format!("{} tiles do not form rows of {grid_cols}", tiles.len()),
            });
        }
        let bands: Vec<Tensor> = tiles
            .chunks(grid_cols)
            .map(Tensor::stitch_cols)
            .collect::<Result<_, _>>()?;
        Tensor::stitch_rows(&bands)
    }

    /// Reassembles arbitrary rectangular tiles into one map: tiles are
    /// sorted by (row, col) offset, grouped into row bands, each band
    /// stitched along columns, then the bands along rows. Works for row
    /// strips (each its own band) and regular grids alike.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::StitchMismatch`] when the tiles do not
    /// tile a rectangle, and [`TensorError::Empty`] for no tiles.
    pub fn stitch_tiles(tiles: &[Tensor]) -> Result<Tensor, TensorError> {
        let mut parts: Vec<&Tensor> = tiles
            .iter()
            .filter(|t| t.shape.height > 0 && t.shape.width > 0)
            .collect();
        if parts.is_empty() {
            return Err(TensorError::Empty);
        }
        parts.sort_by_key(|t| (t.row0, t.col0));
        let mut bands: Vec<Tensor> = Vec::new();
        let mut band: Vec<Tensor> = Vec::new();
        let mut band_row = parts[0].row0;
        for t in parts {
            if t.row0 != band_row && !band.is_empty() {
                bands.push(Tensor::stitch_cols(&band)?);
                band.clear();
                band_row = t.row0;
            }
            band.push(t.clone());
        }
        if !band.is_empty() {
            bands.push(Tensor::stitch_cols(&band)?);
        }
        Tensor::stitch_rows(&bands)
    }

    /// Flattens to a CHW-ordered vector (consumes the tensor).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(c: usize, h: usize, w: usize) -> Tensor {
        let shape = Shape::new(c, h, w);
        Tensor::from_vec(shape, (0..shape.elements()).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(matches!(
            Tensor::from_vec(Shape::new(1, 2, 2), vec![0.0; 3]),
            Err(TensorError::DataLength {
                expected: 4,
                found: 3
            })
        ));
    }

    #[test]
    fn indexing_is_chw() {
        let t = seq_tensor(2, 3, 4);
        assert_eq!(t.at(0, 0, 0), 0.0);
        assert_eq!(t.at(0, 1, 2), 6.0);
        assert_eq!(t.at(1, 0, 0), 12.0);
    }

    #[test]
    fn slice_rows_keeps_offset() {
        let t = seq_tensor(2, 6, 3);
        let s = t.slice_rows(Rows::new(2, 5)).unwrap();
        assert_eq!(s.shape(), Shape::new(2, 3, 3));
        assert_eq!(s.row0(), 2);
        assert_eq!(s.at(0, 0, 0), t.at(0, 2, 0));
        assert_eq!(s.at_global(0, 2, 0), t.at(0, 2, 0));
        assert_eq!(s.at(1, 2, 2), t.at(1, 4, 2));
    }

    #[test]
    fn slice_rows_rejects_out_of_range() {
        let t = seq_tensor(1, 4, 2);
        assert!(t.slice_rows(Rows::new(2, 6)).is_err());
    }

    #[test]
    fn slice_of_slice_uses_global_rows() {
        let t = seq_tensor(1, 10, 2);
        let a = t.slice_rows(Rows::new(3, 9)).unwrap();
        let b = a.slice_rows(Rows::new(5, 7)).unwrap();
        assert_eq!(b.row0(), 5);
        assert_eq!(b.at(0, 0, 1), t.at(0, 5, 1));
    }

    #[test]
    fn stitch_roundtrips_split() {
        let t = seq_tensor(3, 8, 5);
        let parts: Vec<Tensor> = [Rows::new(0, 3), Rows::new(3, 4), Rows::new(4, 8)]
            .iter()
            .map(|r| t.slice_rows(*r).unwrap())
            .collect();
        assert_eq!(Tensor::stitch_rows(&parts).unwrap(), t);
    }

    #[test]
    fn stitch_rejects_gap() {
        let t = seq_tensor(1, 8, 2);
        let parts = vec![
            t.slice_rows(Rows::new(0, 3)).unwrap(),
            t.slice_rows(Rows::new(4, 8)).unwrap(),
        ];
        assert!(matches!(
            Tensor::stitch_rows(&parts),
            Err(TensorError::StitchMismatch { .. })
        ));
    }

    #[test]
    fn stitch_rejects_channel_mismatch() {
        let a = seq_tensor(1, 2, 2);
        let b = seq_tensor(2, 2, 2);
        assert!(Tensor::stitch_rows(&[a, b]).is_err());
    }

    #[test]
    fn stitch_skips_empty_tiles() {
        let t = seq_tensor(1, 4, 2);
        let parts = vec![
            t.slice_rows(Rows::new(0, 2)).unwrap(),
            t.slice_rows(Rows::new(2, 2)).unwrap(),
            t.slice_rows(Rows::new(2, 4)).unwrap(),
        ];
        assert_eq!(Tensor::stitch_rows(&parts).unwrap(), t);
    }

    #[test]
    fn stitch_empty_list_errors() {
        assert!(matches!(Tensor::stitch_rows(&[]), Err(TensorError::Empty)));
    }

    #[test]
    fn random_is_deterministic() {
        let a = Tensor::random(Shape::new(2, 3, 3), 9);
        let b = Tensor::random(Shape::new(2, 3, 3), 9);
        let c = Tensor::random(Shape::new(2, 3, 3), 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn slice_region_keeps_both_offsets() {
        let t = seq_tensor(2, 6, 5);
        let r = t
            .slice_region(Region2::new(Rows::new(1, 4), Rows::new(2, 5)))
            .unwrap();
        assert_eq!(r.shape(), Shape::new(2, 3, 3));
        assert_eq!((r.row0(), r.col0()), (1, 2));
        assert_eq!(r.at(0, 0, 0), t.at(0, 1, 2));
        assert_eq!(r.at_global(1, 3, 4), t.at(1, 3, 4));
    }

    #[test]
    fn slice_region_rejects_out_of_bounds_cols() {
        let t = seq_tensor(1, 4, 4);
        assert!(t
            .slice_region(Region2::new(Rows::new(0, 2), Rows::new(2, 6)))
            .is_err());
    }

    #[test]
    fn grid_roundtrips_through_stitch_grid() {
        let t = seq_tensor(3, 9, 8);
        let regions = pico_model::grid_split_even(9, 8, 3, 2);
        let tiles: Vec<Tensor> = regions
            .iter()
            .map(|r| t.slice_region(*r).unwrap())
            .collect();
        let back = Tensor::stitch_grid(&tiles, 2).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn stitch_cols_rejects_row_mismatch() {
        let t = seq_tensor(1, 6, 6);
        let a = t
            .slice_region(Region2::new(Rows::new(0, 3), Rows::new(0, 3)))
            .unwrap();
        let b = t
            .slice_region(Region2::new(Rows::new(3, 6), Rows::new(3, 6)))
            .unwrap();
        assert!(Tensor::stitch_cols(&[a, b]).is_err());
    }

    #[test]
    fn stitch_grid_rejects_ragged_input() {
        let t = seq_tensor(1, 4, 4);
        let a = t.slice_rows(Rows::new(0, 2)).unwrap();
        let b = t.slice_rows(Rows::new(2, 4)).unwrap();
        let c = t.slice_rows(Rows::new(2, 4)).unwrap();
        assert!(matches!(
            Tensor::stitch_grid(&[a, b, c], 2),
            Err(TensorError::StitchMismatch { .. })
        ));
    }

    #[test]
    fn stitch_tiles_handles_strips_and_grids_and_shuffles() {
        let t = seq_tensor(2, 12, 9);
        // Grid, deliberately out of order.
        let mut tiles: Vec<Tensor> = pico_model::grid_split_even(12, 9, 3, 3)
            .into_iter()
            .map(|r| t.slice_region(r).unwrap())
            .collect();
        tiles.reverse();
        tiles.swap(1, 5);
        assert_eq!(Tensor::stitch_tiles(&tiles).unwrap(), t);
        // Strips.
        let strips: Vec<Tensor> = pico_model::rows_split_even(Rows::full(12), 4)
            .into_iter()
            .map(|r| t.slice_rows(r).unwrap())
            .collect();
        assert_eq!(Tensor::stitch_tiles(&strips).unwrap(), t);
    }

    #[test]
    fn max_abs_diff_zero_for_identical() {
        let a = seq_tensor(2, 2, 2);
        assert_eq!(a.max_abs_diff(&a.clone()), 0.0);
    }
}
