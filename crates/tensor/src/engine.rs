use std::sync::Arc;

use pico_model::{Block, LayerKind, Merge, Model, Region2, Rows, Segment, Shape, Unit};

use crate::ops;
use crate::pool::ThreadPool;
use crate::scratch::{self, Exec, Scratch};
use crate::weights::{QuantizedLayer, QuantizedNetwork, QuantizedUnit};
use crate::{LayerWeights, NetworkWeights, Tensor, TensorError, UnitWeights};

/// Selects the compute kernels an [`Engine`] runs.
///
/// The f32 backends produce identical tensors for every layer, region,
/// and error case — `Reference` is the bit-exactness oracle,
/// `Im2colGemm` the portable production path, `Simd` the explicitly
/// vectorized one (bit-identical by preserving per-lane addition
/// chains; see `simd.rs`). `Int8` trades bit-exactness versus f32 for
/// integer arithmetic: it is deterministic and bit-exactly
/// *self*-consistent across region splits, but only tolerance-close to
/// `Reference` (the differential suite in
/// `tests/backend_equivalence.rs` holds all four together).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineBackend {
    /// The naive direct loops in `ops.rs`, kept verbatim as the oracle.
    Reference,
    /// im2col lowering + cache-blocked GEMM with scratch-buffer reuse.
    #[default]
    Im2colGemm,
    /// `Im2colGemm` with the runtime-detected vectorized micro-kernel
    /// (AVX2 `f32x8`; portable scalar fallback elsewhere). Bit-identical
    /// to `Reference`.
    Simd,
    /// Per-channel symmetric int8 GEMM with i32 accumulation and static
    /// calibration-time activation scales. Tolerance-gated versus the
    /// f32 oracle.
    Int8,
}

impl EngineBackend {
    /// Every backend, for differential test matrices.
    pub const ALL: [EngineBackend; 4] = [
        EngineBackend::Reference,
        EngineBackend::Im2colGemm,
        EngineBackend::Simd,
        EngineBackend::Int8,
    ];

    /// The backends that are bit-identical to `Reference` on every
    /// input — i.e. all f32 backends. `Int8` is excluded: it carries a
    /// documented tolerance instead.
    pub const BIT_EXACT: [EngineBackend; 3] = [
        EngineBackend::Reference,
        EngineBackend::Im2colGemm,
        EngineBackend::Simd,
    ];

    /// Parses the CLI/display name of a backend.
    pub fn parse(name: &str) -> Option<EngineBackend> {
        match name {
            "reference" => Some(EngineBackend::Reference),
            "im2col" => Some(EngineBackend::Im2colGemm),
            "simd" => Some(EngineBackend::Simd),
            "int8" => Some(EngineBackend::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for EngineBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineBackend::Reference => write!(f, "reference"),
            EngineBackend::Im2colGemm => write!(f, "im2col"),
            EngineBackend::Simd => write!(f, "simd"),
            EngineBackend::Int8 => write!(f, "int8"),
        }
    }
}

/// Executes a model (or any contiguous segment / row region of it) with
/// concrete weights — the per-device compute step of the Fig. 6
/// stage workflow.
///
/// Monolithic inference ([`Engine::infer`]) is implemented as a region
/// inference over the full output, so partitioned and monolithic
/// execution share every line of arithmetic; stitching per-device
/// outputs reproduces the single-device result bit-exactly. This holds
/// under either [`EngineBackend`]; the fast default additionally reuses
/// caller-provided [`Scratch`] buffers
/// ([`Engine::infer_region2_with`]).
#[derive(Debug, Clone)]
pub struct Engine<'m> {
    model: &'m Model,
    weights: Arc<NetworkWeights>,
    backend: EngineBackend,
    /// Int8 weights, built lazily the first time the backend switches
    /// to `Int8` and shared by clones/forks from then on.
    quant: Option<Arc<QuantizedNetwork>>,
    /// Intra-shard GEMM thread pool (`with_threads`), shared by clones.
    pool: Option<Arc<ThreadPool>>,
}

impl<'m> Engine<'m> {
    /// Creates an engine from explicit weights, with the default
    /// (`Im2colGemm`) backend.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WeightMismatch`] when the weights do not
    /// cover the model's units.
    pub fn new(model: &'m Model, weights: NetworkWeights) -> Result<Self, TensorError> {
        if weights.len() != model.len() {
            return Err(TensorError::WeightMismatch {
                detail: format!(
                    "weights cover {} units, model has {}",
                    weights.len(),
                    model.len()
                ),
            });
        }
        Ok(Engine {
            model,
            weights: Arc::new(weights),
            backend: EngineBackend::default(),
            quant: None,
            pool: None,
        })
    }

    /// Creates an engine with synthetic seeded weights and the default
    /// (`Im2colGemm`) backend.
    pub fn with_seed(model: &'m Model, seed: u64) -> Self {
        Engine {
            model,
            weights: Arc::new(NetworkWeights::generate(model, seed)),
            backend: EngineBackend::default(),
            quant: None,
            pool: None,
        }
    }

    /// Returns this engine with its compute backend switched.
    ///
    /// Switching to [`EngineBackend::Int8`] quantizes the weights once
    /// (per-channel symmetric scales plus a deterministic calibration
    /// forward pass for static activation scales); clones and
    /// [`Engine::fork_backend`] forks share the result.
    pub fn with_backend(mut self, backend: EngineBackend) -> Self {
        self.backend = backend;
        if backend == EngineBackend::Int8 && self.quant.is_none() {
            // The model validated its own shapes at construction and
            // `new` checked weight coverage, so the calibration pass
            // cannot fail.
            let q = QuantizedNetwork::quantize(self.model, &self.weights)
                .expect("validated model and weights quantize cleanly");
            self.quant = Some(Arc::new(q));
        }
        self
    }

    /// Returns this engine with an intra-shard GEMM thread pool of
    /// `threads` total participants (1 disables parallelism). Results
    /// are bit-identical for every thread count: parallel chunks are
    /// disjoint output rows, never a cross-thread reduction.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = if threads > 1 {
            Some(Arc::new(ThreadPool::new(threads)))
        } else {
            None
        };
        self
    }

    /// A cheap engine fork sharing this engine's weights (and thread
    /// pool) but dispatching to `backend` — how the pipeline runtime
    /// gives each worker its own backend without duplicating weights.
    pub fn fork_backend(&self, backend: EngineBackend) -> Engine<'m> {
        self.clone().with_backend(backend)
    }

    /// The compute backend this engine dispatches to.
    pub fn backend(&self) -> EngineBackend {
        self.backend
    }

    /// Thread-pool width (1 when no pool is attached).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.threads())
    }

    /// The quantized weights, present once the backend has been
    /// switched to `Int8`.
    pub fn quantized(&self) -> Option<&QuantizedNetwork> {
        self.quant.as_deref()
    }

    /// The model this engine executes.
    pub fn model(&self) -> &'m Model {
        self.model
    }

    /// The engine's weights.
    pub fn weights(&self) -> &NetworkWeights {
        &self.weights
    }

    /// Whole-model inference on a full input map.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the first incompatible layer.
    pub fn infer(&self, input: &Tensor) -> Result<Tensor, TensorError> {
        let seg = self.model.full_segment();
        let h = self.model.output_shape().height;
        self.infer_region(seg, Rows::full(h), input)
    }

    /// Full-height inference of one segment from its full input map.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches from the first incompatible layer.
    pub fn infer_segment(&self, seg: Segment, input: &Tensor) -> Result<Tensor, TensorError> {
        let h = self.model.unit_output_shape(seg.end - 1).height;
        self.infer_region(seg, Rows::full(h), input)
    }

    /// Computes global output rows `out_rows` of segment `seg` from an
    /// input tile (full-width strip partitioning, the paper's scheme).
    ///
    /// The tile may be the full segment input or any row slice of it
    /// that covers the receptive field
    /// ([`Model::segment_input_rows`]); tiles remember their global
    /// offset, so scatter → compute → gather works with plain
    /// [`Tensor::slice_rows`] / [`Tensor::stitch_rows`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MissingHalo`] when the tile lacks required
    /// rows and [`TensorError::ShapeMismatch`] on channel/width
    /// disagreement.
    pub fn infer_region(
        &self,
        seg: Segment,
        out_rows: Rows,
        input: &Tensor,
    ) -> Result<Tensor, TensorError> {
        self.model
            .check_segment(seg)
            .map_err(|_| TensorError::WeightMismatch {
                detail: format!("segment {seg} out of bounds"),
            })?;
        let out_shape = self.model.unit_output_shape(seg.end - 1);
        self.infer_region2(
            seg,
            Region2::new(out_rows, Rows::full(out_shape.width)),
            input,
        )
    }

    /// Computes a rectangular global output region of segment `seg`
    /// from an input tile — 2-D grid partitioning (DeepThings-style),
    /// of which row strips are the `cols = full` special case.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MissingHalo`] when the tile lacks required
    /// rows/columns and [`TensorError::ShapeMismatch`] on channel
    /// disagreement.
    pub fn infer_region2(
        &self,
        seg: Segment,
        out: Region2,
        input: &Tensor,
    ) -> Result<Tensor, TensorError> {
        // `Scratch::new` is allocation-free; one-shot callers pay only
        // the buffers this single call grows.
        self.infer_region2_with(&mut Scratch::new(), seg, out, input)
    }

    /// [`Engine::infer_region2`] with a caller-owned [`Scratch`] pool.
    ///
    /// Workers that keep one `Scratch` per thread across their task
    /// stream reach a steady state where the `Im2colGemm` backend
    /// allocates nothing but the returned tensor's buffer — and callers
    /// that hand even that back via [`Scratch::give`] allocate nothing
    /// at all (asserted by the counting-allocator regression test; see
    /// `tests/alloc_regression.rs`). Graph-structured blocks still
    /// allocate small per-path bookkeeping; the zero-allocation
    /// guarantee covers plain-layer chains. The `Reference` backend
    /// ignores the pool's recycled buffers.
    ///
    /// # Errors
    ///
    /// Identical to [`Engine::infer_region2`].
    pub fn infer_region2_with(
        &self,
        scratch: &mut Scratch,
        seg: Segment,
        out: Region2,
        input: &Tensor,
    ) -> Result<Tensor, TensorError> {
        self.model
            .check_segment(seg)
            .map_err(|_| TensorError::WeightMismatch {
                detail: format!("segment {seg} out of bounds"),
            })?;
        let in_shape = self.model.unit_input_shape(seg.start);
        if input.shape().channels != in_shape.channels {
            return Err(TensorError::ShapeMismatch {
                op: format!("segment {seg}"),
                expected: in_shape,
                found: input.shape(),
            });
        }
        let out_shape = self.model.unit_output_shape(seg.end - 1);
        let out = out.clamp_to(out_shape.height, out_shape.width);
        // The trace buffer is moved out of the pool for the call so the
        // pool stays borrowable; its capacity is reused across tasks.
        let mut trace = scratch.take_trace();
        self.model.segment_region_trace_into(seg, out, &mut trace);
        // Thread each layer's output into the next and recycle the
        // spent buffer: after one warmup task the pool serves every
        // intermediate without touching the allocator.
        let mut cur: Option<Tensor> = None;
        let mut result = Ok(());
        for (k, i) in seg.iter().enumerate() {
            let next = match &cur {
                Some(t) => self.unit_region(scratch, i, t, trace[k]),
                None => self.unit_region(scratch, i, input, trace[k]),
            };
            let next = match next {
                Ok(t) => t,
                Err(e) => {
                    result = Err(e);
                    break;
                }
            };
            if let Some(spent) = cur.take() {
                scratch.give(spent.into_vec());
            }
            cur = Some(next);
        }
        scratch.give_trace(trace);
        result?;
        match cur {
            Some(t) => Ok(t),
            // Segments are non-empty (`check_segment`), but stay total.
            None => Ok(input.clone()),
        }
    }

    /// Runs one unit over region `out` of its global output map.
    fn unit_region(
        &self,
        scratch: &mut Scratch,
        index: usize,
        input: &Tensor,
        out: Region2,
    ) -> Result<Tensor, TensorError> {
        let in_shape = self.model.unit_input_shape(index);
        let exec = Exec {
            simd: self.backend == EngineBackend::Simd,
            pool: self.pool.as_deref(),
        };
        let quant = match self.backend {
            EngineBackend::Int8 => {
                Some(
                    self.quant
                        .as_deref()
                        .ok_or_else(|| TensorError::WeightMismatch {
                            detail: "int8 backend without quantized weights".to_owned(),
                        })?,
                )
            }
            _ => None,
        };
        match (self.model.unit(index), self.weights.unit(index)) {
            (Unit::Layer(l), UnitWeights::Layer(w)) => {
                let qw = match quant.map(|q| q.unit(index)) {
                    Some(QuantizedUnit::Layer(q)) => q.as_ref(),
                    Some(QuantizedUnit::Block(_)) => {
                        return Err(TensorError::WeightMismatch {
                            detail: format!("unit {index} quantized weights do not match its kind"),
                        })
                    }
                    None => None,
                };
                layer_region(
                    self.backend,
                    exec,
                    scratch,
                    &l.kind,
                    input,
                    in_shape,
                    w,
                    qw,
                    out,
                )
            }
            (Unit::Block(b), UnitWeights::Block(pw)) => {
                let pq = match quant.map(|q| q.unit(index)) {
                    Some(QuantizedUnit::Block(p)) => Some(p.as_slice()),
                    Some(QuantizedUnit::Layer(_)) => {
                        return Err(TensorError::WeightMismatch {
                            detail: format!("unit {index} quantized weights do not match its kind"),
                        })
                    }
                    None => None,
                };
                block_region(self.backend, exec, scratch, b, pw, pq, input, in_shape, out)
            }
            _ => Err(TensorError::WeightMismatch {
                detail: format!("unit {index} weights do not match its kind"),
            }),
        }
    }
}

/// Dispatches one layer's region computation to the selected backend.
/// Convolutions and FC layers apply a fused ReLU; pooling does not.
///
/// `Simd` and `Im2colGemm` share the scratch conv/fc paths — `exec`
/// selects the micro-kernel (both bit-identical) and thread pool.
/// `Int8` routes weighted layers to the quantized kernels; pooling has
/// no weights and stays on the f32 path under every fast backend.
#[allow(clippy::too_many_arguments)]
fn layer_region(
    backend: EngineBackend,
    exec: Exec<'_>,
    scratch: &mut Scratch,
    kind: &LayerKind,
    input: &Tensor,
    in_shape: Shape,
    weights: &LayerWeights,
    quant: Option<&QuantizedLayer>,
    out: Region2,
) -> Result<Tensor, TensorError> {
    let missing_q = |what: &str| TensorError::WeightMismatch {
        detail: format!("int8 backend missing quantized {what} weights"),
    };
    match (kind, backend) {
        (LayerKind::Conv(spec), EngineBackend::Reference) => {
            ops::conv_region(input, in_shape, spec, weights, out, true)
        }
        (LayerKind::Conv(spec), EngineBackend::Int8) => {
            let q = quant.ok_or_else(|| missing_q("conv"))?;
            scratch::conv_region_q(input, in_shape, spec, q, out, true, scratch)
        }
        (LayerKind::Conv(spec), _) => {
            scratch::conv_region(input, in_shape, spec, weights, out, true, exec, scratch)
        }
        (LayerKind::Pool(spec), EngineBackend::Reference) => {
            ops::pool_region(input, in_shape, spec, out)
        }
        (LayerKind::Pool(spec), _) => scratch::pool_region(input, in_shape, spec, out, scratch),
        (LayerKind::Fc(fc), EngineBackend::Reference) => {
            ops::fc_full(input, fc.in_features, fc.out_features, weights, true)
        }
        (LayerKind::Fc(fc), EngineBackend::Int8) => {
            let q = quant.ok_or_else(|| missing_q("fc"))?;
            scratch::fc_full_q(input, fc.in_features, fc.out_features, q, true, scratch)
        }
        (LayerKind::Fc(fc), _) => scratch::fc_full(
            input,
            fc.in_features,
            fc.out_features,
            weights,
            true,
            scratch,
        ),
    }
}

/// Runs a block over region `out`: each path back-propagates the region
/// requirement through its own layers, computes forward from the shared
/// input tile, and the path outputs merge (add or concat).
#[allow(clippy::too_many_arguments)]
fn block_region(
    backend: EngineBackend,
    exec: Exec<'_>,
    scratch: &mut Scratch,
    block: &Block,
    path_weights: &[Vec<LayerWeights>],
    path_quant: Option<&[Vec<Option<QuantizedLayer>>]>,
    input: &Tensor,
    in_shape: Shape,
    out: Region2,
) -> Result<Tensor, TensorError> {
    let mut outputs = Vec::with_capacity(block.paths.len());
    for (pi, (path, weights)) in block.paths.iter().zip(path_weights).enumerate() {
        if path.is_empty() {
            // Identity shortcut: the block input region itself.
            outputs.push(input.slice_region(out)?);
            continue;
        }
        // Forward shapes along the path (global dims).
        let mut shapes = Vec::with_capacity(path.len() + 1);
        shapes.push(in_shape);
        for layer in path {
            let prev = *shapes.last().expect("shapes starts non-empty");
            shapes.push(
                layer
                    .output_shape(prev)
                    .map_err(|e| TensorError::WeightMismatch {
                        detail: format!("path layer rejected validated shape: {e}"),
                    })?,
            );
        }
        // Backward region requirements.
        let mut regions = vec![Region2::new(Rows::empty(), Rows::empty()); path.len()];
        let mut need = out.clamp_to(shapes[path.len()].height, shapes[path.len()].width);
        for l in (0..path.len()).rev() {
            regions[l] = need;
            need = path[l].input_region(need, shapes[l]);
        }
        // Forward computation, recycling spent path intermediates.
        let mut cur: Option<Tensor> = None;
        for (l, layer) in path.iter().enumerate() {
            let qw = path_quant.and_then(|p| p[pi][l].as_ref());
            let next = match &cur {
                Some(t) => layer_region(
                    backend,
                    exec,
                    scratch,
                    &layer.kind,
                    t,
                    shapes[l],
                    &weights[l],
                    qw,
                    regions[l],
                )?,
                None => layer_region(
                    backend,
                    exec,
                    scratch,
                    &layer.kind,
                    input,
                    shapes[l],
                    &weights[l],
                    qw,
                    regions[l],
                )?,
            };
            if let Some(spent) = cur.take() {
                scratch.give(spent.into_vec());
            }
            cur = Some(next);
        }
        if let Some(t) = cur {
            outputs.push(t);
        }
    }
    let merged = match block.merge {
        Merge::Add => ops::add(&outputs),
        Merge::Concat => ops::concat_channels(&outputs),
    };
    for t in outputs {
        scratch.give(t.into_vec());
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::{zoo, ConvSpec, Layer, PoolSpec};

    /// A small conv/pool chain for fast exact-equality tests.
    fn tiny_chain() -> Model {
        Model::new(
            "tiny",
            Shape::new(2, 16, 16),
            vec![
                Layer::conv("c1", ConvSpec::square(2, 4, 3, 1, 1)).into(),
                Layer::conv("c2", ConvSpec::square(4, 4, 3, 1, 1)).into(),
                Layer::pool("p1", PoolSpec::max(2, 2)).into(),
                Layer::conv("c3", ConvSpec::square(4, 8, 3, 1, 1)).into(),
            ],
        )
        .unwrap()
    }

    /// A graph model: residual + strided residual + inception-ish concat.
    fn tiny_graph() -> Model {
        Model::new(
            "tiny-graph",
            Shape::new(4, 16, 16),
            vec![
                Unit::Block(Block::residual(
                    "res1",
                    vec![
                        Layer::conv("r1a", ConvSpec::square(4, 4, 3, 1, 1)),
                        Layer::conv("r1b", ConvSpec::square(4, 4, 3, 1, 1)),
                    ],
                    vec![],
                )),
                Unit::Block(Block::residual(
                    "res2",
                    vec![
                        Layer::conv("r2a", ConvSpec::square(4, 8, 3, 2, 1)),
                        Layer::conv("r2b", ConvSpec::square(8, 8, 3, 1, 1)),
                    ],
                    vec![Layer::conv("r2p", ConvSpec::square(4, 8, 1, 2, 0))],
                )),
                Unit::Block(Block::new(
                    "mix",
                    vec![
                        vec![Layer::conv("m1", ConvSpec::pointwise(8, 4))],
                        vec![
                            Layer::conv("m2a", ConvSpec::pointwise(8, 4)),
                            Layer::conv("m2b", ConvSpec::square(4, 4, 3, 1, 1)),
                        ],
                        vec![
                            Layer::pool(
                                "m3p",
                                PoolSpec {
                                    kind: pico_model::PoolKind::Avg,
                                    kernel: (3, 3),
                                    stride: (1, 1),
                                    padding: (1, 1),
                                },
                            ),
                            Layer::conv("m3c", ConvSpec::pointwise(8, 4)),
                        ],
                    ],
                    Merge::Concat,
                )),
            ],
        )
        .unwrap()
    }

    fn assert_split_matches(model: &Model, parts: usize) {
        let engine = Engine::with_seed(model, 11);
        let input = Tensor::random(model.input_shape(), 22);
        let full = engine.infer(&input).unwrap();
        let seg = model.full_segment();
        let h = model.output_shape().height;
        let tiles: Vec<Tensor> = pico_model::rows_split_even(Rows::full(h), parts)
            .into_iter()
            .map(|r| {
                // Ship only the receptive-field tile, like a real device.
                let need = model.segment_input_rows(seg, r);
                let tile = input.slice_rows(need).unwrap();
                engine.infer_region(seg, r, &tile).unwrap()
            })
            .collect();
        let stitched = Tensor::stitch_rows(&tiles).unwrap();
        assert_eq!(stitched, full, "{} split into {parts}", model.name());
    }

    #[test]
    fn chain_split_matches_monolithic() {
        let m = tiny_chain();
        for parts in [2, 3, 5] {
            assert_split_matches(&m, parts);
        }
    }

    #[test]
    fn graph_split_matches_monolithic() {
        let m = tiny_graph();
        for parts in [2, 4] {
            assert_split_matches(&m, parts);
        }
    }

    #[test]
    fn mnist_toy_split_matches_monolithic() {
        assert_split_matches(&zoo::mnist_toy(), 3);
    }

    #[test]
    fn depthwise_separable_split_matches_monolithic() {
        // A MobileNet-style dw+pw stack through the halo machinery.
        let m = Model::new(
            "mobile-ish",
            Shape::new(4, 16, 16),
            vec![
                Layer::conv("dw1", ConvSpec::depthwise(4, 3, 1, 1)).into(),
                Layer::conv("pw1", ConvSpec::pointwise(4, 8)).into(),
                Layer::conv("dw2", ConvSpec::depthwise(8, 3, 2, 1)).into(),
                Layer::conv("pw2", ConvSpec::pointwise(8, 8)).into(),
            ],
        )
        .unwrap();
        for parts in [2, 3] {
            assert_split_matches(&m, parts);
        }
    }

    #[test]
    fn grid_split_matches_monolithic() {
        // 2-D grid tiles (DeepThings-style) stitched back equal the
        // monolithic result, for chain and graph models.
        for m in [tiny_chain(), tiny_graph()] {
            let engine = Engine::with_seed(&m, 13);
            let input = Tensor::random(m.input_shape(), 31);
            let full = engine.infer(&input).unwrap();
            let seg = m.full_segment();
            let out = m.output_shape();
            for (gr, gc) in [(2, 2), (1, 3), (3, 2)] {
                let tiles: Vec<Tensor> = pico_model::grid_split_even(out.height, out.width, gr, gc)
                    .into_iter()
                    .map(|region| {
                        let need = m.segment_input_region(seg, region);
                        let tile = input.slice_region(need).unwrap();
                        engine.infer_region2(seg, region, &tile).unwrap()
                    })
                    .collect();
                let stitched = Tensor::stitch_grid(&tiles, gc).unwrap();
                assert_eq!(stitched, full, "{} grid {gr}x{gc}", m.name());
            }
        }
    }

    #[test]
    fn grid_region_missing_col_halo_errors() {
        let m = tiny_chain();
        let engine = Engine::with_seed(&m, 1);
        let input = Tensor::random(m.input_shape(), 2);
        let seg = m.full_segment();
        // A tile with enough rows but not enough columns.
        let tile = input
            .slice_region(Region2::new(Rows::full(16), Rows::new(8, 16)))
            .unwrap();
        // Output columns 2..4 need input columns well below the tile's
        // left edge at 8.
        let out = Region2::new(Rows::new(4, 8), Rows::new(2, 4));
        assert!(matches!(
            engine.infer_region2(seg, out, &tile),
            Err(TensorError::MissingHalo { .. })
        ));
    }

    #[test]
    fn segment_chaining_matches_whole() {
        // Running [0, 2) then [2, 4) equals running [0, 4).
        let m = tiny_chain();
        let engine = Engine::with_seed(&m, 1);
        let input = Tensor::random(m.input_shape(), 2);
        let mid = engine.infer_segment(Segment::new(0, 2), &input).unwrap();
        let out = engine.infer_segment(Segment::new(2, 4), &mid).unwrap();
        assert_eq!(out, engine.infer(&input).unwrap());
    }

    #[test]
    fn region_with_insufficient_tile_errors() {
        let m = tiny_chain();
        let engine = Engine::with_seed(&m, 1);
        let input = Tensor::random(m.input_shape(), 2);
        let seg = m.full_segment();
        // Bottom half output needs more than the bottom half input.
        let tile = input.slice_rows(Rows::new(8, 16)).unwrap();
        assert!(matches!(
            engine.infer_region(seg, Rows::new(4, 8), &tile),
            Err(TensorError::MissingHalo { .. })
        ));
    }

    #[test]
    fn wrong_channels_rejected() {
        let m = tiny_chain();
        let engine = Engine::with_seed(&m, 1);
        let input = Tensor::random(Shape::new(3, 16, 16), 2);
        assert!(matches!(
            engine.infer(&input),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn weight_count_mismatch_rejected() {
        let m = tiny_chain();
        let other = zoo::toy(2);
        let w = NetworkWeights::generate(&other, 0);
        assert!(matches!(
            Engine::new(&m, w),
            Err(TensorError::WeightMismatch { .. })
        ));
    }

    #[test]
    fn fc_model_infers_end_to_end() {
        let m = Model::new(
            "fc-tail",
            Shape::new(1, 8, 8),
            vec![
                Layer::conv("c", ConvSpec::square(1, 2, 3, 1, 1)).into(),
                Layer::pool("p", PoolSpec::max(2, 2)).into(),
                Layer::fc("fc", 2 * 4 * 4, 10).into(),
            ],
        )
        .unwrap();
        let engine = Engine::with_seed(&m, 3);
        let out = engine.infer(&Tensor::random(m.input_shape(), 4)).unwrap();
        assert_eq!(out.shape(), Shape::new(10, 1, 1));
    }

    #[test]
    fn deterministic_outputs() {
        let m = tiny_chain();
        let a = Engine::with_seed(&m, 5)
            .infer(&Tensor::random(m.input_shape(), 6))
            .unwrap();
        let b = Engine::with_seed(&m, 5)
            .infer(&Tensor::random(m.input_shape(), 6))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn activations_stay_bounded() {
        // He-scaled weights keep magnitudes sane through the chain.
        let m = tiny_chain();
        let out = Engine::with_seed(&m, 7)
            .infer(&Tensor::random(m.input_shape(), 8))
            .unwrap();
        assert!(out.data().iter().all(|v| v.is_finite() && v.abs() < 1e4));
    }

    #[test]
    fn simd_backend_is_bit_identical_to_reference() {
        for m in [tiny_chain(), tiny_graph()] {
            let oracle = Engine::with_seed(&m, 11).with_backend(EngineBackend::Reference);
            let simd = Engine::with_seed(&m, 11).with_backend(EngineBackend::Simd);
            let input = Tensor::random(m.input_shape(), 22);
            assert_eq!(simd.infer(&input).unwrap(), oracle.infer(&input).unwrap());
        }
    }

    #[test]
    fn threaded_engine_is_bit_identical_to_single_threaded() {
        // Disjoint-row fan-out has no cross-thread reduction, so any
        // thread count reproduces the serial result exactly, across
        // repeated runs.
        for m in [tiny_chain(), tiny_graph()] {
            let input = Tensor::random(m.input_shape(), 5);
            let serial = Engine::with_seed(&m, 9)
                .with_backend(EngineBackend::Simd)
                .infer(&input)
                .unwrap();
            for threads in [2, 4] {
                let par = Engine::with_seed(&m, 9)
                    .with_backend(EngineBackend::Simd)
                    .with_threads(threads);
                assert_eq!(par.threads(), threads);
                for _ in 0..3 {
                    assert_eq!(par.infer(&input).unwrap(), serial, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn int8_split_stitch_is_bit_exactly_self_consistent() {
        // Static activation scales quantize every element identically
        // in a tile or a full map, so int8 split/stitch reproduces the
        // int8 monolithic result exactly — the property cooperative
        // inference needs from a degraded-precision mode.
        for m in [tiny_chain(), tiny_graph()] {
            let engine = Engine::with_seed(&m, 11).with_backend(EngineBackend::Int8);
            let input = Tensor::random(m.input_shape(), 22);
            let full = engine.infer(&input).unwrap();
            let seg = m.full_segment();
            let h = m.output_shape().height;
            let tiles: Vec<Tensor> = pico_model::rows_split_even(Rows::full(h), 3)
                .into_iter()
                .map(|r| {
                    let need = m.segment_input_rows(seg, r);
                    let tile = input.slice_rows(need).unwrap();
                    engine.infer_region(seg, r, &tile).unwrap()
                })
                .collect();
            assert_eq!(Tensor::stitch_rows(&tiles).unwrap(), full, "{}", m.name());
        }
    }

    #[test]
    fn int8_tracks_reference_within_tolerance() {
        let m = tiny_chain();
        let input = Tensor::random(m.input_shape(), 6);
        let exact = Engine::with_seed(&m, 11)
            .with_backend(EngineBackend::Reference)
            .infer(&input)
            .unwrap();
        let coarse = Engine::with_seed(&m, 11)
            .with_backend(EngineBackend::Int8)
            .infer(&input)
            .unwrap();
        let scale = exact.data().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let worst = exact
            .data()
            .iter()
            .zip(coarse.data())
            .map(|(e, c)| (e - c).abs())
            .fold(0.0f32, f32::max);
        // Empirical end-to-end budget: a few percent of the output
        // range (per-layer bounds compound through the chain).
        assert!(
            worst <= 0.05 * scale.max(1.0),
            "worst={worst} scale={scale}"
        );
    }

    #[test]
    fn fork_backend_shares_weights_and_switches_kernels() {
        let m = tiny_chain();
        let base = Engine::with_seed(&m, 11);
        let forked = base.fork_backend(EngineBackend::Simd);
        assert_eq!(forked.backend(), EngineBackend::Simd);
        let input = Tensor::random(m.input_shape(), 2);
        assert_eq!(forked.infer(&input).unwrap(), base.infer(&input).unwrap());
        // Int8 forks build (and then share) the quantized weights.
        let q1 = base.fork_backend(EngineBackend::Int8);
        assert!(q1.quantized().is_some());
        let q2 = q1.fork_backend(EngineBackend::Int8);
        assert_eq!(q1.infer(&input).unwrap(), q2.infer(&input).unwrap());
    }
}

#[cfg(test)]
mod nonsquare_tests {
    use super::*;
    use pico_model::{grid_split_even, ConvSpec, Layer, PoolSpec};

    /// Inception-style asymmetric kernels through split/stitch: the
    /// horizontal halo differs from the vertical one, which is exactly
    /// what the per-axis receptive arithmetic must get right.
    fn factorized_model() -> Model {
        Model::new(
            "factorized",
            Shape::new(3, 17, 17),
            vec![
                Layer::conv(
                    "c1x7",
                    ConvSpec {
                        in_channels: 3,
                        out_channels: 4,
                        kernel: (1, 7),
                        stride: (1, 1),
                        padding: (0, 3),
                        groups: 1,
                    },
                )
                .into(),
                Layer::conv(
                    "c7x1",
                    ConvSpec {
                        in_channels: 4,
                        out_channels: 4,
                        kernel: (7, 1),
                        stride: (1, 1),
                        padding: (3, 0),
                        groups: 1,
                    },
                )
                .into(),
                Layer::pool("p", PoolSpec::max(2, 2)).into(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn nonsquare_kernels_split_exactly_in_rows() {
        let m = factorized_model();
        let engine = Engine::with_seed(&m, 21);
        let input = Tensor::random(m.input_shape(), 22);
        let full = engine.infer(&input).unwrap();
        let seg = m.full_segment();
        let h = m.output_shape().height;
        let tiles: Vec<Tensor> = pico_model::rows_split_even(Rows::full(h), 3)
            .into_iter()
            .map(|r| {
                let need = m.segment_input_rows(seg, r);
                engine
                    .infer_region(seg, r, &input.slice_rows(need).unwrap())
                    .unwrap()
            })
            .collect();
        assert_eq!(Tensor::stitch_rows(&tiles).unwrap(), full);
    }

    #[test]
    fn nonsquare_kernels_split_exactly_in_grids() {
        let m = factorized_model();
        let engine = Engine::with_seed(&m, 23);
        let input = Tensor::random(m.input_shape(), 24);
        let full = engine.infer(&input).unwrap();
        let seg = m.full_segment();
        let out = m.output_shape();
        let tiles: Vec<Tensor> = grid_split_even(out.height, out.width, 2, 2)
            .into_iter()
            .map(|region| {
                let need = m.segment_input_region(seg, region);
                engine
                    .infer_region2(seg, region, &input.slice_region(need).unwrap())
                    .unwrap()
            })
            .collect();
        assert_eq!(Tensor::stitch_grid(&tiles, 2).unwrap(), full);
    }

    #[test]
    fn depthwise_grid_split_exact() {
        let m = Model::new(
            "dw-grid",
            Shape::new(4, 14, 14),
            vec![
                Layer::conv("dw", ConvSpec::depthwise(4, 3, 1, 1)).into(),
                Layer::conv("pw", ConvSpec::pointwise(4, 6)).into(),
            ],
        )
        .unwrap();
        let engine = Engine::with_seed(&m, 31);
        let input = Tensor::random(m.input_shape(), 32);
        let full = engine.infer(&input).unwrap();
        let seg = m.full_segment();
        let tiles: Vec<Tensor> = grid_split_even(14, 14, 2, 2)
            .into_iter()
            .map(|region| {
                let need = m.segment_input_region(seg, region);
                engine
                    .infer_region2(seg, region, &input.slice_region(need).unwrap())
                    .unwrap()
            })
            .collect();
        assert_eq!(Tensor::stitch_grid(&tiles, 2).unwrap(), full);
    }
}
