use pico_model::{LayerKind, Merge, Model, Region2, Rows, Shape, Unit};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{ops, Tensor, TensorError};

/// Weights of one layer: a flat kernel plus per-output bias.
///
/// * Convolution: kernel laid out `[out_ch][in_ch][kh][kw]`.
/// * Fully-connected: kernel laid out `[out][in]`.
/// * Pooling: empty.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// Flat kernel values.
    pub kernel: Vec<f32>,
    /// Per-output-channel (or per-output-feature) bias.
    pub bias: Vec<f32>,
}

impl LayerWeights {
    /// The empty weights of a parameterless layer.
    pub fn none() -> Self {
        LayerWeights {
            kernel: Vec::new(),
            bias: Vec::new(),
        }
    }
}

/// Weights of one planning unit.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitWeights {
    /// A single layer's weights.
    Layer(LayerWeights),
    /// Per-path, per-layer weights of a block.
    Block(Vec<Vec<LayerWeights>>),
}

/// Synthetic weights for an entire model.
///
/// Generated with a seeded RNG and He-style scaling
/// (`U(-s, s)` with `s = sqrt(3 / fan_in)`) so activations stay bounded
/// through deep networks. Partitioning does not alter accuracy, so
/// random weights are sufficient for every experiment in the paper;
/// determinism (same seed, same weights) is what the correctness tests
/// rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkWeights {
    units: Vec<UnitWeights>,
}

impl NetworkWeights {
    /// Generates weights for `model` from `seed`.
    pub fn generate(model: &Model, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let units = model
            .units()
            .iter()
            .map(|u| match u {
                Unit::Layer(l) => UnitWeights::Layer(layer_weights(&l.kind, &mut rng)),
                Unit::Block(b) => UnitWeights::Block(
                    b.paths
                        .iter()
                        .map(|p| p.iter().map(|l| layer_weights(&l.kind, &mut rng)).collect())
                        .collect(),
                ),
            })
            .collect();
        NetworkWeights { units }
    }

    /// Weights of unit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn unit(&self, index: usize) -> &UnitWeights {
        &self.units[index]
    }

    /// Number of units covered.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether there are no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }
}

fn layer_weights(kind: &LayerKind, rng: &mut StdRng) -> LayerWeights {
    match kind {
        LayerKind::Conv(c) => {
            let fan_in = (c.kernel.0 * c.kernel.1 * c.in_per_group()) as f32;
            let s = (3.0 / fan_in).sqrt();
            let n = c.out_channels * c.in_per_group() * c.kernel.0 * c.kernel.1;
            LayerWeights {
                kernel: (0..n).map(|_| rng.gen_range(-s..s)).collect(),
                bias: (0..c.out_channels)
                    .map(|_| rng.gen_range(-0.01..0.01))
                    .collect(),
            }
        }
        LayerKind::Fc(fc) => {
            let s = (3.0 / fc.in_features as f32).sqrt();
            LayerWeights {
                kernel: (0..fc.in_features * fc.out_features)
                    .map(|_| rng.gen_range(-s..s))
                    .collect(),
                bias: (0..fc.out_features)
                    .map(|_| rng.gen_range(-0.01..0.01))
                    .collect(),
            }
        }
        LayerKind::Pool(_) => LayerWeights::none(),
    }
}

/// Seed of the deterministic calibration input (`Tensor::random`):
/// the `Int8` backend's activation scales are **static**, derived from
/// one reference forward pass at quantization time, never from the
/// inference input. Static scales are what make int8 region inference
/// bit-exactly self-consistent with int8 full-map inference — every
/// tile quantizes the same element with the same scale.
const CAL_SEED: u64 = 0x5EED_CA1B;

/// Headroom multiplier on the calibration pass's observed max-abs
/// activation, absorbing input-to-input variation so same-distribution
/// inputs stay inside the representable range (no clipping, which the
/// analytic error bound assumes).
const CAL_MARGIN: f32 = 1.5;

/// Floor on quantization scales so all-zero maps never divide by zero.
const MIN_SCALE: f32 = 1e-12;

/// One layer's int8 weights: per-output-channel symmetric scales plus
/// the static input-activation scale chosen at calibration.
///
/// Quantization is `q = round(v / s)` clamped to ±127 with
/// `s_w[oc] = max|w[oc,·]| / 127` per output channel (so weights never
/// clip) and `s_in = CAL_MARGIN · max|x_cal| / 127` for activations.
/// Bias stays f32 and is added after dequantization.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLayer {
    /// Quantized kernel, same `[oc][row of k]` layout as the f32 one.
    pub(crate) kernel: Vec<i8>,
    /// Per-output-channel weight scales `s_w[oc]`.
    pub(crate) w_scales: Vec<f32>,
    /// Combined dequantization factors `s_w[oc] · s_in`, precomputed so
    /// the hot kernel multiplies once per output.
    pub(crate) dequant: Vec<f32>,
    /// f32 bias, applied post-dequantization.
    pub(crate) bias: Vec<f32>,
    /// Static activation scale for this layer's input.
    pub(crate) in_scale: f32,
}

impl QuantizedLayer {
    /// Reduction length per output (`k` of the lowered GEMM).
    pub fn k(&self) -> usize {
        if self.bias.is_empty() {
            0
        } else {
            self.kernel.len() / self.bias.len()
        }
    }

    /// The static input-activation scale.
    pub fn in_scale(&self) -> f32 {
        self.in_scale
    }

    /// Analytic worst-case absolute error of output channel `oc`
    /// versus exact f32 arithmetic, assuming no activation clipping
    /// (guaranteed for inputs within `CAL_MARGIN` of the calibration
    /// range).
    ///
    /// With `x = s_x(q_x + e_x)`, `w = s_w(q_w + e_w)`, `|e| ≤ ½`:
    /// `|Σ w·x − s_w s_x Σ q_w q_x| ≤ s_w s_x (½·Σ|q_w| + k·127/2 + k/4)`.
    /// A small absolute epsilon absorbs the f32 rounding of the
    /// reference accumulation itself.
    pub fn channel_tolerance(&self, oc: usize) -> f32 {
        let k = self.k();
        let row = &self.kernel[oc * k..(oc + 1) * k];
        let sum_abs_q: f32 = row.iter().map(|&q| (q as i32).abs() as f32).sum();
        let s = self.w_scales[oc] * self.in_scale;
        s * (0.5 * sum_abs_q + k as f32 * (127.0 / 2.0 + 0.25)) + 1e-6
    }
}

/// Quantized weights of one planning unit. Pooling layers carry no
/// weights, hence the `Option`.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantizedUnit {
    /// A single layer (None for pooling).
    Layer(Option<QuantizedLayer>),
    /// Per-path, per-layer quantized weights of a block.
    Block(Vec<Vec<Option<QuantizedLayer>>>),
}

/// Per-channel symmetric int8 quantization of a whole network, with
/// static activation scales from a deterministic calibration pass.
///
/// Built once per engine (see `Engine::with_backend(Int8)`); the hot
/// path only reads it. Deterministic: same model + weights produce the
/// same quantization, bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedNetwork {
    units: Vec<QuantizedUnit>,
}

impl QuantizedNetwork {
    /// Quantizes `weights` for `model`, running the reference kernels
    /// over a seeded calibration input to fix every layer's static
    /// activation scale.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::WeightMismatch`] when weights do not
    /// match the model's units, and propagates shape errors from the
    /// calibration forward pass.
    pub fn quantize(model: &Model, weights: &NetworkWeights) -> Result<Self, TensorError> {
        if weights.len() != model.len() {
            return Err(TensorError::WeightMismatch {
                detail: format!(
                    "weights cover {} units, model has {}",
                    weights.len(),
                    model.len()
                ),
            });
        }
        let mut cur = Tensor::random(model.input_shape(), CAL_SEED);
        let mut units = Vec::with_capacity(model.len());
        for (i, unit) in model.units().iter().enumerate() {
            let in_shape = model.unit_input_shape(i);
            match (unit, weights.unit(i)) {
                (Unit::Layer(l), UnitWeights::Layer(w)) => {
                    let out_shape = model.unit_output_shape(i);
                    let (q, next) = calibrate_layer(&l.kind, w, &cur, in_shape, out_shape)?;
                    units.push(QuantizedUnit::Layer(q));
                    cur = next;
                }
                (Unit::Block(b), UnitWeights::Block(pw)) => {
                    let mut paths = Vec::with_capacity(b.paths.len());
                    let mut outs = Vec::with_capacity(b.paths.len());
                    for (path, ws) in b.paths.iter().zip(pw) {
                        let mut qs = Vec::with_capacity(path.len());
                        let mut t = cur.clone();
                        let mut shape = in_shape;
                        for (layer, w) in path.iter().zip(ws) {
                            let next_shape = layer.output_shape(shape).map_err(|e| {
                                TensorError::WeightMismatch {
                                    detail: format!("path layer rejected validated shape: {e}"),
                                }
                            })?;
                            let (q, next) = calibrate_layer(&layer.kind, w, &t, shape, next_shape)?;
                            qs.push(q);
                            t = next;
                            shape = next_shape;
                        }
                        paths.push(qs);
                        outs.push(t);
                    }
                    cur = match b.merge {
                        Merge::Add => ops::add(&outs)?,
                        Merge::Concat => ops::concat_channels(&outs)?,
                    };
                    units.push(QuantizedUnit::Block(paths));
                }
                _ => {
                    return Err(TensorError::WeightMismatch {
                        detail: format!("unit {i} weights do not match its kind"),
                    })
                }
            }
        }
        Ok(QuantizedNetwork { units })
    }

    /// Quantized weights of unit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn unit(&self, index: usize) -> &QuantizedUnit {
        &self.units[index]
    }

    /// Number of units covered.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether there are no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }
}

/// The static activation scale for a map: `CAL_MARGIN · max|x| / 127`.
fn act_scale(t: &Tensor) -> f32 {
    let max_abs = t.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    (CAL_MARGIN * max_abs / 127.0).max(MIN_SCALE)
}

/// Quantizes one layer's kernel per output channel.
fn quantize_rows(w: &LayerWeights, out_ch: usize, in_scale: f32) -> QuantizedLayer {
    let k = w.kernel.len().checked_div(out_ch).unwrap_or(0);
    let mut kernel = vec![0i8; w.kernel.len()];
    let mut w_scales = vec![0.0f32; out_ch];
    let mut dequant = vec![0.0f32; out_ch];
    for oc in 0..out_ch {
        let row = &w.kernel[oc * k..(oc + 1) * k];
        let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let s = (max_abs / 127.0).max(MIN_SCALE);
        crate::quant::quantize_into(row, s, &mut kernel[oc * k..(oc + 1) * k]);
        w_scales[oc] = s;
        dequant[oc] = s * in_scale;
    }
    QuantizedLayer {
        kernel,
        w_scales,
        dequant,
        bias: w.bias.clone(),
        in_scale,
    }
}

/// Quantizes one layer (if it has weights) and advances the
/// calibration map through it with the reference kernels.
fn calibrate_layer(
    kind: &LayerKind,
    w: &LayerWeights,
    input: &Tensor,
    in_shape: Shape,
    out_shape: Shape,
) -> Result<(Option<QuantizedLayer>, Tensor), TensorError> {
    let full = Region2::new(Rows::full(out_shape.height), Rows::full(out_shape.width));
    match kind {
        LayerKind::Conv(spec) => {
            let q = quantize_rows(w, spec.out_channels, act_scale(input));
            let out = ops::conv_region(input, in_shape, spec, w, full, true)?;
            Ok((Some(q), out))
        }
        LayerKind::Pool(spec) => {
            let out = ops::pool_region(input, in_shape, spec, full)?;
            Ok((None, out))
        }
        LayerKind::Fc(fc) => {
            let q = quantize_rows(w, fc.out_features, act_scale(input));
            let out = ops::fc_full(input, fc.in_features, fc.out_features, w, true)?;
            Ok((Some(q), out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;

    #[test]
    fn generation_is_deterministic() {
        let m = zoo::mnist_toy();
        assert_eq!(
            NetworkWeights::generate(&m, 1),
            NetworkWeights::generate(&m, 1)
        );
        assert_ne!(
            NetworkWeights::generate(&m, 1),
            NetworkWeights::generate(&m, 2)
        );
    }

    #[test]
    fn kernel_sizes_match_layers() {
        let m = zoo::toy(2);
        let w = NetworkWeights::generate(&m, 0);
        match w.unit(0) {
            UnitWeights::Layer(lw) => {
                assert_eq!(lw.kernel.len(), 16 * 3 * 3 * 3);
                assert_eq!(lw.bias.len(), 16);
            }
            other => panic!("expected layer weights, got {other:?}"),
        }
    }

    #[test]
    fn block_weights_follow_paths() {
        let m = zoo::resnet34();
        let w = NetworkWeights::generate(&m, 0);
        // Unit 2 is the first residual block: main path (2 convs) +
        // identity shortcut (0 layers).
        match w.unit(2) {
            UnitWeights::Block(paths) => {
                assert_eq!(paths.len(), 2);
                assert_eq!(paths[0].len(), 2);
                assert_eq!(paths[1].len(), 0);
            }
            other => panic!("expected block weights, got {other:?}"),
        }
    }

    #[test]
    fn pool_layers_have_no_weights() {
        let m = zoo::mnist_toy();
        let w = NetworkWeights::generate(&m, 0);
        // Unit 3 is pool1 in mnist_toy.
        match w.unit(3) {
            UnitWeights::Layer(lw) => assert!(lw.kernel.is_empty() && lw.bias.is_empty()),
            other => panic!("expected layer weights, got {other:?}"),
        }
    }

    #[test]
    fn quantization_is_deterministic_and_covers_every_unit() {
        let m = zoo::mnist_toy();
        let w = NetworkWeights::generate(&m, 9);
        let a = QuantizedNetwork::quantize(&m, &w).unwrap();
        let b = QuantizedNetwork::quantize(&m, &w).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), m.len());
        // Pool units quantize to None, conv/fc to Some.
        match a.unit(3) {
            QuantizedUnit::Layer(None) => {}
            other => panic!("expected unquantized pool unit, got {other:?}"),
        }
        match a.unit(0) {
            QuantizedUnit::Layer(Some(q)) => {
                assert!(q.in_scale() > 0.0);
                assert!(q.w_scales.iter().all(|&s| s > 0.0));
                assert_eq!(q.dequant.len(), q.bias.len());
            }
            other => panic!("expected quantized conv unit, got {other:?}"),
        }
    }

    #[test]
    fn weight_quantization_never_clips() {
        // s_w = max|row|/127 by construction, so the largest weight
        // maps to exactly ±127 and nothing saturates past it.
        let m = zoo::mnist_toy();
        let w = NetworkWeights::generate(&m, 4);
        let q = QuantizedNetwork::quantize(&m, &w).unwrap();
        for i in 0..q.len() {
            if let QuantizedUnit::Layer(Some(ql)) = q.unit(i) {
                assert!(ql
                    .kernel
                    .iter()
                    .all(|&v| (-127..=127).contains(&(v as i32))));
                assert!(ql.kernel.iter().any(|&v| v.unsigned_abs() == 127));
            }
        }
    }

    #[test]
    fn mismatched_weights_are_rejected() {
        let m = zoo::mnist_toy();
        let w = NetworkWeights::generate(&zoo::toy(2), 0);
        assert!(matches!(
            QuantizedNetwork::quantize(&m, &w),
            Err(TensorError::WeightMismatch { .. })
        ));
    }
}
