use pico_model::{LayerKind, Model, Unit};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Weights of one layer: a flat kernel plus per-output bias.
///
/// * Convolution: kernel laid out `[out_ch][in_ch][kh][kw]`.
/// * Fully-connected: kernel laid out `[out][in]`.
/// * Pooling: empty.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// Flat kernel values.
    pub kernel: Vec<f32>,
    /// Per-output-channel (or per-output-feature) bias.
    pub bias: Vec<f32>,
}

impl LayerWeights {
    /// The empty weights of a parameterless layer.
    pub fn none() -> Self {
        LayerWeights {
            kernel: Vec::new(),
            bias: Vec::new(),
        }
    }
}

/// Weights of one planning unit.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitWeights {
    /// A single layer's weights.
    Layer(LayerWeights),
    /// Per-path, per-layer weights of a block.
    Block(Vec<Vec<LayerWeights>>),
}

/// Synthetic weights for an entire model.
///
/// Generated with a seeded RNG and He-style scaling
/// (`U(-s, s)` with `s = sqrt(3 / fan_in)`) so activations stay bounded
/// through deep networks. Partitioning does not alter accuracy, so
/// random weights are sufficient for every experiment in the paper;
/// determinism (same seed, same weights) is what the correctness tests
/// rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkWeights {
    units: Vec<UnitWeights>,
}

impl NetworkWeights {
    /// Generates weights for `model` from `seed`.
    pub fn generate(model: &Model, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let units = model
            .units()
            .iter()
            .map(|u| match u {
                Unit::Layer(l) => UnitWeights::Layer(layer_weights(&l.kind, &mut rng)),
                Unit::Block(b) => UnitWeights::Block(
                    b.paths
                        .iter()
                        .map(|p| p.iter().map(|l| layer_weights(&l.kind, &mut rng)).collect())
                        .collect(),
                ),
            })
            .collect();
        NetworkWeights { units }
    }

    /// Weights of unit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn unit(&self, index: usize) -> &UnitWeights {
        &self.units[index]
    }

    /// Number of units covered.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether there are no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }
}

fn layer_weights(kind: &LayerKind, rng: &mut StdRng) -> LayerWeights {
    match kind {
        LayerKind::Conv(c) => {
            let fan_in = (c.kernel.0 * c.kernel.1 * c.in_per_group()) as f32;
            let s = (3.0 / fan_in).sqrt();
            let n = c.out_channels * c.in_per_group() * c.kernel.0 * c.kernel.1;
            LayerWeights {
                kernel: (0..n).map(|_| rng.gen_range(-s..s)).collect(),
                bias: (0..c.out_channels)
                    .map(|_| rng.gen_range(-0.01..0.01))
                    .collect(),
            }
        }
        LayerKind::Fc(fc) => {
            let s = (3.0 / fc.in_features as f32).sqrt();
            LayerWeights {
                kernel: (0..fc.in_features * fc.out_features)
                    .map(|_| rng.gen_range(-s..s))
                    .collect(),
                bias: (0..fc.out_features)
                    .map(|_| rng.gen_range(-0.01..0.01))
                    .collect(),
            }
        }
        LayerKind::Pool(_) => LayerWeights::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;

    #[test]
    fn generation_is_deterministic() {
        let m = zoo::mnist_toy();
        assert_eq!(
            NetworkWeights::generate(&m, 1),
            NetworkWeights::generate(&m, 1)
        );
        assert_ne!(
            NetworkWeights::generate(&m, 1),
            NetworkWeights::generate(&m, 2)
        );
    }

    #[test]
    fn kernel_sizes_match_layers() {
        let m = zoo::toy(2);
        let w = NetworkWeights::generate(&m, 0);
        match w.unit(0) {
            UnitWeights::Layer(lw) => {
                assert_eq!(lw.kernel.len(), 16 * 3 * 3 * 3);
                assert_eq!(lw.bias.len(), 16);
            }
            other => panic!("expected layer weights, got {other:?}"),
        }
    }

    #[test]
    fn block_weights_follow_paths() {
        let m = zoo::resnet34();
        let w = NetworkWeights::generate(&m, 0);
        // Unit 2 is the first residual block: main path (2 convs) +
        // identity shortcut (0 layers).
        match w.unit(2) {
            UnitWeights::Block(paths) => {
                assert_eq!(paths.len(), 2);
                assert_eq!(paths[0].len(), 2);
                assert_eq!(paths[1].len(), 0);
            }
            other => panic!("expected block weights, got {other:?}"),
        }
    }

    #[test]
    fn pool_layers_have_no_weights() {
        let m = zoo::mnist_toy();
        let w = NetworkWeights::generate(&m, 0);
        // Unit 3 is pool1 in mnist_toy.
        match w.unit(3) {
            UnitWeights::Layer(lw) => assert!(lw.kernel.is_empty() && lw.bias.is_empty()),
            other => panic!("expected layer weights, got {other:?}"),
        }
    }
}
