//! A small dependency-free scoped-job thread pool for intra-shard
//! GEMM parallelism (`Engine::with_threads`).
//!
//! Design constraints, in order:
//!
//! 1. **No channels in the hot loop** — job hand-off is a single
//!    `Mutex<State>` + two `Condvar`s; a dispatched job is a thin
//!    context pointer plus a monomorphized call shim, both `Copy`.
//! 2. **Zero allocation in steady state** — workers are spawned once
//!    at pool construction and parked on a condvar between jobs;
//!    dispatching a job moves no heap memory at all.
//! 3. **Determinism by construction** — the pool only ever runs
//!    *data-parallel* jobs over disjoint output chunks (see
//!    [`par_gemm_bias_relu`]). No cross-thread floating-point
//!    reduction exists, so results are bit-identical for every thread
//!    count and every scheduling interleaving.
//!
//! The caller of [`ThreadPool::run`] participates in the chunk loop
//! itself and **blocks until every chunk has completed**, which is
//! what makes the lifetime-erased job pointer sound: the borrowed
//! closure cannot die while a worker still holds the pointer.
//!
//! xtask lint rule 10 polices this file: unsafe stays confined here
//! (and in `simd.rs`), every `unsafe` carries a `SAFETY:` comment, and
//! the kernel-hot-path rule (no allocation tokens, no
//! `unwrap`/`expect`) applies.
#![allow(unsafe_code)]

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::{gemm, simd};

/// Output channels per register tile — chunk boundaries align to it so
/// parallel macro-blocks see the same tile shapes as a serial run.
const MR: usize = 4;

/// Minimum multiply–accumulate count before a GEMM is worth fanning
/// out; below this the dispatch overhead dominates on every machine
/// we care about.
const PAR_THRESHOLD_FLOPS: usize = 16 * 1024;

/// A dispatched job: a thin pointer to the caller's closure plus the
/// monomorphized shim that reconstitutes and calls it.
#[derive(Clone, Copy)]
struct Job {
    ctx: *const (),
    // SAFETY contract: only `call_chunk::<F>` is ever stored here, and
    // it is only invoked with the `ctx` captured alongside it.
    call: unsafe fn(*const (), usize),
}

// SAFETY: a `Job` only ever crosses threads while `ThreadPool::run`
// is blocked in the same call that created it from an `&F` where
// `F: Fn(usize) + Sync`; sharing `&F` across threads is exactly what
// `Sync` licenses.
unsafe impl Send for Job {}

/// Shim reconstituting the `&F` a [`Job`] erased.
unsafe fn call_chunk<F: Fn(usize) + Sync>(ctx: *const (), chunk: usize) {
    // SAFETY: `ctx` came from `job as *const F` in `run`, which blocks
    // until every chunk completes — the reference is live.
    let f = unsafe { &*(ctx as *const F) };
    f(chunk);
}

/// Pool bookkeeping behind the mutex.
struct State {
    /// The in-flight job, if any.
    job: Option<Job>,
    /// Next chunk index to hand out.
    next: usize,
    /// One past the last chunk index of the current job.
    total: usize,
    /// Chunks handed out but not yet completed, plus chunks not yet
    /// handed out. `run` returns when this reaches zero.
    pending: usize,
    /// Set once, on drop; workers exit at the next wakeup.
    shutdown: bool,
    /// Workers that have not yet exited (drop joins on this).
    alive: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: a new job or shutdown.
    work: Condvar,
    /// Signals the dispatcher: all chunks done, or a worker exited.
    done: Condvar,
}

/// Locks a mutex, recovering from poisoning (a panicking job must not
/// wedge every later inference; the pool state itself is only counters
/// and is consistent at every await point).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The scoped-job pool. One per [`Engine`](crate::Engine) (shared by
/// clones); `threads` counts the caller, so `new(4)` spawns three
/// workers and the dispatching thread is the fourth participant.
pub(crate) struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
    /// Serializes dispatchers: engines are shared by reference across
    /// pipeline workers, so two concurrent `run` calls must not
    /// interleave their chunk counters.
    gate: Mutex<()>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` total participants (clamped to at
    /// least 1). All worker threads are spawned here, once; the hot
    /// path never creates or destroys a thread.
    pub(crate) fn new(threads: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                next: 0,
                total: 0,
                pending: 0,
                shutdown: false,
                alive: threads - 1,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        for _ in 1..threads {
            let sh = Arc::clone(&shared);
            std::thread::spawn(move || worker(sh));
        }
        ThreadPool {
            shared,
            threads,
            gate: Mutex::new(()),
        }
    }

    /// Total participants (workers + the dispatching caller).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(chunk)` for every `chunk in 0..chunks`, spread over
    /// the pool, and returns only when all chunks have completed.
    /// Chunk indices are handed out in order; the mapping from chunk
    /// to data is the caller's, so disjoint-chunk jobs are
    /// deterministic regardless of which thread runs which chunk.
    pub(crate) fn run<F: Fn(usize) + Sync>(&self, chunks: usize, job: &F) {
        if chunks <= 1 || self.threads == 1 {
            for i in 0..chunks {
                job(i);
            }
            return;
        }
        let _gate = lock(&self.gate);
        let erased = Job {
            ctx: job as *const F as *const (),
            call: call_chunk::<F>,
        };
        {
            let mut st = lock(&self.shared.state);
            st.job = Some(erased);
            st.next = 0;
            st.total = chunks;
            st.pending = chunks;
        }
        self.shared.work.notify_all();
        // The dispatcher is a participant: grab chunks until none are
        // left, then wait out any straggler a worker still holds.
        loop {
            let mut st = lock(&self.shared.state);
            if st.next >= st.total {
                break;
            }
            let chunk = st.next;
            st.next += 1;
            drop(st);
            job(chunk);
            let mut st = lock(&self.shared.state);
            st.pending -= 1;
            if st.pending == 0 {
                self.shared.done.notify_all();
            }
        }
        let mut st = lock(&self.shared.state);
        while st.pending > 0 {
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        st.shutdown = true;
        self.shared.work.notify_all();
        // Join-by-counter: workers decrement `alive` and signal `done`
        // on exit, so the pool never leaks running threads.
        while st.alive > 0 {
            st = self
                .shared
                .done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Worker loop: park on `work`, drain chunks of the current job, mark
/// completions, repeat until shutdown.
fn worker(sh: Arc<Shared>) {
    let mut st = lock(&sh.state);
    loop {
        if st.shutdown {
            st.alive -= 1;
            sh.done.notify_all();
            return;
        }
        let Some(job) = st.job else {
            st = sh.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            continue;
        };
        if st.next >= st.total {
            st = sh.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        let chunk = st.next;
        st.next += 1;
        drop(st);
        // SAFETY: `run` blocks until `pending` hits zero, so the
        // closure behind `job.ctx` outlives this call.
        unsafe { (job.call)(job.ctx, chunk) };
        st = lock(&sh.state);
        st.pending -= 1;
        if st.pending == 0 {
            sh.done.notify_all();
        }
    }
}

/// A raw output pointer that may cross threads. Each chunk writes a
/// disjoint row range, which is what makes sharing it sound.
#[derive(Clone, Copy)]
struct OutPtr(*mut f32);
// SAFETY: chunks index disjoint `c` row ranges (see the chunk math in
// `par_gemm_bias_relu`); no two threads ever alias a byte.
unsafe impl Send for OutPtr {}
// SAFETY: as above — the pointer is only dereferenced through
// per-chunk disjoint subslices.
unsafe impl Sync for OutPtr {}

impl OutPtr {
    /// Accessor (rather than field access) so closures capture the
    /// `Send + Sync` wrapper, not the bare pointer — edition-2021
    /// disjoint capture would otherwise grab the `*mut f32` itself.
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// `c[m×n] = relu?(bias ⊕ a[m×k] · b[k×n])`, fanned out over the
/// pool by **M macro-blocks** (contiguous output-channel row ranges
/// aligned to the 4-row register tile). Every chunk computes the same
/// per-element addition chains a serial run would, into a disjoint
/// `c` slice — no cross-thread reduction, so the result is
/// bit-identical for any thread count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn par_gemm_bias_relu(
    pool: Option<&ThreadPool>,
    use_simd: bool,
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
    c: &mut [f32],
) {
    let kernel = if use_simd {
        simd::gemm_bias_relu
    } else {
        gemm::gemm_bias_relu
    };
    let worth_it = m * k * n >= PAR_THRESHOLD_FLOPS && m > MR;
    let pool = match pool {
        Some(p) if p.threads() > 1 && worth_it => p,
        _ => {
            kernel(a, b, bias, m, k, n, relu, c);
            return;
        }
    };
    let blocks = m.div_ceil(MR);
    let chunks = pool.threads().min(blocks);
    let rows_per = blocks.div_ceil(chunks) * MR;
    let out = OutPtr(c.as_mut_ptr());
    pool.run(chunks, &|chunk: usize| {
        let i0 = chunk * rows_per;
        let i1 = ((chunk + 1) * rows_per).min(m);
        if i0 >= i1 {
            return;
        }
        // SAFETY: chunks tile `0..m` into disjoint `rows_per`-sized
        // row ranges, so `[i0*n, i1*n)` slices of `c` never overlap
        // across chunks and stay within `c.len() == m*n`.
        let c_chunk =
            unsafe { std::slice::from_raw_parts_mut(out.get().add(i0 * n), (i1 - i0) * n) };
        kernel(
            &a[i0 * k..i1 * k],
            b,
            &bias[i0..i1],
            i1 - i0,
            k,
            n,
            relu,
            c_chunk,
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(len: usize, scale: f32, shift: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32).sin() * scale + shift).collect()
    }

    #[test]
    fn run_covers_every_chunk_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..50 {
            pool.run(hits.len(), &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 50));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let mut seen = vec![false; 8];
        let cell = std::sync::Mutex::new(&mut seen);
        pool.run(8, &|i| {
            lock(&cell)[i] = true;
        });
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn parallel_gemm_is_bit_identical_for_every_thread_count() {
        // Disjoint-chunk parallelism has no cross-thread reduction:
        // results must match the serial kernel bit for bit under any
        // pool size, and across repeated runs.
        let (m, k, n) = (37, 29, 53);
        let a = series(m * k, 0.8, -0.05);
        let b = series(k * n, 1.1, 0.15);
        let bias = series(m, 0.3, 0.0);
        let mut serial = vec![0.0; m * n];
        gemm::gemm_bias_relu(&a, &b, &bias, m, k, n, true, &mut serial);
        for threads in [1usize, 2, 3, 4, 7] {
            let pool = ThreadPool::new(threads);
            for _run in 0..3 {
                let mut par = vec![0.0; m * n];
                par_gemm_bias_relu(Some(&pool), false, &a, &b, &bias, m, k, n, true, &mut par);
                let same = par.iter().zip(&serial).all(|(x, y)| x == y);
                assert!(same, "threads={threads}");
            }
        }
    }

    #[test]
    fn tiny_gemm_skips_the_pool() {
        // Under the threshold the serial kernel runs on the caller;
        // results still correct.
        let pool = ThreadPool::new(4);
        let (m, k, n) = (6, 3, 4);
        let a = series(m * k, 0.5, 0.0);
        let b = series(k * n, 0.5, 0.1);
        let bias = series(m, 0.1, 0.0);
        let mut par = vec![0.0; m * n];
        let mut serial = vec![0.0; m * n];
        par_gemm_bias_relu(Some(&pool), false, &a, &b, &bias, m, k, n, false, &mut par);
        gemm::gemm_bias_relu(&a, &b, &bias, m, k, n, false, &mut serial);
        assert_eq!(par, serial);
    }

    #[test]
    fn drop_joins_all_workers() {
        // Dropping the pool must not leave detached workers alive: the
        // alive counter reaches zero before drop returns.
        for _ in 0..8 {
            let pool = ThreadPool::new(3);
            pool.run(5, &|_i| {});
            drop(pool);
        }
    }
}
