use pico_model::{Rows, Shape};

/// Errors raised by tensor operations and the inference engine.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// failure modes can be added without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TensorError {
    /// Raw data length does not match the declared shape.
    DataLength {
        /// Elements the shape requires.
        expected: usize,
        /// Elements provided.
        found: usize,
    },
    /// A row slice falls outside the tensor.
    RowsOutOfRange {
        /// Requested rows.
        rows: Rows,
        /// Rows the tensor covers.
        available: Rows,
    },
    /// Tiles cannot be stitched (gap, overlap, or shape disagreement).
    StitchMismatch {
        /// Human-readable description.
        detail: String,
    },
    /// An operation received no tensors.
    Empty,
    /// An input tensor's shape does not match what a layer expects.
    ShapeMismatch {
        /// The layer or op that rejected the input.
        op: String,
        /// Expected shape.
        expected: Shape,
        /// Shape received.
        found: Shape,
    },
    /// A region inference call needs input rows the provided tile does
    /// not cover.
    MissingHalo {
        /// Rows required by the receptive field.
        required: Rows,
        /// Rows the tile covers.
        available: Rows,
    },
    /// The model structure is inconsistent with its weights (internal
    /// error — weights are generated from the same model).
    WeightMismatch {
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::DataLength { expected, found } => {
                write!(
                    f,
                    "data length {found} does not match shape ({expected} elements)"
                )
            }
            TensorError::RowsOutOfRange { rows, available } => {
                write!(f, "rows {rows} outside available rows {available}")
            }
            TensorError::StitchMismatch { detail } => write!(f, "cannot stitch tiles: {detail}"),
            TensorError::Empty => write!(f, "no tensors provided"),
            TensorError::ShapeMismatch {
                op,
                expected,
                found,
            } => write!(f, "`{op}` expects input {expected}, got {found}"),
            TensorError::MissingHalo {
                required,
                available,
            } => write!(
                f,
                "tile covers rows {available} but receptive field needs {required}"
            ),
            TensorError::WeightMismatch { detail } => {
                write!(f, "weights inconsistent with model: {detail}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn display_mentions_rows() {
        let e = TensorError::MissingHalo {
            required: Rows::new(0, 5),
            available: Rows::new(2, 5),
        };
        assert!(e.to_string().contains("[0, 5)"));
    }
}
