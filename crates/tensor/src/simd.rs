//! Explicitly vectorized f32 GEMM micro-kernel for the `Simd` backend.
//!
//! On x86_64 with AVX2 (runtime-detected, cached) the 4×8 register tile
//! of `gemm.rs` is executed with 256-bit vectors: one `f32x8` lane
//! vector per tile row, one output pixel per lane. Everywhere else —
//! or when the feature probe fails — it falls back to the portable
//! scalar kernel, whose inner loops are written to autovectorize.
//!
//! # Bit-exactness contract
//!
//! The vector kernel preserves the reference addition chain
//! `bias + Σ_p w[p]·x[p]` (ascending `p`, one accumulator) **per
//! lane**: lanes are independent output pixels, `_mm256_mul_ps` +
//! `_mm256_add_ps` round each step exactly like the scalar `w * x`
//! then `acc + t` (no FMA — `_mm256_fmadd_ps` is deliberately not
//! used, for the same reason `mul_add` is banned in `gemm.rs`).
//! `_mm256_max_ps(acc, 0)` matches `f32::max(0.0)` on every finite
//! value the engine produces. The differential battery in
//! `tests/backend_equivalence.rs` holds `Simd` bit-identical to
//! `Reference` on every shape, including the scalar remainder paths
//! for `n % 8 != 0` and `m % 4 != 0`.
//!
//! This file is `unsafe`-bearing (`std::arch` intrinsics require it)
//! and is policed by xtask lint rule 10: unsafe is confined to
//! `simd.rs`/`pool.rs`, every `unsafe` needs a `SAFETY:` comment, and
//! the kernel-hot-path rule (no allocation, no `unwrap`/`expect`)
//! applies.
#![allow(unsafe_code)]

use crate::gemm;

/// Output channels per register tile (matches `gemm.rs`).
const MR: usize = 4;
/// Output pixels per register tile — one AVX2 `f32x8` vector.
const NR: usize = 8;

/// Whether the vector path is available on this machine.
///
/// The probe runs once and is cached; the result is stable for the
/// process lifetime, so dispatch is branch-predicted free after the
/// first call.
pub(crate) fn vector_path_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        // 0 = unprobed, 1 = unavailable, 2 = available.
        static PROBE: AtomicU8 = AtomicU8::new(0);
        match PROBE.load(Ordering::Relaxed) {
            2 => true,
            1 => false,
            _ => {
                let avail = std::arch::is_x86_feature_detected!("avx2");
                PROBE.store(if avail { 2 } else { 1 }, Ordering::Relaxed);
                avail
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `c[m×n] = relu?(bias ⊕ a[m×k] · b[k×n])` — the `Simd` backend's
/// GEMM. Vectorized when AVX2 is present, otherwise the portable
/// scalar kernel; both produce bit-identical results.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_bias_relu(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(bias.len(), m);
    debug_assert_eq!(c.len(), m * n);

    #[cfg(target_arch = "x86_64")]
    if vector_path_available() {
        // SAFETY: the AVX2 probe above just confirmed the target
        // feature is present on this CPU, which is the only
        // precondition of the `target_feature(enable = "avx2")` fn;
        // slice extents were checked by the debug asserts and are
        // re-derived inside from `m`/`k`/`n`.
        unsafe { gemm_avx2(a, b, bias, m, k, n, relu, c) };
        return;
    }
    gemm::gemm_bias_relu(a, b, bias, m, k, n, relu, c);
}

/// The AVX2 4×8 tile kernel. Lane `l` of row accumulator `r` holds
/// output element `(i + r, j + l)` — the exact scalar addition chain,
/// eight pixels at a time.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
// SAFETY contract: `#[target_feature]` makes this fn unsafe to call —
// the caller must guarantee AVX2 is available, which `gemm_bias_relu`
// establishes through the cached runtime probe before dispatching.
unsafe fn gemm_avx2(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
    c: &mut [f32],
) {
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_max_ps, _mm256_mul_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_storeu_ps,
    };

    let bp = b.as_ptr();
    let cp = c.as_mut_ptr();
    let zero = _mm256_setzero_ps();
    let mut i = 0;
    while i + MR <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let mut j = 0;
        while j + NR <= n {
            let mut acc0 = _mm256_set1_ps(bias[i]);
            let mut acc1 = _mm256_set1_ps(bias[i + 1]);
            let mut acc2 = _mm256_set1_ps(bias[i + 2]);
            let mut acc3 = _mm256_set1_ps(bias[i + 3]);
            for p in 0..k {
                // SAFETY: p < k and j + NR <= n, so the eight floats
                // at b[p*n + j..] are in bounds (b.len() == k*n).
                let x = unsafe { _mm256_loadu_ps(bp.add(p * n + j)) };
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(_mm256_set1_ps(a0[p]), x));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(_mm256_set1_ps(a1[p]), x));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(_mm256_set1_ps(a2[p]), x));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(_mm256_set1_ps(a3[p]), x));
            }
            if relu {
                acc0 = _mm256_max_ps(acc0, zero);
                acc1 = _mm256_max_ps(acc1, zero);
                acc2 = _mm256_max_ps(acc2, zero);
                acc3 = _mm256_max_ps(acc3, zero);
            }
            // SAFETY: rows i..i+MR <= m and j + NR <= n, so each store
            // of eight floats at c[(i+r)*n + j..] is in bounds
            // (c.len() == m*n).
            unsafe {
                _mm256_storeu_ps(cp.add(i * n + j), acc0);
                _mm256_storeu_ps(cp.add((i + 1) * n + j), acc1);
                _mm256_storeu_ps(cp.add((i + 2) * n + j), acc2);
                _mm256_storeu_ps(cp.add((i + 3) * n + j), acc3);
            }
            j += NR;
        }
        // Rightmost partial pixel tile: scalar, same addition chains.
        for jj in j..n {
            let rows = [a0, a1, a2, a3];
            for (r, ar) in rows.iter().enumerate() {
                let mut acc = bias[i + r];
                for p in 0..k {
                    acc += ar[p] * b[p * n + jj];
                }
                c[(i + r) * n + jj] = if relu { acc.max(0.0) } else { acc };
            }
        }
        i += MR;
    }
    // Bottom partial channel tile: one row at a time, scalar.
    for ii in i..m {
        let ar = &a[ii * k..(ii + 1) * k];
        for jj in 0..n {
            let mut acc = bias[ii];
            for p in 0..k {
                acc += ar[p] * b[p * n + jj];
            }
            c[ii * n + jj] = if relu { acc.max(0.0) } else { acc };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(len: usize, scale: f32, shift: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32).sin() * scale + shift).collect()
    }

    #[test]
    fn probe_is_stable() {
        let first = vector_path_available();
        for _ in 0..3 {
            assert_eq!(vector_path_available(), first);
        }
    }

    #[test]
    fn simd_gemm_is_bit_identical_to_scalar_across_tile_edges() {
        // Every divisibility class of the 4×8 tile, including the
        // degenerate extents — the scalar kernel is the oracle.
        for &m in &[1usize, 3, 4, 5, 8, 9, 16] {
            for &k in &[1usize, 2, 7, 16, 33] {
                for &n in &[1usize, 5, 7, 8, 9, 15, 16, 24, 31] {
                    let a = series(m * k, 0.7, -0.1);
                    let b = series(k * n, 1.3, 0.2);
                    let bias = series(m, 0.5, 0.01);
                    for relu in [false, true] {
                        let mut fast = vec![0.0; m * n];
                        let mut scalar = vec![0.0; m * n];
                        gemm_bias_relu(&a, &b, &bias, m, k, n, relu, &mut fast);
                        gemm::gemm_bias_relu(&a, &b, &bias, m, k, n, relu, &mut scalar);
                        let same = fast
                            .iter()
                            .zip(&scalar)
                            .all(|(x, y)| x.to_bits() == y.to_bits() || (x == y));
                        assert!(same, "m={m} k={k} n={n} relu={relu}");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_k_yields_bias() {
        let bias = [1.5f32, -2.0, 0.25, -0.5, 3.0];
        let mut c = vec![0.0; 5 * 9];
        gemm_bias_relu(&[], &[], &bias, 5, 0, 9, false, &mut c);
        for (i, &b) in bias.iter().enumerate() {
            assert!(c[i * 9..(i + 1) * 9].iter().all(|&v| v == b));
        }
    }
}
