//! Cache-blocked f32 GEMM micro-kernels for the `Im2colGemm` backend.
//!
//! These are the inner kernels of the fast compute backend: plain-slice
//! routines with **no heap allocation and no panic shortcuts** (the
//! `cargo xtask lint` serving-path rule is extended to this file). All
//! buffers are provided by the caller, normally out of a
//! [`crate::Scratch`] pool.
//!
//! # Bit-exactness contract
//!
//! The reference kernels in `ops.rs` accumulate each output element as
//! `bias + Σ_p w[p]·x[p]` with `p` strictly ascending in a single f32
//! accumulator. Every routine here preserves that exact addition chain:
//! register tiling spreads *independent* output elements across
//! accumulators, but no per-element chain is ever split, reordered, or
//! fused (`mul_add` is deliberately not used). Padding slots enter the
//! im2col patch matrix as literal zeros, so the extra `acc += w * 0.0`
//! terms leave every value unchanged (weights are finite; `-0.0 == 0.0`
//! under IEEE comparison, which is what [`crate::Tensor`] equality
//! uses). The differential proptest suite in
//! `tests/backend_equivalence.rs` pins this down against the oracle.

/// Output channels per register tile.
const MR: usize = 4;
/// Output pixels per register tile — eight f32 lanes vectorize well on
/// both 128- and 256-bit SIMD units.
const NR: usize = 8;

/// `c[m×n] = relu?(bias ⊕ a[m×k] · b[k×n])`, row-major, all dense.
///
/// `a` is the weight panel (one row per output channel), `b` the im2col
/// patch matrix (one row per kernel position, one column per output
/// pixel), `bias` one value per output channel. `c` must hold `m * n`
/// elements; every element is written.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_bias_relu(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(bias.len(), m);
    debug_assert_eq!(c.len(), m * n);

    let mut i = 0;
    while i + MR <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let mut j = 0;
        while j + NR <= n {
            // 4×8 register tile: 32 independent accumulators, each
            // fed in ascending-p order from its bias.
            let mut acc = [[0.0f32; NR]; MR];
            for (r, row) in acc.iter_mut().enumerate() {
                *row = [bias[i + r]; NR];
            }
            for p in 0..k {
                let x = &b[p * n + j..p * n + j + NR];
                let (w0, w1, w2, w3) = (a0[p], a1[p], a2[p], a3[p]);
                for l in 0..NR {
                    acc[0][l] += w0 * x[l];
                    acc[1][l] += w1 * x[l];
                    acc[2][l] += w2 * x[l];
                    acc[3][l] += w3 * x[l];
                }
            }
            for (r, row) in acc.iter().enumerate() {
                let out = &mut c[(i + r) * n + j..(i + r) * n + j + NR];
                for l in 0..NR {
                    out[l] = if relu { row[l].max(0.0) } else { row[l] };
                }
            }
            j += NR;
        }
        // Rightmost partial pixel tile: scalar, same addition chains.
        for jj in j..n {
            let rows = [a0, a1, a2, a3];
            for (r, ar) in rows.iter().enumerate() {
                let mut acc = bias[i + r];
                for p in 0..k {
                    acc += ar[p] * b[p * n + jj];
                }
                c[(i + r) * n + jj] = if relu { acc.max(0.0) } else { acc };
            }
        }
        i += MR;
    }
    // Bottom partial channel tile: one row at a time.
    for ii in i..m {
        let ar = &a[ii * k..(ii + 1) * k];
        for jj in 0..n {
            let mut acc = bias[ii];
            for p in 0..k {
                acc += ar[p] * b[p * n + jj];
            }
            c[ii * n + jj] = if relu { acc.max(0.0) } else { acc };
        }
    }
}

/// `out[m] = relu?(bias ⊕ a[m×k] · x[k])` — the fully-connected case.
///
/// Four output rows share each load of `x`; every row's accumulation
/// chain is still `bias + Σ_p w[p]·x[p]` in ascending `p`.
pub(crate) fn gemv_bias_relu(
    a: &[f32],
    x: &[f32],
    bias: &[f32],
    m: usize,
    k: usize,
    relu: bool,
    out: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(x.len(), k);
    debug_assert_eq!(bias.len(), m);
    debug_assert_eq!(out.len(), m);

    let mut i = 0;
    while i + MR <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let mut acc = [bias[i], bias[i + 1], bias[i + 2], bias[i + 3]];
        for p in 0..k {
            let v = x[p];
            acc[0] += a0[p] * v;
            acc[1] += a1[p] * v;
            acc[2] += a2[p] * v;
            acc[3] += a3[p] * v;
        }
        for (r, v) in acc.iter().enumerate() {
            out[i + r] = if relu { v.max(0.0) } else { *v };
        }
        i += MR;
    }
    for ii in i..m {
        let ar = &a[ii * k..(ii + 1) * k];
        let mut acc = bias[ii];
        for p in 0..k {
            acc += ar[p] * x[p];
        }
        out[ii] = if relu { acc.max(0.0) } else { acc };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference chain the kernels must reproduce exactly.
    fn naive(
        a: &[f32],
        b: &[f32],
        bias: &[f32],
        m: usize,
        k: usize,
        n: usize,
        relu: bool,
    ) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[i];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = if relu { acc.max(0.0) } else { acc };
            }
        }
        c
    }

    fn series(len: usize, scale: f32, shift: f32) -> Vec<f32> {
        (0..len).map(|i| (i as f32).sin() * scale + shift).collect()
    }

    #[test]
    fn gemm_matches_naive_across_tile_edges() {
        // Dimensions straddling the 4×8 tile in every combination,
        // including degenerate 0/1 extents.
        for &m in &[1usize, 3, 4, 5, 8, 9] {
            for &k in &[1usize, 2, 7, 16] {
                for &n in &[1usize, 7, 8, 9, 16, 19] {
                    let a = series(m * k, 0.7, -0.1);
                    let b = series(k * n, 1.3, 0.2);
                    let bias = series(m, 0.5, 0.01);
                    for relu in [false, true] {
                        let mut c = vec![0.0; m * n];
                        gemm_bias_relu(&a, &b, &bias, m, k, n, relu, &mut c);
                        assert_eq!(c, naive(&a, &b, &bias, m, k, n, relu), "m={m} k={k} n={n}");
                    }
                }
            }
        }
    }

    #[test]
    fn gemv_matches_naive() {
        for &m in &[1usize, 4, 6, 11] {
            for &k in &[1usize, 3, 9, 32] {
                let a = series(m * k, 0.9, 0.05);
                let x = series(k, 1.1, -0.3);
                let bias = series(m, 0.2, 0.0);
                for relu in [false, true] {
                    let mut out = vec![0.0; m];
                    gemv_bias_relu(&a, &x, &bias, m, k, relu, &mut out);
                    let full = naive(&a, &x, &bias, m, k, 1, relu);
                    assert_eq!(out, full, "m={m} k={k}");
                }
            }
        }
    }

    #[test]
    fn every_remainder_modulus_of_the_4x8_block_is_exact() {
        // Exhaustive residue sweep: m ≡ 0..3 (mod MR) by n ≡ 0..7
        // (mod NR), so each combination of full-tile, partial-row, and
        // partial-column paths runs at least once — including the
        // all-remainder corner (m < 4 and n < 8 simultaneously).
        let k = 5;
        for rm in 0..MR {
            for rn in 0..NR {
                for (m, n) in [(MR + rm, 2 * NR + rn), (rm.max(1), rn.max(1))] {
                    let a = series(m * k, 0.8, -0.2);
                    let b = series(k * n, 1.1, 0.3);
                    let bias = series(m, 0.4, -0.05);
                    let mut c = vec![0.0; m * n];
                    gemm_bias_relu(&a, &b, &bias, m, k, n, true, &mut c);
                    assert_eq!(c, naive(&a, &b, &bias, m, k, n, true), "m={m} k={k} n={n}");
                }
            }
        }
    }

    #[test]
    fn prime_dimensions_hit_no_full_tile_boundary() {
        // 13×31×23: nothing divides MR or NR, so the kernel runs
        // mostly remainder code — still bit-exact against the oracle.
        let (m, k, n) = (13, 31, 23);
        let a = series(m * k, 0.6, 0.02);
        let b = series(k * n, 0.9, -0.15);
        let bias = series(m, 0.3, 0.1);
        for relu in [false, true] {
            let mut c = vec![0.0; m * n];
            gemm_bias_relu(&a, &b, &bias, m, k, n, relu, &mut c);
            assert_eq!(c, naive(&a, &b, &bias, m, k, n, relu));
        }
    }

    #[test]
    fn dirty_output_buffer_is_fully_overwritten() {
        // Scratch pools recycle buffers without zeroing; every element
        // of `c` must be written, so NaN poison cannot survive.
        let (m, k, n) = (6, 3, 11);
        let a = series(m * k, 1.0, 0.0);
        let b = series(k * n, 1.0, 0.5);
        let bias = series(m, 0.1, 0.0);
        let mut c = vec![f32::NAN; m * n];
        gemm_bias_relu(&a, &b, &bias, m, k, n, false, &mut c);
        assert!(c.iter().all(|v| v.is_finite()));
        assert_eq!(c, naive(&a, &b, &bias, m, k, n, false));
        let mut out = vec![f32::NAN; m];
        gemv_bias_relu(&a, &b[..k], &bias, m, k, false, &mut out);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn zero_k_yields_bias() {
        let bias = [1.5f32, -2.0];
        let mut c = vec![0.0; 2 * 3];
        gemm_bias_relu(&[], &[], &bias, 2, 0, 3, false, &mut c);
        assert_eq!(c, [1.5, 1.5, 1.5, -2.0, -2.0, -2.0]);
        let mut v = vec![0.0; 2];
        gemv_bias_relu(&[], &[], &bias, 2, 0, true, &mut v);
        assert_eq!(v, [1.5, 0.0]);
    }
}
