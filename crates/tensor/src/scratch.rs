//! Scratch-buffer pool and im2col lowering for the fast backend.
//!
//! A [`Scratch`] owns every transient buffer the `Im2colGemm` backend
//! needs: the im2col patch matrix plus a small pool of recycled output
//! buffers. Kernels borrow from it instead of allocating, so a worker
//! that keeps one `Scratch` across its task stream reaches a steady
//! state where inference performs **no heap allocations** beyond the
//! result tensor it hands back — and callers that return even that
//! buffer via [`Scratch::give`] allocate nothing at all (asserted by
//! the counting-allocator regression test).
//!
//! Lifetime rules: a `Scratch` is plain mutable state — one per thread,
//! borrowed for the duration of a single inference call. Buffers only
//! ever grow; [`Scratch::new`] performs no allocation.

use pico_model::{ConvSpec, PoolKind, PoolSpec, Region2, Shape};

use crate::gemm;
use crate::ops;
use crate::pool::{self, ThreadPool};
use crate::quant;
use crate::weights::QuantizedLayer;
use crate::{LayerWeights, Tensor, TensorError};

/// How the fast conv path executes its GEMM: vectorized or scalar
/// micro-kernel, optionally fanned out over an engine-owned thread
/// pool. Plain data — cheap to construct per layer call.
#[derive(Clone, Copy)]
pub(crate) struct Exec<'p> {
    /// Use the `simd.rs` micro-kernel (bit-identical to scalar).
    pub(crate) simd: bool,
    /// Fan M macro-blocks out over this pool when profitable.
    pub(crate) pool: Option<&'p ThreadPool>,
}

/// Upper bound on pooled buffers; beyond this, returned buffers are
/// dropped. A pipeline worker touches one segment (a handful of layers),
/// so the pool stays small.
const POOL_CAP: usize = 8;

/// Reusable buffers for the `Im2colGemm` backend (one per thread).
#[derive(Debug, Default)]
pub struct Scratch {
    /// The im2col patch matrix (`k × pixels`, row-major), reused and
    /// regrown across layers and tasks.
    patches: Vec<f32>,
    /// Quantized mirror of `patches` for the `Int8` backend, reused
    /// the same way.
    qpatches: Vec<i8>,
    /// Recycled output/staging buffers, returned by finished layers and
    /// handed out to the next one.
    pool: Vec<Vec<f32>>,
    /// Recycled per-layer region trace, reused across inference calls.
    trace: Vec<Region2>,
}

impl Scratch {
    /// Creates an empty scratch pool. Allocation-free; buffers grow on
    /// first use and are reused afterwards.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Takes a zeroed buffer of exactly `len` elements, reusing pooled
    /// capacity when any fits (smallest adequate wins; otherwise the
    /// largest is grown).
    pub(crate) fn take(&mut self, len: usize) -> Vec<f32> {
        let pick = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= len)
            .min_by_key(|(_, v)| v.capacity())
            .or_else(|| {
                self.pool
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, v)| v.capacity())
            })
            .map(|(i, _)| i);
        let mut buf = match pick {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::new(),
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse by later layers/tasks.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 && self.pool.len() < POOL_CAP {
            self.pool.push(buf);
        }
    }

    /// The patch matrix resized to `len` elements (contents arbitrary —
    /// the im2col fill overwrites every slot).
    fn patches_mut(&mut self, len: usize) -> &mut [f32] {
        if self.patches.len() < len {
            self.patches.resize(len, 0.0);
        }
        &mut self.patches[..len]
    }

    /// The quantized patch matrix resized to `len` elements (contents
    /// arbitrary — the quantize pass overwrites every slot).
    fn qpatches_mut(&mut self, len: usize) -> &mut [i8] {
        if self.qpatches.len() < len {
            self.qpatches.resize(len, 0);
        }
        &mut self.qpatches[..len]
    }

    /// Both patch matrices at once (f32 source + i8 destination), for
    /// the quantize step that reads one and writes the other.
    fn patches_and_qpatches(&mut self, len: usize) -> (&[f32], &mut [i8]) {
        if self.patches.len() < len {
            self.patches.resize(len, 0.0);
        }
        if self.qpatches.len() < len {
            self.qpatches.resize(len, 0);
        }
        (&self.patches[..len], &mut self.qpatches[..len])
    }

    /// Moves the pooled region-trace buffer out for the duration of one
    /// inference call (pair with [`Scratch::give_trace`]).
    pub(crate) fn take_trace(&mut self) -> Vec<Region2> {
        std::mem::take(&mut self.trace)
    }

    /// Returns the region-trace buffer so later calls reuse its
    /// capacity.
    pub(crate) fn give_trace(&mut self, trace: Vec<Region2>) {
        self.trace = trace;
    }
}

/// Fast convolution: im2col lowering + blocked GEMM, one group at a
/// time. Checks and error variants mirror `ops::conv_region` exactly.
/// `exec` picks the micro-kernel (scalar or SIMD — both bit-identical)
/// and the optional thread pool for the M macro-block fan-out.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_region(
    input: &Tensor,
    in_shape: Shape,
    spec: &ConvSpec,
    weights: &LayerWeights,
    out: Region2,
    relu: bool,
    exec: Exec<'_>,
    scratch: &mut Scratch,
) -> Result<Tensor, TensorError> {
    if input.shape().channels != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "conv".to_owned(),
            expected: Shape::new(spec.in_channels, in_shape.height, in_shape.width),
            found: input.shape(),
        });
    }
    ops::require_region(
        input,
        ops::receptive(out, spec.kernel, spec.stride, spec.padding, in_shape),
    )?;

    let (kh, kw) = spec.kernel;
    let in_per_group = spec.in_per_group();
    let out_per_group = spec.out_channels / spec.groups;
    let n = out.area();
    let k = in_per_group * kh * kw;

    let mut data = scratch.take(spec.out_channels * n);
    let patches = scratch.patches_mut(k * n);
    for g in 0..spec.groups {
        im2col(input, in_shape, spec, g * in_per_group, out, patches);
        let oc0 = g * out_per_group;
        pool::par_gemm_bias_relu(
            exec.pool,
            exec.simd,
            &weights.kernel[oc0 * k..(oc0 + out_per_group) * k],
            patches,
            &weights.bias[oc0..oc0 + out_per_group],
            out_per_group,
            k,
            n,
            relu,
            &mut data[oc0 * n..(oc0 + out_per_group) * n],
        );
    }
    Tensor::from_parts(
        Shape::new(spec.out_channels, out.rows.len(), out.cols.len()),
        out.rows.start,
        out.cols.start,
        data,
    )
}

/// Int8 convolution: f32 im2col, quantize patches with the layer's
/// static activation scale, integer GEMM, dequantize per channel.
///
/// Because the activation scale is static (calibration-time), every
/// element quantizes identically whether it appears in a full map or
/// any region tile — so int8 split/stitch is bit-exactly
/// self-consistent, even though it only tracks f32 within the
/// documented tolerance.
pub(crate) fn conv_region_q(
    input: &Tensor,
    in_shape: Shape,
    spec: &ConvSpec,
    q: &QuantizedLayer,
    out: Region2,
    relu: bool,
    scratch: &mut Scratch,
) -> Result<Tensor, TensorError> {
    if input.shape().channels != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "conv".to_owned(),
            expected: Shape::new(spec.in_channels, in_shape.height, in_shape.width),
            found: input.shape(),
        });
    }
    ops::require_region(
        input,
        ops::receptive(out, spec.kernel, spec.stride, spec.padding, in_shape),
    )?;

    let (kh, kw) = spec.kernel;
    let in_per_group = spec.in_per_group();
    let out_per_group = spec.out_channels / spec.groups;
    let n = out.area();
    let k = in_per_group * kh * kw;

    let mut data = scratch.take(spec.out_channels * n);
    for g in 0..spec.groups {
        let patches = scratch.patches_mut(k * n);
        im2col(input, in_shape, spec, g * in_per_group, out, patches);
        let oc0 = g * out_per_group;
        // Split borrows: `patches`/`qpatches` live in the same Scratch.
        let (patches, qpatches) = scratch.patches_and_qpatches(k * n);
        quant::quantize_into(patches, q.in_scale, qpatches);
        quant::gemm_i8_bias_relu(
            &q.kernel[oc0 * k..(oc0 + out_per_group) * k],
            qpatches,
            &q.bias[oc0..oc0 + out_per_group],
            &q.dequant[oc0..oc0 + out_per_group],
            out_per_group,
            k,
            n,
            relu,
            &mut data[oc0 * n..(oc0 + out_per_group) * n],
        );
    }
    Tensor::from_parts(
        Shape::new(spec.out_channels, out.rows.len(), out.cols.len()),
        out.rows.start,
        out.cols.start,
        data,
    )
}

/// Fills `patches[(ic·kh+kr)·kw+kc][pixel]` with the input value each
/// output pixel's kernel slot reads — zero for padding — in the exact
/// (ic, kr, kc) order the reference accumulation walks.
fn im2col(
    input: &Tensor,
    in_shape: Shape,
    spec: &ConvSpec,
    ic_base: usize,
    out: Region2,
    patches: &mut [f32],
) {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let n = out.area();
    let tile = input.shape();
    let (row0, col0) = (input.row0(), input.col0());
    let data = input.data();
    let in_per_group = spec.in_per_group();

    for ic in 0..in_per_group {
        let ch = ic_base + ic;
        for kr in 0..kh {
            for kc in 0..kw {
                let dst = &mut patches[((ic * kh + kr) * kw + kc) * n..][..n];
                let mut idx = 0;
                for r in out.rows.iter() {
                    let gr = (r * sh + kr).wrapping_sub(ph);
                    if gr >= in_shape.height {
                        // Entire output row reads zero padding.
                        dst[idx..idx + out.cols.len()].fill(0.0);
                        idx += out.cols.len();
                        continue;
                    }
                    let row = &data[(ch * tile.height + (gr - row0)) * tile.width..][..tile.width];
                    for col in out.cols.iter() {
                        let gc = (col * sw + kc).wrapping_sub(pw);
                        dst[idx] = if gc >= in_shape.width {
                            0.0
                        } else {
                            row[gc - col0]
                        };
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// Fast pooling: identical window walk to `ops::pool_region` (same skip
/// conditions, same accumulation order) writing straight into a pooled
/// buffer through direct row slices.
pub(crate) fn pool_region(
    input: &Tensor,
    in_shape: Shape,
    spec: &PoolSpec,
    out: Region2,
    scratch: &mut Scratch,
) -> Result<Tensor, TensorError> {
    let (kh, kw) = spec.kernel;
    let (sh, sw) = spec.stride;
    let (ph, pw) = spec.padding;
    let c = input.shape().channels;
    ops::require_region(
        input,
        ops::receptive(out, spec.kernel, spec.stride, spec.padding, in_shape),
    )?;

    let tile = input.shape();
    let (row0, col0) = (input.row0(), input.col0());
    let src = input.data();
    let mut data = scratch.take(c * out.area());
    let mut idx = 0;
    for ch in 0..c {
        let plane = &src[ch * tile.height * tile.width..][..tile.height * tile.width];
        for r in out.rows.iter() {
            for col in out.cols.iter() {
                let mut best = f32::NEG_INFINITY;
                let mut sum = 0.0;
                for kr in 0..kh {
                    let gr = (r * sh + kr).wrapping_sub(ph);
                    if gr >= in_shape.height {
                        continue;
                    }
                    let row = &plane[(gr - row0) * tile.width..][..tile.width];
                    for kc in 0..kw {
                        let gc = (col * sw + kc).wrapping_sub(pw);
                        if gc >= in_shape.width {
                            continue;
                        }
                        let v = row[gc - col0];
                        match spec.kind {
                            PoolKind::Max => best = best.max(v),
                            PoolKind::Avg => sum += v,
                        }
                    }
                }
                data[idx] = match spec.kind {
                    PoolKind::Max => {
                        if best == f32::NEG_INFINITY {
                            0.0
                        } else {
                            best
                        }
                    }
                    PoolKind::Avg => sum / (kh * kw) as f32,
                };
                idx += 1;
            }
        }
    }
    Tensor::from_parts(
        Shape::new(c, out.rows.len(), out.cols.len()),
        out.rows.start,
        out.cols.start,
        data,
    )
}

/// Fast fully-connected layer: blocked GEMV into a pooled buffer.
/// Checks and error variants mirror `ops::fc_full` exactly.
pub(crate) fn fc_full(
    input: &Tensor,
    in_features: usize,
    out_features: usize,
    weights: &LayerWeights,
    relu: bool,
    scratch: &mut Scratch,
) -> Result<Tensor, TensorError> {
    if input.shape().elements() != in_features || input.row0() != 0 || input.col0() != 0 {
        return Err(TensorError::ShapeMismatch {
            op: "fc".to_owned(),
            expected: Shape::new(in_features, 1, 1),
            found: input.shape(),
        });
    }
    let mut data = scratch.take(out_features);
    gemm::gemv_bias_relu(
        &weights.kernel,
        input.data(),
        &weights.bias,
        out_features,
        in_features,
        relu,
        &mut data,
    );
    Tensor::from_parts(Shape::new(out_features, 1, 1), 0, 0, data)
}

/// Int8 fully-connected layer: quantize the input vector with the
/// layer's static scale, integer GEMV, dequantize per output feature.
/// Checks and error variants mirror `ops::fc_full` exactly.
pub(crate) fn fc_full_q(
    input: &Tensor,
    in_features: usize,
    out_features: usize,
    q: &QuantizedLayer,
    relu: bool,
    scratch: &mut Scratch,
) -> Result<Tensor, TensorError> {
    if input.shape().elements() != in_features || input.row0() != 0 || input.col0() != 0 {
        return Err(TensorError::ShapeMismatch {
            op: "fc".to_owned(),
            expected: Shape::new(in_features, 1, 1),
            found: input.shape(),
        });
    }
    let mut data = scratch.take(out_features);
    let x_q = scratch.qpatches_mut(in_features);
    quant::quantize_into(input.data(), q.in_scale, x_q);
    quant::gemv_i8_bias_relu(&q.kernel, x_q, &q.bias, &q.dequant, relu, &mut data);
    Tensor::from_parts(Shape::new(out_features, 1, 1), 0, 0, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_pooled_capacity() {
        let mut s = Scratch::new();
        let mut buf = s.take(64);
        buf[0] = 7.0;
        let ptr = buf.as_ptr();
        s.give(buf);
        // A smaller request reuses the same backing store, zeroed.
        let again = s.take(32);
        assert_eq!(again.as_ptr(), ptr);
        assert!(again.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn take_prefers_smallest_adequate_buffer() {
        let mut s = Scratch::new();
        let small = s.take(16);
        let big = s.take(1024);
        let small_ptr = small.as_ptr();
        s.give(big);
        s.give(small);
        let reused = s.take(10);
        assert_eq!(reused.as_ptr(), small_ptr);
        let mut s2 = Scratch::new();
        let small2 = s2.take(16);
        let sp2 = small2.as_ptr();
        s2.give(small2);
        // Nothing fits 64: the largest pooled buffer is grown in place
        // of a fresh allocation.
        let grown = s2.take(64);
        assert!(grown.len() == 64 && (grown.capacity() >= 64 || grown.as_ptr() != sp2));
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = Scratch::new();
        for _ in 0..2 * POOL_CAP {
            let buf = s.take(8);
            s.give(buf);
            let extra = vec![0.0f32; 8];
            s.give(extra);
        }
        assert!(s.pool.len() <= POOL_CAP);
    }
}
