//! Int8 GEMM kernels for the `Int8` backend.
//!
//! The quantization *scheme* (per-output-channel symmetric weight
//! scales, static per-layer activation scales from a deterministic
//! calibration pass) lives in `weights.rs`; this module holds only the
//! allocation-free hot-path kernels, policed by xtask lint rule 10
//! alongside `gemm.rs`/`simd.rs`/`pool.rs`.
//!
//! # Numerics
//!
//! Activations are quantized `q = round(x / s_in)` clamped to ±127;
//! weights were quantized offline the same way with per-channel scale
//! `s_w[oc] = max|w[oc]| / 127`. The kernel accumulates in `i32`
//! (safe: `k · 127 · 127 ≤ k · 16129`, so any `k < 2^17` stays far
//! from overflow — our largest layer has `k ≤ 2^12`) and dequantizes
//! as `bias[oc] + acc · (s_w[oc] · s_in)` in f32, then applies ReLU.
//! Results are **deterministic** (integer arithmetic, fixed order) but
//! only *tolerance-close* to the f32 reference; `weights.rs` exposes
//! the analytic per-channel bound the oracle tests assert against.

/// Quantizes `src` into `dst` as `round(x / scale)` clamped to ±127.
/// `dst` must already be sized; no allocation.
pub(crate) fn quantize_into(src: &[f32], scale: f32, dst: &mut [i8]) {
    debug_assert_eq!(src.len(), dst.len());
    debug_assert!(scale > 0.0);
    let inv = 1.0 / scale;
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = (x * inv).round().clamp(-127.0, 127.0) as i8;
    }
}

/// `c[m×n] = relu?(bias ⊕ dequant(a_q[m×k] · b_q[k×n]))` with
/// per-row (output-channel) weight scales.
///
/// `a_q` holds the quantized weights (`m` rows), `b_q` the quantized
/// activation patches (`k×n` column-major pixels, same layout as the
/// f32 im2col buffer), `scales[oc] = s_w[oc] · s_in` the combined
/// dequantization factor per output channel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_i8_bias_relu(
    a_q: &[i8],
    b_q: &[i8],
    bias: &[f32],
    scales: &[f32],
    m: usize,
    k: usize,
    n: usize,
    relu: bool,
    c: &mut [f32],
) {
    debug_assert_eq!(a_q.len(), m * k);
    debug_assert_eq!(b_q.len(), k * n);
    debug_assert_eq!(bias.len(), m);
    debug_assert_eq!(scales.len(), m);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let ar = &a_q[i * k..(i + 1) * k];
        let (b0, s) = (bias[i], scales[i]);
        let row = &mut c[i * n..(i + 1) * n];
        for (j, out) in row.iter_mut().enumerate() {
            let mut acc: i32 = 0;
            for (p, &w) in ar.iter().enumerate() {
                acc += w as i32 * b_q[p * n + j] as i32;
            }
            let v = b0 + acc as f32 * s;
            *out = if relu { v.max(0.0) } else { v };
        }
    }
}

/// Fully-connected variant: `y[oc] = relu?(bias ⊕ dequant(Σ w_q·x_q))`
/// over a single quantized input vector.
pub(crate) fn gemv_i8_bias_relu(
    a_q: &[i8],
    x_q: &[i8],
    bias: &[f32],
    scales: &[f32],
    relu: bool,
    y: &mut [f32],
) {
    let k = x_q.len();
    debug_assert_eq!(a_q.len(), y.len() * k);
    debug_assert_eq!(bias.len(), y.len());
    debug_assert_eq!(scales.len(), y.len());
    for (i, out) in y.iter_mut().enumerate() {
        let ar = &a_q[i * k..(i + 1) * k];
        let mut acc: i32 = 0;
        for (w, x) in ar.iter().zip(x_q) {
            acc += *w as i32 * *x as i32;
        }
        let v = bias[i] + acc as f32 * scales[i];
        *out = if relu { v.max(0.0) } else { v };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_rounds_and_clamps() {
        let src = [0.0f32, 0.26, -0.26, 12.0, -12.0, 0.24];
        let mut dst = [0i8; 6];
        quantize_into(&src, 0.5, &mut dst);
        assert_eq!(dst, [0, 1, -1, 24, -24, 0]);
        quantize_into(&[1000.0, -1000.0], 1.0, &mut dst[..2]);
        assert_eq!(&dst[..2], &[127, -127]);
    }

    #[test]
    fn i8_gemm_tracks_the_f32_product_within_quant_error() {
        // Quantize a small f32 problem, run the i8 kernel, and check
        // the dequantized result lands within the coarse error budget
        // (k+1 half-steps per output; the exact analytic per-channel
        // bound is asserted in weights.rs / backend_equivalence.rs).
        let (m, k, n) = (5, 13, 9);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 7 % 23) as f32 - 11.0) / 17.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 5 % 19) as f32 - 9.0) / 13.0)
            .collect();
        let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.1 - 0.2).collect();
        let s_in = b.iter().fold(0.0f32, |mx, x| mx.max(x.abs())) / 127.0;
        let mut b_q = vec![0i8; b.len()];
        quantize_into(&b, s_in, &mut b_q);
        let mut a_q = vec![0i8; a.len()];
        let mut scales = vec![0.0f32; m];
        for i in 0..m {
            let row = &a[i * k..(i + 1) * k];
            let s_w =
                (row.iter().fold(0.0f32, |mx, x| mx.max(x.abs())) / 127.0).max(f32::MIN_POSITIVE);
            quantize_into(row, s_w, &mut a_q[i * k..(i + 1) * k]);
            scales[i] = s_w * s_in;
        }
        let mut got = vec![0.0f32; m * n];
        gemm_i8_bias_relu(&a_q, &b_q, &bias, &scales, m, k, n, false, &mut got);
        for i in 0..m {
            let s_w = scales[i] / s_in;
            // Worst case: every product off by up to (0.5·|w|·s_x +
            // 0.5·|x|·s_w + 0.25·s_w·s_x) ≤ generous per-term slack.
            let tol = k as f32 * (0.5 * 127.0 * s_w * s_in + 0.5 * 127.0 * s_w * s_in + s_w * s_in)
                + 1e-5;
            for j in 0..n {
                let mut exact = bias[i];
                for p in 0..k {
                    exact += a[i * k + p] * b[p * n + j];
                }
                let err = (got[i * n + j] - exact).abs();
                assert!(err <= tol, "i={i} j={j} err={err} tol={tol}");
            }
        }
    }

    #[test]
    fn gemv_matches_gemm_single_column() {
        let (m, k) = (6, 11);
        let a_q: Vec<i8> = (0..m * k).map(|i| (i as i32 % 250 - 120) as i8).collect();
        let x_q: Vec<i8> = (0..k).map(|i| (i as i32 * 13 % 200 - 100) as i8).collect();
        let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.3).collect();
        let scales: Vec<f32> = (0..m).map(|i| 0.001 + i as f32 * 1e-4).collect();
        let mut via_gemm = vec![0.0f32; m];
        let mut via_gemv = vec![0.0f32; m];
        gemm_i8_bias_relu(&a_q, &x_q, &bias, &scales, m, k, 1, true, &mut via_gemm);
        gemv_i8_bias_relu(&a_q, &x_q, &bias, &scales, true, &mut via_gemv);
        assert_eq!(via_gemm, via_gemv);
    }
}
