//! A minimal CHW `f32` inference engine for PICO.
//!
//! The paper executes CNNs with LibTorch + NNPACK; this crate is the
//! from-scratch substitute: direct convolution, pooling, and
//! fully-connected kernels, plus the **halo-aware region execution**
//! that cooperative inference needs — a device can compute any row range
//! of a segment's output from the matching input tile, and stitching the
//! per-device outputs back together reproduces the monolithic result
//! *bit-exactly* (element loops run in the same order either way).
//!
//! Weights are synthetic (seeded random): partitioning never touches
//! accuracy, so only layer shapes matter for the reproduction, but real
//! numerics let the test suite prove the split/stitch machinery correct.
//!
//! Four compute backends share the engine ([`EngineBackend`]): the
//! naive direct loops (`Reference`, the bit-exactness oracle), an
//! im2col + cache-blocked-GEMM path (`Im2colGemm`, the default) that
//! reuses [`Scratch`] buffers for allocation-free steady-state serving,
//! a runtime-feature-detected vectorized variant (`Simd`, optionally
//! multi-threaded via [`Engine::with_threads`]) — all three bit-exactly
//! identical — and a per-channel symmetric int8 mode (`Int8`) that is
//! deterministic and self-consistent under region splits but only
//! tolerance-close to the f32 oracle.
//!
//! # Example
//!
//! ```
//! use pico_model::{zoo, Rows};
//! use pico_tensor::{Engine, Tensor};
//!
//! let model = zoo::mnist_toy();
//! let engine = Engine::with_seed(&model, 7);
//! let input = Tensor::random(model.input_shape(), 42);
//!
//! // Whole-model inference...
//! let full = engine.infer(&input)?;
//!
//! // ...equals stitched region-wise inference.
//! let seg = model.full_segment();
//! let h = model.output_shape().height;
//! let top = engine.infer_region(seg, Rows::new(0, h / 2), &input)?;
//! let bottom = engine.infer_region(seg, Rows::new(h / 2, h), &input)?;
//! assert_eq!(Tensor::stitch_rows(&[top, bottom])?, full);
//! # Ok::<(), pico_tensor::TensorError>(())
//! ```

// `deny` instead of `forbid`: the two modules that need `std::arch`
// intrinsics and raw-pointer chunking (`simd.rs`, `pool.rs`) opt back
// in with a file-level `allow`, and xtask lint rule 10 confines unsafe
// to exactly those files (with mandatory SAFETY comments).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod gemm;
mod ops;
mod pool;
mod quant;
mod scratch;
mod simd;
mod tensor;
mod weights;

pub use engine::{Engine, EngineBackend};
pub use error::TensorError;
pub use scratch::Scratch;
pub use tensor::Tensor;
pub use weights::{
    LayerWeights, NetworkWeights, QuantizedLayer, QuantizedNetwork, QuantizedUnit, UnitWeights,
};
