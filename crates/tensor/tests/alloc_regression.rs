//! Steady-state allocation regression test for the fast backend.
//!
//! A worker that keeps one [`Scratch`] across its task stream and hands
//! result buffers back via [`Scratch::give`] must reach a state where
//! an inference task performs **zero** heap allocations: the patch
//! matrix, the output buffers, and the per-call region trace are all
//! pooled. This test counts every `alloc`/`realloc` in the process via
//! the shared counting-allocator harness and asserts the delta is
//! exactly zero — any new allocation on the hot path (like the region
//! trace this test originally caught) fails it.
//!
//! The guarantee covers plain-layer chains; graph-structured blocks
//! keep small per-path bookkeeping and are out of scope here. This
//! test lives in its own binary so no other test's allocations pollute
//! the counter.

use pico_model::{ConvSpec, Layer, Model, PoolSpec, Region2, Shape};
use pico_tensor::{Engine, EngineBackend, Scratch, Tensor};

pico_telemetry::install_counting_allocator!();

fn chain() -> Model {
    Model::new(
        "alloc-chain",
        Shape::new(8, 16, 16),
        vec![
            Layer::conv("c1", ConvSpec::square(8, 16, 3, 1, 1)).into(),
            Layer::pool("p1", PoolSpec::max(2, 2)).into(),
            Layer::conv("c2", ConvSpec::square(16, 16, 3, 1, 1)).into(),
        ],
    )
    .expect("chain is consistent")
}

#[test]
fn steady_state_inference_performs_zero_allocations() {
    let model = chain();
    let engine = Engine::with_seed(&model, 42).with_backend(EngineBackend::Im2colGemm);
    let seg = model.full_segment();
    let out = model.output_shape();
    let region = Region2::full(out.height, out.width);
    let input = Tensor::random(model.input_shape(), 7);

    let mut scratch = Scratch::new();
    // Warm the pool: the first few tasks grow the patch matrix, the
    // output buffers, and the region trace to their steady-state sizes.
    for _ in 0..4 {
        let t = engine
            .infer_region2_with(&mut scratch, seg, region, &input)
            .expect("inference works");
        scratch.give(t.into_vec());
    }

    let before = allocation_count();
    for _ in 0..16 {
        let t = engine
            .infer_region2_with(&mut scratch, seg, region, &input)
            .expect("inference works");
        scratch.give(t.into_vec());
    }
    let delta = allocation_count() - before;
    assert_eq!(
        delta, 0,
        "steady-state fast-backend inference allocated {delta} times"
    );
}

#[test]
fn reference_backend_allocates_per_layer_as_documented() {
    // The naive oracle is *expected* to allocate (one fresh output
    // buffer per layer); this pins the contrast so a future "optimize
    // the reference" change that breaks the oracle's simplicity shows
    // up in review.
    let model = chain();
    let engine = Engine::with_seed(&model, 42).with_backend(EngineBackend::Reference);
    let input = Tensor::random(model.input_shape(), 7);
    let _ = engine.infer(&input).expect("inference works");

    let before = allocation_count();
    let _ = engine.infer(&input).expect("inference works");
    assert!(
        allocation_count() - before >= model.len(),
        "reference backend should allocate at least one buffer per layer"
    );
}
