//! Steady-state allocation regression tests for the fast backends —
//! scalar `Im2colGemm`, parallel `Simd` (pool threads included), and
//! `Int8`.
//!
//! A worker that keeps one [`Scratch`] across its task stream and hands
//! result buffers back via [`Scratch::give`] must reach a state where
//! an inference task performs **zero** heap allocations: the patch
//! matrix, the output buffers, and the per-call region trace are all
//! pooled. This test counts every `alloc`/`realloc` in the process via
//! the shared counting-allocator harness and asserts the delta is
//! exactly zero — any new allocation on the hot path (like the region
//! trace this test originally caught) fails it.
//!
//! The guarantee covers plain-layer chains; graph-structured blocks
//! keep small per-path bookkeeping and are out of scope here. This
//! test lives in its own binary so no other test's allocations pollute
//! the counter.

use pico_model::{ConvSpec, Layer, Model, PoolSpec, Region2, Shape};
use pico_tensor::{Engine, EngineBackend, Scratch, Tensor};

pico_telemetry::install_counting_allocator!();

fn chain() -> Model {
    Model::new(
        "alloc-chain",
        Shape::new(8, 16, 16),
        vec![
            Layer::conv("c1", ConvSpec::square(8, 16, 3, 1, 1)).into(),
            Layer::pool("p1", PoolSpec::max(2, 2)).into(),
            Layer::conv("c2", ConvSpec::square(16, 16, 3, 1, 1)).into(),
        ],
    )
    .expect("chain is consistent")
}

#[test]
fn steady_state_inference_performs_zero_allocations() {
    let model = chain();
    let engine = Engine::with_seed(&model, 42).with_backend(EngineBackend::Im2colGemm);
    let seg = model.full_segment();
    let out = model.output_shape();
    let region = Region2::full(out.height, out.width);
    let input = Tensor::random(model.input_shape(), 7);

    let mut scratch = Scratch::new();
    // Warm the pool: the first few tasks grow the patch matrix, the
    // output buffers, and the region trace to their steady-state sizes.
    for _ in 0..4 {
        let t = engine
            .infer_region2_with(&mut scratch, seg, region, &input)
            .expect("inference works");
        scratch.give(t.into_vec());
    }

    let before = allocation_count();
    for _ in 0..16 {
        let t = engine
            .infer_region2_with(&mut scratch, seg, region, &input)
            .expect("inference works");
        scratch.give(t.into_vec());
    }
    let delta = allocation_count() - before;
    assert_eq!(
        delta, 0,
        "steady-state fast-backend inference allocated {delta} times"
    );
}

#[test]
fn parallel_simd_steady_state_performs_zero_allocations() {
    // The parallel SIMD path must hit the same zero-allocation steady
    // state as the scalar fast backend: the pool's workers are spawned
    // once at engine build, `ThreadPool::run` dispatches chunks through
    // preallocated shared state (no channels, no boxing per call), and
    // every buffer comes from the caller's `Scratch`. A zero delta here
    // also proves the pool *reuses* its threads — spawning a thread
    // allocates, so any per-task respawn would fail this count.
    let model = chain();
    let engine = Engine::with_seed(&model, 42)
        .with_backend(EngineBackend::Simd)
        .with_threads(4);
    let seg = model.full_segment();
    let out = model.output_shape();
    let region = Region2::full(out.height, out.width);
    let input = Tensor::random(model.input_shape(), 7);

    let mut scratch = Scratch::new();
    for _ in 0..4 {
        let t = engine
            .infer_region2_with(&mut scratch, seg, region, &input)
            .expect("inference works");
        scratch.give(t.into_vec());
    }

    let before = allocation_count();
    for _ in 0..16 {
        let t = engine
            .infer_region2_with(&mut scratch, seg, region, &input)
            .expect("inference works");
        scratch.give(t.into_vec());
    }
    let delta = allocation_count() - before;
    assert_eq!(
        delta, 0,
        "steady-state parallel SIMD inference allocated {delta} times"
    );
}

#[test]
fn int8_steady_state_performs_zero_allocations() {
    // Quantization tables are built once at `with_backend` time; the
    // serving path only quantizes activations into the pooled
    // `qpatches` buffer, so int8 inference is allocation-free too.
    let model = chain();
    let engine = Engine::with_seed(&model, 42).with_backend(EngineBackend::Int8);
    let seg = model.full_segment();
    let out = model.output_shape();
    let region = Region2::full(out.height, out.width);
    let input = Tensor::random(model.input_shape(), 7);

    let mut scratch = Scratch::new();
    for _ in 0..4 {
        let t = engine
            .infer_region2_with(&mut scratch, seg, region, &input)
            .expect("inference works");
        scratch.give(t.into_vec());
    }

    let before = allocation_count();
    for _ in 0..16 {
        let t = engine
            .infer_region2_with(&mut scratch, seg, region, &input)
            .expect("inference works");
        scratch.give(t.into_vec());
    }
    let delta = allocation_count() - before;
    assert_eq!(
        delta, 0,
        "steady-state int8 inference allocated {delta} times"
    );
}

#[test]
fn repeated_runs_are_bit_exact_for_every_thread_count() {
    // Chunking is deterministic (disjoint MR-aligned row ranges, no
    // cross-thread reduction), so the parallel SIMD result must be
    // bit-identical run to run and thread count to thread count.
    let model = chain();
    let input = Tensor::random(model.input_shape(), 7);
    let baseline = Engine::with_seed(&model, 42)
        .with_backend(EngineBackend::Simd)
        .infer(&input)
        .expect("inference works");
    for threads in [1usize, 2, 3, 4, 7] {
        let engine = Engine::with_seed(&model, 42)
            .with_backend(EngineBackend::Simd)
            .with_threads(threads);
        for run in 0..3 {
            let got = engine.infer(&input).expect("inference works");
            assert_eq!(got, baseline, "threads {threads} run {run}");
        }
    }
}

#[test]
fn reference_backend_allocates_per_layer_as_documented() {
    // The naive oracle is *expected* to allocate (one fresh output
    // buffer per layer); this pins the contrast so a future "optimize
    // the reference" change that breaks the oracle's simplicity shows
    // up in review.
    let model = chain();
    let engine = Engine::with_seed(&model, 42).with_backend(EngineBackend::Reference);
    let input = Tensor::random(model.input_shape(), 7);
    let _ = engine.infer(&input).expect("inference works");

    let before = allocation_count();
    let _ = engine.infer(&input).expect("inference works");
    assert!(
        allocation_count() - before >= model.len(),
        "reference backend should allocate at least one buffer per layer"
    );
}
