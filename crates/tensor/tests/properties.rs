//! Property-based correctness of the engine: arbitrary partitions of
//! arbitrary small models must stitch back to the monolithic result
//! bit-exactly, in 1-D and 2-D.

use pico_model::{
    grid_split_even, rows_split_weighted, zoo, ConvSpec, Layer, Model, PoolSpec, Rows, Segment,
    Shape,
};
use pico_tensor::{Engine, Tensor};
use proptest::prelude::*;

/// Small random conv/pool chains over a 20x20 input (fast in debug).
fn arb_model() -> impl Strategy<Value = Model> {
    let layer = prop_oneof![
        (1usize..=3, 1usize..=2, 0usize..=1).prop_map(|(k, s, p)| (k.max(s), s, p, true)),
        Just((2usize, 2usize, 0usize, false)),
    ];
    proptest::collection::vec(layer, 1..5).prop_map(|specs| {
        let input = Shape::new(2, 20, 20);
        let mut units: Vec<pico_model::Unit> = Vec::new();
        let mut shape = input;
        for (i, (k, s, p, conv)) in specs.into_iter().enumerate() {
            let layer = if conv {
                Layer::conv(
                    format!("c{i}"),
                    ConvSpec::square(shape.channels, 3, k, s, p),
                )
            } else {
                Layer::pool(format!("p{i}"), PoolSpec::max(k, s))
            };
            if let Ok(next) = layer.output_shape(shape) {
                if next.height >= 2 && next.width >= 2 {
                    shape = next;
                    units.push(layer.into());
                }
            }
        }
        if units.is_empty() {
            units.push(Layer::conv("fb", ConvSpec::square(2, 3, 3, 1, 1)).into());
        }
        Model::new("prop", input, units).expect("chain is consistent")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Weighted row splits stitch back to the monolithic result exactly.
    #[test]
    fn weighted_row_split_is_exact(
        model in arb_model(),
        weights in proptest::collection::vec(0.1f64..4.0, 1..5),
        seed in 0u64..1000,
    ) {
        let engine = Engine::with_seed(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(1));
        let full = engine.infer(&input).expect("monolithic inference works");
        let seg = model.full_segment();
        let h = model.output_shape().height;
        let tiles: Vec<Tensor> = rows_split_weighted(Rows::full(h), &weights)
            .into_iter()
            .filter(|r| !r.is_empty())
            .map(|r| {
                let need = model.segment_input_rows(seg, r);
                let tile = input.slice_rows(need).expect("halo available");
                engine.infer_region(seg, r, &tile).expect("region inference works")
            })
            .collect();
        let stitched = Tensor::stitch_rows(&tiles).expect("tiles stitch");
        prop_assert_eq!(stitched, full);
    }

    /// Arbitrary grids stitch back exactly too.
    #[test]
    fn grid_split_is_exact(
        model in arb_model(),
        gr in 1usize..4,
        gc in 1usize..4,
        seed in 0u64..1000,
    ) {
        let engine = Engine::with_seed(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(2));
        let full = engine.infer(&input).expect("monolithic inference works");
        let out = model.output_shape();
        let seg = model.full_segment();
        let tiles: Vec<Tensor> = grid_split_even(out.height, out.width, gr, gc)
            .into_iter()
            .map(|region| {
                let need = model.segment_input_region(seg, region);
                let tile = input.slice_region(need).expect("halo available");
                engine.infer_region2(seg, region, &tile).expect("region inference works")
            })
            .collect();
        let stitched = Tensor::stitch_grid(&tiles, gc).expect("tiles stitch");
        prop_assert_eq!(stitched, full);
    }

    /// Splitting at an arbitrary segment boundary and chaining equals
    /// whole-model inference (pipeline correctness at any cut).
    #[test]
    fn any_cut_point_chains_exactly(model in arb_model(), cut_seed in 0usize..100, seed in 0u64..1000) {
        prop_assume!(model.len() >= 2);
        let cut = 1 + cut_seed % (model.len() - 1);
        let engine = Engine::with_seed(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(3));
        let mid = engine.infer_segment(Segment::new(0, cut), &input).expect("head runs");
        let out = engine.infer_segment(Segment::new(cut, model.len()), &mid).expect("tail runs");
        prop_assert_eq!(out, engine.infer(&input).expect("monolithic works"));
    }
}

#[test]
fn resnet_like_grid_inference_is_exact() {
    // Deterministic graph-model check (blocks + grids), once.
    let model = Model::new(
        "resnetish",
        Shape::new(3, 24, 24),
        vec![
            Layer::conv("stem", ConvSpec::square(3, 4, 3, 1, 1)).into(),
            pico_model::Unit::Block(pico_model::Block::residual(
                "res",
                vec![
                    Layer::conv("a", ConvSpec::square(4, 4, 3, 1, 1)),
                    Layer::conv("b", ConvSpec::square(4, 4, 3, 1, 1)),
                ],
                vec![],
            )),
        ],
    )
    .unwrap();
    let engine = Engine::with_seed(&model, 5);
    let input = Tensor::random(model.input_shape(), 6);
    let full = engine.infer(&input).unwrap();
    let seg = model.full_segment();
    let tiles: Vec<Tensor> = grid_split_even(24, 24, 2, 2)
        .into_iter()
        .map(|region| {
            let need = model.segment_input_region(seg, region);
            let tile = input.slice_region(need).unwrap();
            engine.infer_region2(seg, region, &tile).unwrap()
        })
        .collect();
    assert_eq!(Tensor::stitch_grid(&tiles, 2).unwrap(), full);
}

#[test]
fn zoo_toy_models_split_exactly() {
    for model in [zoo::toy(3), zoo::mnist_toy()] {
        let engine = Engine::with_seed(&model, 8);
        let input = Tensor::random(model.input_shape(), 9);
        let full = engine.infer(&input).unwrap();
        let seg = model.full_segment();
        let h = model.output_shape().height;
        let tiles: Vec<Tensor> = pico_model::rows_split_even(Rows::full(h), 3)
            .into_iter()
            .map(|r| {
                let need = model.segment_input_rows(seg, r);
                engine
                    .infer_region(seg, r, &input.slice_rows(need).unwrap())
                    .unwrap()
            })
            .collect();
        assert_eq!(
            Tensor::stitch_rows(&tiles).unwrap(),
            full,
            "{}",
            model.name()
        );
    }
}
